//! The paper's motivating example (§III-A): MovieTrailer.
//!
//! ```text
//! cargo run --release --example movie_trailer
//! ```
//!
//! Shows the app's request DAG and critical path, the priorities the
//! declarative programming model assigns, and the app-level latency under
//! all four evaluated systems (Fig. 12's left panel).

use ape_appdag::{movie_trailer, virtual_home, AppId};
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{run_system, System, TestbedConfig};

fn main() {
    let movie = movie_trailer(AppId::new(0));
    let home = virtual_home(AppId::new(1));

    println!("MovieTrailer request DAG (Fig. 3):");
    for (idx, obj) in movie.dag().iter() {
        let deps: Vec<&str> = movie
            .dag()
            .deps(idx)
            .iter()
            .map(|d| movie.dag().object(*d).name.as_str())
            .collect();
        println!(
            "  {:<10} {:>7} bytes, ttl {:>4.0} min, priority {:<4} deps: {:?}",
            obj.name,
            obj.size,
            obj.ttl.as_secs_f64() / 60.0,
            obj.priority.to_string(),
            deps
        );
    }
    let (path, estimate) = movie.dag().critical_path();
    let names: Vec<&str> = path
        .iter()
        .map(|i| movie.dag().object(*i).name.as_str())
        .collect();
    println!(
        "  critical path: {} (≈{estimate} uncached)\n",
        names.join(" → ")
    );

    println!("Running both real-world apps under each system (10 simulated minutes):\n");
    println!(
        "{:<14} {:>14} {:>12} {:>14} {:>12}",
        "system", "MovieTrailer", "(p95)", "VirtualHome", "(p95)"
    );
    let apps = vec![movie, home];
    for system in System::ALL {
        let mut config = TestbedConfig::new(system, apps.clone());
        config.schedule = ScheduleConfig {
            apps: 2,
            avg_per_minute: 6.0,
            ..ScheduleConfig::default()
        };
        let mut result = run_system(&config, SimDuration::from_mins(10));
        let s = result.summary();
        let m = s
            .per_app_latency_ms
            .get("MovieTrailer")
            .copied()
            .unwrap_or_default();
        let v = s
            .per_app_latency_ms
            .get("VirtualHome")
            .copied()
            .unwrap_or_default();
        println!(
            "{:<14} {:>11.1} ms {:>9.1} ms {:>11.1} ms {:>9.1} ms",
            s.system, m.0, m.1, v.0, v.1
        );
    }
    println!("\nmovieID and thumbnail sit on the critical path, so APE-CACHE pins");
    println!("them to the AP: the app composes its UI without waiting on the edge.");
}
