//! Failure drill: APE-CACHE under a degraded uplink.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```
//!
//! Rebuilds the testbed with increasing packet loss on the AP↔LDNS path
//! and shows how the client runtime degrades: DNS retries absorb moderate
//! loss, give-ups surface as failed fetches, while AP cache hits — which
//! never leave the LAN — keep working throughout.

use ape_appdag::DummyAppConfig;
use ape_proto::names;
use ape_simnet::{LinkSpec, SimDuration};
use ape_workload::ScheduleConfig;
use apecache::{build, collect, synthetic_suite, System, TestbedConfig};

fn main() {
    let apps = synthetic_suite(8, &DummyAppConfig::default(), 7);
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "loss %", "executions", "failures", "hit ratio", "dns retries", "dns give-ups"
    );
    for loss in [0.0, 0.05, 0.20, 0.50] {
        let mut config = TestbedConfig::new(System::ApeCache, apps.clone());
        config.schedule = ScheduleConfig {
            apps: 8,
            ..ScheduleConfig::default()
        };
        let mut bed = build(&config);
        // Degrade the AP's uplink to the resolver.
        bed.world.connect(
            bed.ap,
            bed.ldns,
            LinkSpec::from_rtt(5, SimDuration::from_millis(13)).loss_probability(loss),
        );
        bed.world.run_for(SimDuration::from_mins(10));
        let result = collect(System::ApeCache, &mut bed);
        println!(
            "{:>10.0} {:>12} {:>10} {:>10.3} {:>12} {:>12}",
            loss * 100.0,
            result.report.executions,
            result.report.failures,
            result.report.hit_ratio(),
            result.metrics.counter(names::CLIENT_DNS_RETRIES),
            result.metrics.counter(names::CLIENT_DNS_GIVE_UPS),
        );
    }
    println!("\nCached objects keep flowing from the AP even when upstream DNS");
    println!("drops half its packets; only uncached fetches pay the price.");
}
