//! A campus-WiFi scenario: thirty apps share one AP's 5 MB cache.
//!
//! ```text
//! cargo run --release --example campus_wifi
//! ```
//!
//! Runs the paper's full 30-app suite under PACM and under LRU, then
//! breaks down what each policy chose to keep: bytes by priority, hit
//! ratios by priority, and the Gini coefficient of per-app cache shares
//! (the fairness index PACM bounds at θ = 0.4).

use ape_appdag::DummyAppConfig;
use ape_cachealg::gini;
use ape_nodes::ApNode;
use ape_proto::names;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{build, collect, paper_suite, System, TestbedConfig};

fn main() {
    let apps = paper_suite(&DummyAppConfig::default(), 7);
    for system in [System::ApeCache, System::ApeCacheLru] {
        let mut config = TestbedConfig::new(system, apps.clone());
        config.schedule = ScheduleConfig {
            apps: 30,
            ..ScheduleConfig::default()
        };
        let mut bed = build(&config);
        bed.world.run_for(SimDuration::from_mins(15));

        // Inspect the AP's cache composition before collecting metrics.
        let (high, low) = bed.world.node::<ApNode>(bed.ap).cached_bytes_by_priority();
        let mut result = collect(system, &mut bed);
        let s = result.summary();

        println!(
            "{} ({}):",
            s.system,
            if system == System::ApeCache {
                "PACM"
            } else {
                "LRU"
            }
        );
        println!(
            "  cache contents: {:.2} MB high-priority, {:.2} MB low-priority",
            high as f64 / 1e6,
            low as f64 / 1e6
        );
        println!(
            "  hit ratio: {:.3} overall, {:.3} high-priority",
            s.hit_ratio, s.high_priority_hit_ratio
        );
        println!(
            "  app latency: {:.1} ms avg / {:.1} ms p95 over {} executions",
            s.app_latency_ms, s.app_latency_p95_ms, s.executions
        );
        // Fairness: Gini over each app's share of completed cache hits.
        let shares: Vec<f64> = result
            .metrics
            .histogram_names()
            .filter(|n| n.starts_with(names::CLIENT_APP_LATENCY_MS_PREFIX))
            .map(|n| {
                result
                    .metrics
                    .histogram(n)
                    .map_or(0.0, |h| h.count() as f64)
            })
            .collect();
        println!("  per-app usage Gini: {:.3}\n", gini(&shares));
    }
    println!("PACM packs the same 5 MB with the objects that matter: more");
    println!("high-priority bytes survive, and high-priority requests hit more often.");
}
