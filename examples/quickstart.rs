//! Quickstart: deploy APE-CACHE on a simulated WiFi AP and watch the
//! latency drop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's Fig. 9 testbed with five apps, runs five simulated
//! minutes under APE-CACHE and under the conventional Edge Cache, and
//! prints the side-by-side outcome.

use ape_appdag::DummyAppConfig;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{run_system, synthetic_suite, System, TestbedConfig};

fn main() {
    let apps = synthetic_suite(5, &DummyAppConfig::default(), 7);
    println!("app suite:");
    for app in &apps {
        let (path, estimate) = app.dag().critical_path();
        println!(
            "  {}: {} objects, critical path {} deep (≈{estimate} uncached)",
            app.name(),
            app.dag().len(),
            path.len(),
        );
    }
    println!();

    for system in [System::ApeCache, System::EdgeCache] {
        let mut config = TestbedConfig::new(system, apps.clone());
        config.schedule = ScheduleConfig {
            apps: apps.len(),
            ..ScheduleConfig::default()
        };
        let mut result = run_system(&config, SimDuration::from_mins(5));
        let s = result.summary();
        println!("{}:", s.system);
        println!(
            "  app-level latency: {:.1} ms avg, {:.1} ms p95",
            s.app_latency_ms, s.app_latency_p95_ms
        );
        println!("  AP cache hit ratio: {:.1}%", s.hit_ratio * 100.0);
        println!(
            "  executions: {} ({} failed fetches)",
            s.executions, s.failures
        );
        println!();
    }
    println!("APE-CACHE serves cacheable objects from the WiFi AP one hop away;");
    println!("the Edge Cache baseline pays DNS resolution plus a 7-hop fetch.");
}
