//! Anatomy of a DNS-Cache exchange on the wire (§IV-B, Fig. 7/8).
//!
//! ```text
//! cargo run --release --example dns_cache_wire
//! ```
//!
//! Crafts the exact packets an APE-CACHE client and AP exchange: a DNS
//! query carrying a piggybacked cache lookup in its Additional section,
//! and the AP's response with per-URL flags — then decodes them back and
//! hexdumps the bytes so the RFC1035 framing is visible.

use ape_dnswire::{CacheFlag, CacheTuple, DnsMessage, DomainName, UrlHash};
use std::net::Ipv4Addr;

fn hexdump(bytes: &[u8]) {
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| if b.is_ascii_graphic() { b as char } else { '.' })
            .collect();
        println!("  {:04x}  {:<47}  {ascii}", i * 16, hex.join(" "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain: DomainName = "api.movietrailer.example".parse()?;
    let urls = [
        "http://api.movietrailer.example/movieID?v=3",
        "http://api.movietrailer.example/thumbnail?v=3",
        "http://api.movietrailer.example/plot?v=3",
    ];
    let hashes: Vec<UrlHash> = urls.iter().map(|u| UrlHash::of(u)).collect();

    println!("1. Client → AP: DNS-Cache request");
    println!("   question: {domain} A?");
    for (url, hash) in urls.iter().zip(&hashes) {
        println!("   tuple: HASH({url}) = {hash}");
    }
    let query = DnsMessage::dns_cache_request(0x4242, domain, &hashes);
    let query_wire = query.encode();
    println!("   {} bytes on the wire:", query_wire.len());
    hexdump(&query_wire);

    println!("\n2. AP → Client: DNS answer + cache status for the whole domain");
    let tuples = vec![
        CacheTuple::new(hashes[0], CacheFlag::Hit),
        CacheTuple::new(hashes[1], CacheFlag::Hit),
        CacheTuple::new(hashes[2], CacheFlag::Delegation),
    ];
    let response = DnsMessage::dns_cache_response(&query, Ipv4Addr::new(10, 0, 0, 2), 60, tuples);
    let response_wire = response.encode();
    println!("   {} bytes on the wire:", response_wire.len());
    hexdump(&response_wire);

    println!("\n3. Client decodes and routes each fetch:");
    let parsed = DnsMessage::decode(&response_wire)?;
    println!(
        "   edge server: {} (ttl {}s)",
        parsed.answer_ip().expect("answer present"),
        parsed.answers[0].ttl
    );
    for tuple in parsed.cache_response_tuples() {
        let action = match tuple.flag {
            CacheFlag::Hit => "fetch from the AP cache",
            CacheFlag::Miss => "fetch from the edge server",
            CacheFlag::Delegation => "delegate the fetch to the AP",
            CacheFlag::Query => "unreachable in responses",
        };
        println!("   {} → {} → {action}", tuple.url_hash, tuple.flag);
    }

    println!("\n4. The short-circuit: when everything asked for is cached,");
    println!("   the AP answers a dummy IP with TTL 0 and skips upstream DNS:");
    let sc = DnsMessage::dns_cache_response(
        &query,
        Ipv4Addr::UNSPECIFIED,
        0,
        vec![CacheTuple::new(hashes[0], CacheFlag::Hit)],
    );
    println!(
        "   answer {} ttl {} ({} bytes)",
        sc.answer_ip().expect("answer"),
        sc.answers[0].ttl,
        sc.wire_len()
    );
    Ok(())
}
