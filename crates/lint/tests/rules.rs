//! Fixture tests: positive, negative, waived and `--fix` round-trip cases
//! for every rule family, plus self-checks that the real workspace scans
//! clean and that the committed baseline ledger is byte-exact.

use ape_lint::baseline::Baseline;
use ape_lint::{
    apply_fixes, scan_source, scan_workspace, workspace_files, workspace_root, FileContext,
    Registry, Rule,
};

const SIM: FileContext = FileContext {
    sim_state: true,
    allow_wall_clock: false,
};

const HARNESS: FileContext = FileContext {
    sim_state: false,
    allow_wall_clock: true,
};

const NON_SIM: FileContext = FileContext {
    sim_state: false,
    allow_wall_clock: false,
};

fn rules_of(report: &ape_lint::Report) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

/// Synthetic registry for fixtures, mirroring the `ape_proto::names` shape.
fn fixture_registry() -> Registry {
    Registry::from_entries(
        &[
            ("AP_DNS_QUERIES", "ap.dns_queries"),
            ("CLIENT_LOOKUP_LATENCY_MS", "client.lookup_latency_ms"),
        ],
        &[("CLIENT_APP_LATENCY_MS_PREFIX", "client.app_latency_ms.")],
    )
}

fn scan(rel: &str, src: &str, ctx: FileContext) -> ape_lint::Report {
    scan_source(rel, src, ctx, &fixture_registry())
}

// --- D1 map-iter ----------------------------------------------------------

#[test]
fn d1_flags_hashmap_method_iteration() {
    let src = r#"
use std::collections::HashMap;
struct Cache {
    entries: HashMap<u64, u64>,
}
impl Cache {
    fn total(&self) -> u64 {
        self.entries.values().sum()
    }
    fn all(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    let rules = rules_of(&report);
    assert_eq!(rules.iter().filter(|r| **r == Rule::MapIter).count(), 2);
    assert!(report.violations.iter().all(|v| !v.waived));
    assert!(!report.is_clean());
}

#[test]
fn d1_flags_for_loop_over_hashmap() {
    let src = r#"
use std::collections::HashSet;
fn walk(pending: &HashSet<u32>) {
    for id in pending {
        drop(id);
    }
}
fn walk2() {
    let mut seen: HashSet<u32> = HashSet::new();
    for id in &seen {
        drop(id);
    }
    drop(&mut seen);
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MapIter, Rule::MapIter],
        "{:?}",
        report.violations
    );
}

#[test]
fn d1_ignores_btreemap_and_point_lookups() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
struct S {
    ordered: BTreeMap<u64, u64>,
    table: HashMap<u64, u64>,
}
impl S {
    fn get(&self, k: u64) -> Option<u64> {
        self.table.get(&k).copied()
    }
    fn walk(&self) -> u64 {
        self.ordered.values().sum()
    }
}
"#;
    let report = scan("crates/core/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn d1_is_scoped_to_sim_state_crates() {
    let src = r#"
use std::collections::HashMap;
fn tally(counts: HashMap<String, u64>) -> u64 {
    counts.values().sum()
}
"#;
    let report = scan("crates/bench/src/fixture.rs", src, HARNESS);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- D2 wall-clock --------------------------------------------------------

#[test]
fn d2_flags_wall_clock_and_ambient_randomness() {
    let src = r#"
fn now_ms() -> u128 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_millis()
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    let wall: Vec<_> = rules_of(&report)
        .into_iter()
        .filter(|r| *r == Rule::WallClock)
        .collect();
    assert_eq!(wall.len(), 2, "{:?}", report.violations); // Instant::now + SystemTime::now
}

#[test]
fn d2_allows_bench_and_simtime() {
    let bench = r#"
fn measure() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert!(scan("crates/bench/src/fixture.rs", bench, HARNESS).is_clean());

    let sim = r#"
use ape_simnet::{SimRng, SimTime};
fn t(rng: &mut SimRng) -> SimTime {
    let _ = rng.next_u64();
    SimTime::from_secs(1)
}
"#;
    assert!(scan("crates/simnet/src/fixture.rs", sim, SIM).is_clean());
}

// --- D3 metric-name (span/trace sites) ------------------------------------

#[test]
fn d3_flags_bare_span_name_literals() {
    let src = r#"
fn instrumented(ctx: &mut Ctx) {
    let span = ctx.span_start("ap.fetch");
    ctx.span_end(span, "ap.fetch");
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MetricName, Rule::MetricName],
        "{:?}",
        report.violations
    );
}

#[test]
fn d3_accepts_span_kind_constants() {
    let src = r#"
fn instrumented(ctx: &mut Ctx) {
    let span = ctx.span_start(SpanKind::HttpFetch.as_str());
    ctx.span_end(span, SpanKind::HttpFetch.as_str());
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- D4 float-fold --------------------------------------------------------

#[test]
fn d4_flags_float_sum_over_hash_collections() {
    let src = r#"
use std::collections::HashMap;
fn mean(rates: &HashMap<u32, f64>) -> f64 {
    rates.values().sum::<f64>() / rates.len() as f64
}
fn folded(rates: &HashMap<u32, f64>) -> f64 {
    rates.values().fold(0.0, |acc, v| acc + v)
}
"#;
    // Non-sim-state context isolates D4 from D1.
    let report = scan("crates/httpsim/src/fixture.rs", src, NON_SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::FloatFold, Rule::FloatFold],
        "{:?}",
        report.violations
    );
}

#[test]
fn d4_ignores_integer_sums_and_ordered_maps() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
fn count(c: &HashMap<u32, u64>) -> u64 {
    c.values().sum::<u64>()
}
fn mean(rates: &BTreeMap<u32, f64>) -> f64 {
    rates.values().sum::<f64>() / rates.len() as f64
}
"#;
    let report = scan("crates/httpsim/src/fixture.rs", src, NON_SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- span-balance ---------------------------------------------------------

#[test]
fn span_balance_flags_started_binding_never_used() {
    let src = r#"
fn fetch(ctx: &mut Ctx, early: bool) {
    let span = ctx.span_start(SpanKind::HttpFetch.as_str());
    if early {
        return;
    }
    ctx.do_work();
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::SpanBalance],
        "{:?}",
        report.violations
    );
}

#[test]
fn span_balance_accepts_ended_or_stored_spans() {
    let src = r#"
fn fetch(ctx: &mut Ctx) {
    let span = ctx.span_start(SpanKind::HttpFetch.as_str());
    ctx.do_work();
    ctx.span_end(span, SpanKind::HttpFetch.as_str());
    let lookup_span = ctx.begin_trace(SpanKind::DnsLookup.as_str());
    self.pending.span = Some(lookup_span);
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn span_balance_flags_resumed_binding_never_used() {
    // The PR 5 `handle_dns_response` leak shape: a span resumed from
    // pending state whose end call was lost.
    let src = r#"
fn finish(&mut self, ctx: &mut Ctx, pending: Pending) {
    if let Some(span) = pending.span {
        ctx.log_completion();
    }
    while let Some((fetch_span, kind)) = self.queue.pop() {
        drop(kind);
    }
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::SpanBalance, Rule::SpanBalance],
        "{:?}",
        report.violations
    );
}

#[test]
fn span_balance_accepts_resumed_binding_that_is_ended() {
    let src = r#"
fn finish(&mut self, ctx: &mut Ctx, pending: Pending) {
    if let Some(span) = pending.span {
        ctx.span_end(span, SpanKind::DnsUpstream.as_str());
    }
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn span_balance_skips_underscore_and_non_span_names() {
    let src = r#"
fn f(&mut self, ctx: &mut Ctx, pending: Pending) {
    let _span = ctx.span_start(SpanKind::HttpFetch.as_str());
    if let Some(value) = pending.span {
        drop(());
    }
    let count = self.items.len();
    drop(count);
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn span_balance_can_be_waived_and_skips_tests() {
    let src = r#"
fn f(ctx: &mut Ctx) {
    // ape-lint: allow(span-balance) -- span intentionally leaked to exercise the trace GC
    let span = ctx.span_start(SpanKind::HttpFetch.as_str());
}

#[cfg(test)]
mod tests {
    #[test]
    fn leak_fixture() {
        let mut ctx = Ctx::new();
        let span = ctx.span_start(SpanKind::HttpFetch.as_str());
    }
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
}

// --- sim-time-arith -------------------------------------------------------

#[test]
fn sim_time_arith_flags_raw_arith_and_truncating_casts() {
    let src = r#"
fn f(t: SimTime, d: SimDuration) -> u64 {
    let a = t.as_nanos() - 1;
    let b = 5 + d.as_nanos();
    let c = d.as_secs_f64() as u32;
    let e = SimDuration::from_nanos(a * 3);
    (a, b, u64::from(c), e).0
}
"#;
    let report = scan("crates/core/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![
            Rule::SimTimeArith,
            Rule::SimTimeArith,
            Rule::SimTimeArith,
            Rule::SimTimeArith
        ],
        "{:?}",
        report.violations
    );
}

#[test]
fn sim_time_arith_ignores_typed_math_widening_and_shifts() {
    let src = r#"
fn as_nanos_total(x: u64) -> u64 {
    x
}
fn g(t: SimTime, d: SimDuration) -> f64 {
    let later = t + d;
    let widened = d.as_nanos() as f64;
    let slot = (t.as_nanos() >> 6) & 63;
    let whole = d.as_secs();
    drop((later, slot, whole));
    widened
}
"#;
    let report = scan("crates/core/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn sim_time_arith_exempts_time_impl_and_non_sim_crates() {
    let src = r#"
fn raw(d: SimDuration) -> u64 {
    d.as_nanos() - 1
}
"#;
    assert!(
        scan("crates/simnet/src/time.rs", src, SIM).is_clean(),
        "time.rs is the typed home for nanosecond math"
    );
    assert!(scan("crates/bench/src/fixture.rs", src, HARNESS).is_clean());
}

#[test]
fn sim_time_arith_can_be_waived() {
    let src = r#"
fn f(t: SimTime) -> u64 {
    // ape-lint: allow(sim-time-arith) -- wheel slot math is documented shift/mask on nanos
    t.as_nanos() % 7
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
}

// --- metric-registry ------------------------------------------------------

#[test]
fn metric_registry_fixes_exact_literal_to_constant() {
    let src = r#"
fn record(m: &mut Metrics) {
    m.incr("ap.dns_queries", 1);
    m.observe(
        "client.lookup_latency_ms",
        4.0,
    );
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MetricRegistry, Rule::MetricRegistry],
        "{:?}",
        report.violations
    );
    assert!(report.violations.iter().all(|v| v.fix.is_some()));

    // --fix rewrites to the registered constants and is idempotent.
    let fixed = apply_fixes(src, &report).expect("fixes to apply");
    assert!(fixed.contains("m.incr(ape_proto::names::AP_DNS_QUERIES, 1)"));
    assert!(fixed.contains("ape_proto::names::CLIENT_LOOKUP_LATENCY_MS"));
    let second = scan("crates/nodes/src/fixture.rs", &fixed, SIM);
    assert!(second.is_clean(), "{:?}", second.violations);
    assert!(apply_fixes(&fixed, &second).is_none());
}

#[test]
fn metric_registry_flags_unregistered_and_prefix_literals() {
    let src = r#"
fn record(m: &mut Metrics) {
    m.incr("ap.totally_new_counter", 1);
    m.observe("client.app_latency_ms.maps", 3.0);
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MetricRegistry, Rule::MetricRegistry]
    );
    assert!(report.violations[0].message.contains("unregistered"));
    assert!(report.violations[0].fix.is_none(), "no safe rewrite exists");
    assert!(report.violations[1].message.contains("dynamic prefix"));
}

#[test]
fn metric_registry_checks_interned_id_constants() {
    let src = r#"
fn record(m: &mut Metrics) {
    m.incr_id(names::id::AP_DNS_QUERIES, 1);
    m.observe_id(STALE_ID, 2.0);
    m.observe_id(IDS[i % IDS.len()], 3.0);
    m.record_point_id(chosen_id, 4.0);
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MetricRegistry],
        "{:?}",
        report.violations
    );
    assert!(report.violations[0].message.contains("STALE_ID"));
}

#[test]
fn metric_registry_accepts_constants_and_skips_tests() {
    let src = r#"
use ape_proto::names;
fn record(m: &mut Metrics) {
    m.incr(names::AP_DNS_QUERIES, 1);
    m.observe(&dynamic_name, 2.0);
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_are_fine_in_tests() {
        let mut m = Metrics::new();
        m.incr("test.counter", 1);
        assert_eq!(m.counter("test.counter"), 1);
    }
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn metric_registry_waiver_suppresses_fix_too() {
    let src = r#"
fn record(m: &mut Metrics) {
    // ape-lint: allow(metric-registry) -- migration shim, removed with the v1 exporter
    m.incr("ap.dns_queries", 1);
}
"#;
    let report = scan("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
    assert!(
        apply_fixes(src, &report).is_none(),
        "waived fixes must not apply"
    );
}

// --- pub-api-debug --------------------------------------------------------

#[test]
fn pub_api_debug_flags_missing_debug_on_public_types() {
    let src = r#"
pub struct Plain {
    pub x: u32,
}

#[derive(Clone)]
pub enum AlsoPlain {
    A,
    B,
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::PubApiDebug, Rule::PubApiDebug],
        "{:?}",
        report.violations
    );
}

#[test]
fn pub_api_debug_accepts_derived_manual_and_private_types() {
    let src = r#"
use std::fmt;

#[derive(Clone, Debug)]
pub struct Derived {
    pub x: u32,
}

pub struct Manual(u32);

impl fmt::Debug for Manual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Manual({})", self.0)
    }
}

struct Private {
    y: u32,
}

pub(crate) struct CrateLocal {
    z: u32,
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn pub_api_debug_is_scoped_to_sim_state_and_waivable() {
    let src = r#"
pub struct HarnessOnly {
    pub x: u32,
}
"#;
    assert!(scan("crates/bench/src/fixture.rs", src, HARNESS).is_clean());

    let waived = r#"
// ape-lint: allow(pub-api-debug) -- holds a raw fd; Debug would tempt logging it
pub struct Opaque {
    fd: i32,
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", waived, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
}

// --- Waivers --------------------------------------------------------------

#[test]
fn waiver_on_line_above_suppresses_and_is_marked_used() {
    let src = r#"
use std::collections::HashMap;
struct S {
    table: HashMap<u64, u64>,
}
impl S {
    fn snapshot(&self) -> Vec<u64> {
        // ape-lint: allow(map-iter) -- sorted immediately below
        let mut v: Vec<u64> = self.table.keys().copied().collect();
        v.sort_unstable();
        v
    }
}
"#;
    let report = scan("crates/cachealg/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
    assert_eq!(report.waivers.len(), 1);
    assert!(report.waivers[0].used);
    assert_eq!(report.waivers[0].reason, "sorted immediately below");
}

#[test]
fn same_line_waiver_works() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() // ape-lint: allow(map-iter) -- count is order-free
}
"#;
    let report = scan("crates/proto/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
}

#[test]
fn malformed_waivers_are_violations() {
    let missing_reason = "// ape-lint: allow(map-iter)\nfn f() {}\n";
    let report = scan("crates/core/src/fixture.rs", missing_reason, SIM);
    assert_eq!(rules_of(&report), vec![Rule::WaiverSyntax]);

    let unknown_rule = "// ape-lint: allow(hash-stuff) -- nope\nfn f() {}\n";
    let report = scan("crates/core/src/fixture.rs", unknown_rule, SIM);
    assert_eq!(rules_of(&report), vec![Rule::WaiverSyntax]);

    // The honesty meta-rules cannot be waived by name.
    let unwaivable = "// ape-lint: allow(unused-waiver) -- nice try\nfn f() {}\n";
    let report = scan("crates/core/src/fixture.rs", unwaivable, SIM);
    assert_eq!(rules_of(&report), vec![Rule::WaiverSyntax]);
}

// --- unused-waiver --------------------------------------------------------

#[test]
fn unused_waiver_is_flagged_and_fix_removes_it() {
    let src = r#"
fn f() -> u32 {
    // ape-lint: allow(wall-clock) -- this code stopped reading the clock long ago
    41 + 1
}
"#;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::UnusedWaiver],
        "{:?}",
        report.violations
    );
    assert!(!report.is_clean());
    assert_eq!(report.waivers.len(), 1);
    assert!(!report.waivers[0].used);

    // The fix deletes the whole comment line and is idempotent.
    let fixed = apply_fixes(src, &report).expect("removal fix");
    assert!(!fixed.contains("ape-lint"));
    assert_eq!(fixed, "\nfn f() -> u32 {\n    41 + 1\n}\n");
    let second = scan("crates/simnet/src/fixture.rs", &fixed, SIM);
    assert!(second.is_clean(), "{:?}", second.violations);
    assert!(apply_fixes(&fixed, &second).is_none());
}

#[test]
fn unused_trailing_waiver_fix_keeps_the_code() {
    let src = "fn f() -> u32 {\n    let x = 1; // ape-lint: allow(map-iter) -- stale\n    x\n}\n";
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(rules_of(&report), vec![Rule::UnusedWaiver]);
    let fixed = apply_fixes(src, &report).expect("removal fix");
    assert_eq!(fixed, "fn f() -> u32 {\n    let x = 1;\n    x\n}\n");
}

// --- Preprocessing robustness --------------------------------------------

#[test]
fn strings_comments_and_doc_examples_do_not_trigger() {
    let src = r##"
fn f() -> &'static str {
    // let x: HashMap<u32, u32> = HashMap::new(); x.keys();
    /* Instant::now() inside a block comment */
    let s = "m.incr(\"ap.dns\", 1) and Instant::now()";
    let r = r#"rates.values().sum::<f64>()"#;
    let _ = (s, r);
    "SystemTime"
}

/// Doc example:
/// ```
/// let t = std::time::Instant::now();
/// ```
fn g() {}
"##;
    let report = scan("crates/simnet/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.violations.is_empty());
}

#[test]
fn lexer_line_numbers_match_source_for_every_workspace_file() {
    // Token lines drive waiver matching and violation reporting; a drift
    // (e.g. uncounted line-continuation escapes) silently unmatches
    // waivers far below it. Cross-check against a ground-truth line table
    // for every real source file.
    for file in workspace_files(&workspace_root()).expect("workspace files") {
        let src = std::fs::read_to_string(&file).expect("read source");
        let mut line_of = vec![1u32; src.len() + 1];
        let mut l = 1u32;
        for (i, b) in src.bytes().enumerate() {
            line_of[i] = l;
            if b == b'\n' {
                l += 1;
            }
        }
        for t in ape_lint::lexer::lex(&src) {
            assert_eq!(
                t.line,
                line_of[t.start],
                "token line drift in {} at byte {}: {:?}",
                file.display(),
                t.start,
                &src[t.start..t.end.min(t.start + 40)]
            );
        }
    }
}

#[test]
fn json_output_is_well_formed_enough_to_grep() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}
"#;
    let report = scan("crates/core/src/fixture.rs", src, SIM);
    let json = report.to_json();
    assert!(json.contains("\"schema\": 2"));
    assert!(json.contains("\"rule\": \"map-iter\""));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"excerpt\": \"m.keys().count()\""));
    assert!(json.starts_with('{') && json.ends_with('}'));
}

// --- Baseline ledger ------------------------------------------------------

#[test]
fn baseline_grandfathers_exactly_its_allowance() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}
"#;
    let mut report = scan("crates/core/src/fixture.rs", src, SIM);
    assert!(!report.is_clean());

    let ledger = Baseline::from_report(&report);
    assert_eq!(ledger.entries.len(), 1);
    let stale = ledger.apply(&mut report);
    assert!(stale.is_empty(), "{stale:?}");
    assert!(report.is_clean(), "baselined violations must not fail");
    assert!(report.violations[0].baselined);

    // A second identical violation exceeds the allowance of 1.
    let src2 = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}
fn g(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}
"#;
    let mut report2 = scan("crates/core/src/fixture.rs", src2, SIM);
    // Excerpts are identical, so one of the two stays unbaselined... but
    // the ledger was keyed for `f` only; counts are per-excerpt.
    let stale2 = ledger.apply(&mut report2);
    assert!(stale2.is_empty());
    assert_eq!(report2.violations.iter().filter(|v| v.baselined).count(), 1);
    assert!(!report2.is_clean(), "growth beyond the allowance must fail");
}

#[test]
fn baseline_reports_stale_entries() {
    let src = "fn clean() {}\n";
    let mut report = scan("crates/core/src/fixture.rs", src, SIM);
    let ledger = Baseline::parse(
        "{\n  \"version\": 1,\n  \"entries\": [\n    {\"file\": \"crates/core/src/fixture.rs\", \
         \"rule\": \"map-iter\", \"excerpt\": \"gone()\", \"count\": 1}\n  ]\n}\n",
    )
    .expect("parse");
    let stale = ledger.apply(&mut report);
    assert_eq!(stale.len(), 1);
    assert!(stale[0].contains("stale baseline entry"));
}

// --- Self-checks against the real workspace -------------------------------

#[test]
fn workspace_scans_clean() {
    let root = workspace_root();
    let reg = Registry::workspace();
    let mut report = scan_workspace(&root, &reg).expect("workspace scan");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");

    let ledger_path = root.join("lint-baseline.json");
    let ledger = Baseline::parse(&std::fs::read_to_string(&ledger_path).expect("ledger"))
        .expect("committed baseline parses");
    let stale = ledger.apply(&mut report);
    assert!(stale.is_empty(), "stale baseline entries: {stale:#?}");

    let failing: Vec<_> = report.failing().collect();
    assert!(
        failing.is_empty(),
        "workspace has lint violations outside the baseline: {failing:#?}"
    );
    assert!(
        report.waivers.len() <= 5,
        "waiver budget exceeded: {:#?}",
        report.waivers
    );
    assert!(
        report.waivers.iter().all(|w| w.used),
        "unused waivers survived: {:#?}",
        report.waivers
    );
}

#[test]
fn committed_baseline_is_byte_exact() {
    // `--write-baseline` must regenerate the committed ledger exactly; CI
    // enforces the same property with a git diff.
    let root = workspace_root();
    let reg = Registry::workspace();
    let report = scan_workspace(&root, &reg).expect("workspace scan");
    let regenerated = Baseline::from_report(&report).to_json();
    let committed =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("committed ledger");
    assert_eq!(
        regenerated, committed,
        "lint-baseline.json is out of date; run `cargo run -p ape-lint -- check --write-baseline`"
    );
}

#[test]
fn deleting_the_dns_span_end_makes_span_balance_fire() {
    // Acceptance fixture for the PR 5 leak shape: remove the
    // `handle_dns_response` span_end and span-balance must catch it.
    let root = workspace_root();
    let rel = "crates/nodes/src/ap.rs";
    let src = std::fs::read_to_string(root.join(rel)).expect("ap.rs");
    let ctx = FileContext::for_path(rel);
    let reg = Registry::workspace();

    let before = scan_source(rel, &src, ctx, &reg);
    assert!(
        before
            .violations
            .iter()
            .all(|v| v.rule != Rule::SpanBalance),
        "ap.rs should be span-balanced as committed: {:#?}",
        before.violations
    );

    let fn_pos = src.find("fn handle_dns_response").expect("handler present");
    let end_pos = fn_pos
        + src[fn_pos..]
            .find("ctx.span_end(span, SpanKind::DnsUpstream")
            .expect("span_end present");
    let line_start = src[..end_pos].rfind('\n').expect("not at start") + 1;
    let line_end = end_pos + src[end_pos..].find('\n').expect("not at eof") + 1;
    let mutated = format!("{}{}", &src[..line_start], &src[line_end..]);

    let after = scan_source(rel, &mutated, ctx, &reg);
    assert!(
        after
            .violations
            .iter()
            .any(|v| v.rule == Rule::SpanBalance && !v.waived),
        "span-balance must fire on the mutated handler: {:#?}",
        after.violations
    );
}
