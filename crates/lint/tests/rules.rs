//! Fixture tests: one positive and one negative snippet per rule, waiver
//! parsing, and a self-check that the real workspace scans clean.

use ape_lint::{scan_source, scan_workspace, workspace_root, FileContext, Rule};

const SIM: FileContext = FileContext {
    sim_state: true,
    allow_wall_clock: false,
};

const HARNESS: FileContext = FileContext {
    sim_state: false,
    allow_wall_clock: true,
};

const NON_SIM: FileContext = FileContext {
    sim_state: false,
    allow_wall_clock: false,
};

fn rules_of(report: &ape_lint::Report) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

// --- D1 map-iter ----------------------------------------------------------

#[test]
fn d1_flags_hashmap_method_iteration() {
    let src = r#"
use std::collections::HashMap;
struct Cache {
    entries: HashMap<u64, u64>,
}
impl Cache {
    fn total(&self) -> u64 {
        self.entries.values().sum()
    }
    fn all(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}
"#;
    let report = scan_source("crates/nodes/src/fixture.rs", src, SIM);
    let rules = rules_of(&report);
    assert_eq!(rules.iter().filter(|r| **r == Rule::MapIter).count(), 2);
    assert!(report.violations.iter().all(|v| !v.waived));
    assert!(!report.is_clean());
}

#[test]
fn d1_flags_for_loop_over_hashmap() {
    let src = r#"
use std::collections::HashSet;
fn walk(pending: &HashSet<u32>) {
    for id in pending {
        drop(id);
    }
}
fn walk2() {
    let mut seen: HashSet<u32> = HashSet::new();
    for id in &seen {
        drop(id);
    }
    drop(&mut seen);
}
"#;
    let report = scan_source("crates/simnet/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MapIter, Rule::MapIter],
        "{:?}",
        report.violations
    );
}

#[test]
fn d1_ignores_btreemap_and_point_lookups() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
struct S {
    ordered: BTreeMap<u64, u64>,
    table: HashMap<u64, u64>,
}
impl S {
    fn get(&self, k: u64) -> Option<u64> {
        self.table.get(&k).copied()
    }
    fn walk(&self) -> u64 {
        self.ordered.values().sum()
    }
}
"#;
    let report = scan_source("crates/core/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn d1_is_scoped_to_sim_state_crates() {
    let src = r#"
use std::collections::HashMap;
fn tally(counts: HashMap<String, u64>) -> u64 {
    counts.values().sum()
}
"#;
    let report = scan_source("crates/bench/src/fixture.rs", src, HARNESS);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- D2 wall-clock --------------------------------------------------------

#[test]
fn d2_flags_wall_clock_and_ambient_randomness() {
    let src = r#"
fn now_ms() -> u128 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_millis()
}
"#;
    let report = scan_source("crates/simnet/src/fixture.rs", src, SIM);
    let wall: Vec<_> = rules_of(&report)
        .into_iter()
        .filter(|r| *r == Rule::WallClock)
        .collect();
    assert_eq!(wall.len(), 2, "{:?}", report.violations); // Instant::now + SystemTime::now
}

#[test]
fn d2_allows_bench_and_simtime() {
    let bench = r#"
fn measure() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert!(scan_source("crates/bench/src/fixture.rs", bench, HARNESS).is_clean());

    let sim = r#"
use ape_simnet::{SimRng, SimTime};
fn t(rng: &mut SimRng) -> SimTime {
    let _ = rng.next_u64();
    SimTime::from_secs(1)
}
"#;
    assert!(scan_source("crates/simnet/src/fixture.rs", sim, SIM).is_clean());
}

// --- D3 metric-name -------------------------------------------------------

#[test]
fn d3_flags_bare_name_literals() {
    let src = r#"
fn record(m: &mut ape_simnet::Metrics) {
    m.incr("ap.dns_queries", 1);
    m.observe(
        "client.lookup_latency_ms",
        4.0,
    );
}
"#;
    let report = scan_source("crates/nodes/src/fixture.rs", src, SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::MetricName, Rule::MetricName],
        "{:?}",
        report.violations
    );
}

#[test]
fn d3_accepts_names_constants_and_skips_tests() {
    let src = r#"
use ape_proto::names;
fn record(m: &mut ape_simnet::Metrics) {
    m.incr(names::AP_DNS_QUERIES, 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_are_fine_in_tests() {
        let mut m = ape_simnet::Metrics::new();
        m.incr("test.counter", 1);
        assert_eq!(m.counter("test.counter"), 1);
    }
}
"#;
    let report = scan_source("crates/nodes/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- D4 float-fold --------------------------------------------------------

#[test]
fn d4_flags_float_sum_over_hash_collections() {
    let src = r#"
use std::collections::HashMap;
fn mean(rates: &HashMap<u32, f64>) -> f64 {
    rates.values().sum::<f64>() / rates.len() as f64
}
fn folded(rates: &HashMap<u32, f64>) -> f64 {
    rates.values().fold(0.0, |acc, v| acc + v)
}
"#;
    // Non-sim-state context isolates D4 from D1.
    let report = scan_source("crates/httpsim/src/fixture.rs", src, NON_SIM);
    assert_eq!(
        rules_of(&report),
        vec![Rule::FloatFold, Rule::FloatFold],
        "{:?}",
        report.violations
    );
}

#[test]
fn d4_ignores_integer_sums_and_ordered_maps() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
fn count(c: &HashMap<u32, u64>) -> u64 {
    c.values().sum::<u64>()
}
fn mean(rates: &BTreeMap<u32, f64>) -> f64 {
    rates.values().sum::<f64>() / rates.len() as f64
}
"#;
    let report = scan_source("crates/httpsim/src/fixture.rs", src, NON_SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
}

// --- Waivers --------------------------------------------------------------

#[test]
fn waiver_on_line_above_suppresses_and_is_marked_used() {
    let src = r#"
use std::collections::HashMap;
struct S {
    table: HashMap<u64, u64>,
}
impl S {
    fn snapshot(&self) -> Vec<u64> {
        // ape-lint: allow(map-iter) -- sorted immediately below
        let mut v: Vec<u64> = self.table.keys().copied().collect();
        v.sort_unstable();
        v
    }
}
"#;
    let report = scan_source("crates/cachealg/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
    assert_eq!(report.waivers.len(), 1);
    assert!(report.waivers[0].used);
    assert_eq!(report.waivers[0].reason, "sorted immediately below");
}

#[test]
fn same_line_waiver_works() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() // ape-lint: allow(map-iter) -- count is order-free
}
"#;
    let report = scan_source("crates/proto/src/fixture.rs", src, SIM);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].waived);
    assert!(report.is_clean());
}

#[test]
fn waiver_for_wrong_rule_does_not_suppress() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    // ape-lint: allow(wall-clock) -- wrong rule on purpose
    m.keys().count()
}
"#;
    let report = scan_source("crates/proto/src/fixture.rs", src, SIM);
    assert!(!report.is_clean());
    assert!(!report.waivers[0].used);
}

#[test]
fn malformed_waivers_are_violations() {
    let missing_reason = "// ape-lint: allow(map-iter)\nfn f() {}\n";
    let report = scan_source("crates/core/src/fixture.rs", missing_reason, SIM);
    assert_eq!(rules_of(&report), vec![Rule::WaiverSyntax]);

    let unknown_rule = "// ape-lint: allow(hash-stuff) -- nope\nfn f() {}\n";
    let report = scan_source("crates/core/src/fixture.rs", unknown_rule, SIM);
    assert_eq!(rules_of(&report), vec![Rule::WaiverSyntax]);
}

// --- Preprocessing robustness --------------------------------------------

#[test]
fn strings_comments_and_doc_examples_do_not_trigger() {
    let src = r##"
fn f() -> &'static str {
    // let x: HashMap<u32, u32> = HashMap::new(); x.keys();
    /* Instant::now() inside a block comment */
    let s = "m.incr(\"ap.dns\", 1) and Instant::now()";
    let r = r#"rates.values().sum::<f64>()"#;
    let _ = (s, r);
    "SystemTime"
}

/// Doc example:
/// ```
/// let t = std::time::Instant::now();
/// ```
fn g() {}
"##;
    let report = scan_source("crates/simnet/src/fixture.rs", src, SIM);
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.violations.is_empty());
}

#[test]
fn json_output_is_well_formed_enough_to_grep() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}
"#;
    let report = scan_source("crates/core/src/fixture.rs", src, SIM);
    let json = report.to_json();
    assert!(json.contains("\"rule\": \"map-iter\""));
    assert!(json.contains("\"clean\": false"));
    assert!(json.starts_with('{') && json.ends_with('}'));
}

// --- Self-check -----------------------------------------------------------

#[test]
fn workspace_scans_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    let unwaived: Vec<_> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived lint violations: {unwaived:#?}"
    );
    assert!(
        report.waivers.len() <= 5,
        "waiver budget exceeded: {:#?}",
        report.waivers
    );
}
