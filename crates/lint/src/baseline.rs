//! The committed violation ledger (`lint-baseline.json`).
//!
//! New rules land strict on new code while pre-existing violations burn
//! down visibly: a baseline entry grants an allowance of `count` matching
//! violations keyed by `(file, rule, excerpt)` — the *normalized source
//! line*, not the line number, so the ledger survives unrelated edits above
//! a violation. A violation beyond its allowance fails the build; an entry
//! that no longer matches anything is stale and must be pruned (CI also
//! regenerates the file and diffs it byte-exact).
//!
//! The format is a machine-written JSON subset: one entry object per line,
//! sorted, so `--write-baseline` output is deterministic and the parser
//! here can stay tiny (the workspace has no serde).

use std::collections::BTreeMap;

use crate::{json_str, Report};

/// One allowance in the ledger.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Rule name (`as_str` form).
    pub rule: String,
    /// Normalized (whitespace-collapsed) source line of the violation.
    pub excerpt: String,
    /// How many identical violations are grandfathered.
    pub count: usize,
}

/// The parsed ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries, sorted by `(file, rule, excerpt)`.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Builds a ledger from a report's unwaived violations.
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for v in report.violations.iter().filter(|v| !v.waived) {
            *counts
                .entry((
                    v.file.clone(),
                    v.rule.as_str().to_owned(),
                    v.excerpt.clone(),
                ))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule, excerpt), count)| BaselineEntry {
                    file,
                    rule,
                    excerpt,
                    count,
                })
                .collect(),
        }
    }

    /// Serializes the ledger; byte-deterministic for identical entries.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"rule\": {}, \"excerpt\": {}, \"count\": {}}}",
                json_str(&e.file),
                json_str(&e.rule),
                json_str(&e.excerpt),
                e.count
            ));
        }
        out.push_str(if self.entries.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Parses ledger JSON as written by [`Baseline::to_json`]: one entry
    /// object per line. Anything else is a format error.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (no, line) in json.lines().enumerate() {
            let t = line.trim().trim_end_matches(',');
            if !t.starts_with("{\"file\":") {
                continue;
            }
            let parse = || -> Option<BaselineEntry> {
                let file = json_field_str(t, "file")?;
                let rule = json_field_str(t, "rule")?;
                let excerpt = json_field_str(t, "excerpt")?;
                let count = json_field_usize(t, "count")?;
                Some(BaselineEntry {
                    file,
                    rule,
                    excerpt,
                    count,
                })
            };
            entries.push(parse().ok_or_else(|| format!("baseline line {}: bad entry", no + 1))?);
        }
        let mut sorted = entries.clone();
        sorted.sort();
        if sorted != entries {
            return Err("baseline entries are not sorted; regenerate with --write-baseline".into());
        }
        Ok(Baseline { entries })
    }

    /// Marks up to each entry's allowance of matching unwaived violations
    /// as `baselined`. Returns stale-entry diagnostics: entries whose
    /// allowance exceeds what actually fires (including zero).
    pub fn apply(&self, report: &mut Report) -> Vec<String> {
        let mut remaining: BTreeMap<(&str, &str, &str), usize> = self
            .entries
            .iter()
            .map(|e| {
                (
                    (e.file.as_str(), e.rule.as_str(), e.excerpt.as_str()),
                    e.count,
                )
            })
            .collect();
        for v in report.violations.iter_mut().filter(|v| !v.waived) {
            let key = (v.file.as_str(), v.rule.as_str(), v.excerpt.as_str());
            if let Some(n) = remaining.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    v.baselined = true;
                }
            }
        }
        remaining
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|((file, rule, excerpt), n)| {
                format!("stale baseline entry ({n} unmatched): {file} [{rule}] `{excerpt}`")
            })
            .collect()
    }
}

/// Extracts `"key": "value"` from a single-line JSON object, unescaping.
fn json_field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = line.get(i + 2..i + 6)?;
                        let cp = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(cp)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let c = line[i..].chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Extracts `"key": <number>` from a single-line JSON object.
fn json_field_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(file: &str, rule: &str, excerpt: &str, count: usize) -> BaselineEntry {
        BaselineEntry {
            file: file.into(),
            rule: rule.into(),
            excerpt: excerpt.into(),
            count,
        }
    }

    #[test]
    fn json_round_trips_byte_exact() {
        let b = Baseline {
            entries: vec![
                entry("a.rs", "map-iter", "for x in m.keys() {", 2),
                entry(
                    "b.rs",
                    "sim-time-arith",
                    "let t = \"q\\n\".as_nanos() - 1;",
                    1,
                ),
            ],
        };
        let json = b.to_json();
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_ledger_round_trips() {
        let b = Baseline::default();
        let json = b.to_json();
        assert_eq!(Baseline::parse(&json).unwrap(), b);
    }

    #[test]
    fn unsorted_ledger_is_rejected() {
        let b = Baseline {
            entries: vec![
                entry("b.rs", "map-iter", "x", 1),
                entry("a.rs", "map-iter", "x", 1),
            ],
        };
        assert!(Baseline::parse(&b.to_json()).is_err());
    }
}
