//! The metric-name registry the `metric-registry` rule resolves against.
//!
//! Built from `ape_proto::names::{REGISTRY, DYNAMIC_PREFIXES}` for workspace
//! scans; fixture tests construct synthetic registries with
//! [`Registry::from_entries`]. Keeping this a plain value (rather than
//! having rules call into `ape_proto` directly) keeps `scan_source` a pure
//! function of its inputs.

use std::collections::{BTreeMap, BTreeSet};

/// Known metric names: full static keys, dynamic prefixes, and the const
/// idents interned ids must use.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Full key → const ident (`"ap.cache_hits"` → `"AP_CACHE_HITS"`).
    by_value: BTreeMap<String, String>,
    /// Registered dynamic prefixes (each ends with `.`).
    prefixes: Vec<String>,
    /// Const idents valid as `*_id` arguments (`AP_CACHE_HITS`…).
    idents: BTreeSet<String>,
}

impl Registry {
    /// The live workspace registry from `ape_proto::names`.
    pub fn workspace() -> Registry {
        Registry::from_entries(
            ape_proto::names::REGISTRY,
            ape_proto::names::DYNAMIC_PREFIXES,
        )
    }

    /// Builds a registry from `(ident, value)` static entries and
    /// `(ident, prefix)` dynamic-prefix entries.
    pub fn from_entries(entries: &[(&str, &str)], prefixes: &[(&str, &str)]) -> Registry {
        let mut reg = Registry::default();
        for (ident, value) in entries {
            reg.by_value
                .insert((*value).to_owned(), (*ident).to_owned());
            reg.idents.insert((*ident).to_owned());
        }
        for (ident, prefix) in prefixes {
            reg.prefixes.push((*prefix).to_owned());
            reg.idents.insert((*ident).to_owned());
        }
        reg
    }

    /// An empty registry (every name unresolvable) — fixture use only.
    pub fn empty() -> Registry {
        Registry::default()
    }

    /// Whether a full metric-name string resolves: an exact registered key,
    /// or a registered dynamic prefix with a non-empty suffix.
    pub fn resolves(&self, name: &str) -> bool {
        if self.by_value.contains_key(name) {
            return true;
        }
        self.prefixes
            .iter()
            .any(|p| name.len() > p.len() && name.starts_with(p.as_str()))
    }

    /// The const ident for an exactly-registered key, used by `--fix` to
    /// rewrite a literal into `ape_proto::names::<IDENT>`.
    pub fn const_for(&self, name: &str) -> Option<&str> {
        self.by_value.get(name).map(String::as_str)
    }

    /// Whether `ident` is a registered const ident (valid `*_id` argument).
    pub fn knows_ident(&self, ident: &str) -> bool {
        self.idents.contains(ident)
    }

    /// True when the registry has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.by_value.is_empty() && self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        Registry::from_entries(
            &[("AP_CACHE_HITS", "ap.cache_hits")],
            &[("CLIENT_APP_LATENCY_MS_PREFIX", "client.app_latency_ms.")],
        )
    }

    #[test]
    fn exact_and_prefix_resolution() {
        let reg = sample();
        assert!(reg.resolves("ap.cache_hits"));
        assert!(reg.resolves("client.app_latency_ms.maps"));
        assert!(!reg.resolves("client.app_latency_ms.")); // empty suffix
        assert!(!reg.resolves("ap.cache_hitss"));
        assert!(!reg.resolves("ap.typo"));
    }

    #[test]
    fn const_lookup_and_idents() {
        let reg = sample();
        assert_eq!(reg.const_for("ap.cache_hits"), Some("AP_CACHE_HITS"));
        assert_eq!(reg.const_for("ap.typo"), None);
        assert!(reg.knows_ident("AP_CACHE_HITS"));
        assert!(reg.knows_ident("CLIENT_APP_LATENCY_MS_PREFIX"));
        assert!(!reg.knows_ident("AP_STALE"));
    }

    #[test]
    fn workspace_registry_is_populated() {
        let reg = Registry::workspace();
        assert!(reg.resolves("net.messages"));
        assert!(reg.resolves("ap.cache_hits"));
        assert!(reg.knows_ident("CLIENT_FETCHES"));
        assert!(!reg.is_empty());
    }
}
