//! A small self-contained Rust lexer.
//!
//! `ape-lint` v1 stripped comments and strings with an ad-hoc state machine
//! and ran substring searches over the result. The v2 rule families
//! (span-balance, sim-time-arith, metric-registry, pub-api-debug) need real
//! token boundaries — `.as_nanos() - 1` is a violation while
//! `fn as_nanos_total() -> u64` is not — so this module tokenizes Rust
//! source properly: raw strings at any hash depth, nested block comments,
//! char-literal vs lifetime disambiguation, byte/raw-byte strings, and
//! byte-accurate spans so `--fix` can splice replacements back into the
//! original file.
//!
//! The lexer is deliberately smaller than a compiler front end: it does not
//! classify keywords (rules match identifier text), does not parse numeric
//! suffixes beyond gluing them to the number, and leaves `<`/`>` as single
//! puncts so generics never confuse shift detection.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `fn`, `as_nanos`, …).
    Ident,
    /// Lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// Numeric literal, suffix included (`1_000u64`, `0xFF`, `1.5e3`).
    Num,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators listed in [`COMBINED`] form one
    /// token (`::`, `->`, `=>`, `+=`, …), everything else is one char.
    Punct,
    /// `// …` comment. `doc` distinguishes `///` / `//!` prose.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// `/* … */` comment (nesting handled). `doc` marks `/**` / `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
}

/// One token with its byte span in the original source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Multi-char operators combined into a single [`TokenKind::Punct`] token.
/// Order matters: longer first so `..=` wins over `..`.
const COMBINED: &[&str] = &[
    "..=", "...", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=",
];

/// Tokenizes `src`. Invalid input (unterminated string, stray byte) never
/// panics: the lexer emits a best-effort token and continues, because lint
/// must degrade gracefully on code that rustc will reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut tokens = Vec::with_capacity(n / 4);
    let mut i = 0;
    let mut line: u32 = 1;
    while i < n {
        let c = bytes[i];
        let start = i;
        let start_line = line;
        match c {
            b'\n' => {
                line += 1;
                i += 1;
                continue;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let doc = matches!(bytes.get(i + 2), Some(b'/') | Some(b'!'))
                    // `////…` separator lines are not doc comments.
                    && bytes.get(i + 3) != Some(&b'/');
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment { doc },
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let doc = matches!(bytes.get(i + 2), Some(b'*') | Some(b'!'))
                    && bytes.get(i + 3) != Some(&b'*');
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::BlockComment { doc },
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'r' | b'b' if is_string_start(bytes, i) => {
                i = skip_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'b' if i + 1 < n && bytes[i + 1] == b'\'' => {
                i = skip_char_literal(bytes, i + 1).unwrap_or(i + 2);
                tokens.push(Token {
                    kind: TokenKind::Char,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    i = end;
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        start,
                        end: i,
                        line: start_line,
                    });
                } else {
                    // Lifetime: `'` + ident chars.
                    i += 1;
                    while i < n && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        start,
                        end: i,
                        line: start_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i = skip_number(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Num,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            c if is_ident_start(c) => {
                i += 1;
                while i < n && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    end: i,
                    line: start_line,
                });
            }
            _ => {
                // Punct, multi-char operators combined. Multi-byte UTF-8
                // (only legal inside strings/comments/idents in valid Rust)
                // is consumed whole so spans stay on char boundaries.
                if c >= 0x80 {
                    i += 1;
                    while i < n && bytes[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                } else {
                    let mut len = 1;
                    for op in COMBINED {
                        if src[i..].starts_with(op) {
                            len = op.len();
                            break;
                        }
                    }
                    i += len;
                }
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    start,
                    end: i,
                    line: start_line,
                });
            }
        }
    }
    tokens
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whether a string literal (raw or byte or both) starts at `i`, where
/// `bytes[i]` is `r` or `b`.
fn is_string_start(bytes: &[u8], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= n {
            return false;
        }
        if bytes[j] == b'"' {
            return true;
        }
    }
    if j < n && bytes[j] == b'r' {
        j += 1;
        while j < n && bytes[j] == b'#' {
            j += 1;
        }
        return j < n && bytes[j] == b'"';
    }
    false
}

/// Skips a string literal starting at `i` (`"`, `r"`, `r#"`, `b"`, `br#"`,
/// …), counting newlines into `line`. Returns the index past the closing
/// delimiter (or `len` if unterminated).
fn skip_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i;
    if j < n && bytes[j] == b'b' {
        j += 1;
    }
    let raw = j < n && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && bytes[j] == b'"');
    j += 1; // opening quote
    while j < n {
        match bytes[j] {
            b'\\' if !raw => {
                // A line-continuation escape (`\` + newline) still advances
                // the line counter.
                if bytes.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && bytes[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    n
}

/// If a char literal starts at `i` (which holds `'`), returns the index
/// past its closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 1 >= n {
        return None;
    }
    if bytes[i + 1] == b'\\' {
        return skip_char_literal(bytes, i);
    }
    if is_ident_start(bytes[i + 1]) {
        // `'a'` is a char, `'a` (no closing quote right after) a lifetime.
        // Multi-byte chars ('é') start >= 0x80 and fall through below.
        return (i + 2 < n && bytes[i + 2] == b'\'').then_some(i + 3);
    }
    if bytes[i + 1] == b'\'' {
        return None; // `''` — not valid; treat as two puncts-ish lifetime.
    }
    // Punct or multi-byte char payload: scan to the closing quote.
    skip_char_literal(bytes, i)
}

/// Scans a (possibly escaped) char literal starting at the `'` at `i`;
/// bounded so a stray quote cannot eat the file.
fn skip_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    let mut j = i + 1;
    if j < n && bytes[j] == b'\\' {
        j += 2; // skip the escape head (`\n`, `\u`, `\'`, …)
        while j < n && bytes[j] != b'\'' && j - i < 12 {
            j += 1;
        }
    } else {
        while j < n && bytes[j] != b'\'' && j - i < 6 {
            j += 1;
        }
    }
    (j < n && bytes[j] == b'\'').then_some(j + 1)
}

/// Skips a numeric literal: digits, `_`, radix prefixes, a fractional part
/// (only when `.` is followed by a digit, so ranges stay puncts), exponents
/// and type suffixes.
fn skip_number(bytes: &[u8], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i;
    while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        // `1e-3` / `0x…` handled by the alphanumeric sweep; `e±` exponents:
        if (bytes[j] == b'e' || bytes[j] == b'E')
            && j + 1 < n
            && (bytes[j + 1] == b'+' || bytes[j + 1] == b'-')
            && bytes.get(j + 2).is_some_and(u8::is_ascii_digit)
        {
            j += 2;
        }
        j += 1;
    }
    if j < n && bytes[j] == b'.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit) {
        j += 1;
        while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            if (bytes[j] == b'e' || bytes[j] == b'E')
                && j + 1 < n
                && (bytes[j + 1] == b'+' || bytes[j + 1] == b'-')
                && bytes.get(j + 2).is_some_and(u8::is_ascii_digit)
            {
                j += 2;
            }
            j += 1;
        }
    }
    j
}

/// Returns a copy of `src` with every comment, string and char literal
/// blanked to spaces **of the same byte length** (newlines preserved), and
/// the first two bytes of each string literal set to `""`. Line and column
/// positions are untouched, so line-oriented rules can substring-search the
/// result, and "call site passes a literal" stays detectable via the `"`.
pub fn blank_non_code(src: &str, tokens: &[Token]) -> String {
    let mut out = src.as_bytes().to_vec();
    for t in tokens {
        match t.kind {
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. } | TokenKind::Char => {
                for b in &mut out[t.start..t.end] {
                    if *b != b'\n' {
                        *b = b' ';
                    }
                }
            }
            TokenKind::Str => {
                for b in &mut out[t.start..t.end] {
                    if *b != b'\n' {
                        *b = b' ';
                    }
                }
                out[t.start] = b'"';
                if t.start + 1 < t.end {
                    out[t.start + 1] = b'"';
                }
            }
            _ => {}
        }
    }
    // Blanking only ever rewrites whole tokens with single-byte fillers.
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

/// The unescaped value of a plain (non-raw) or raw string token, or `None`
/// when the literal contains escapes the simple decoder does not handle
/// (registry names never need them).
pub fn string_value<'a>(src: &'a str, t: &Token) -> Option<&'a str> {
    let text = t.text(src);
    let body = text
        .strip_prefix('b')
        .unwrap_or(text)
        .trim_start_matches('r')
        .trim_start_matches('#')
        .trim_end_matches('#');
    let body = body.strip_prefix('"')?.strip_suffix('"')?;
    (!body.contains('\\')).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let ks = kinds("let x = a.as_nanos() - 1_000u64;");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "as_nanos", "(", ")", "-", "1_000u64", ";"]
        );
    }

    #[test]
    fn combined_operators_are_single_tokens() {
        let ks = kinds("a::b -> c => d += e .. f ..= g");
        let ops: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["::", "->", "=>", "+=", "..", "..="]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r####"let a = r#"no " end"#; let b = b"x"; let c = br##"y"##;"####;
        let strs: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(strs.len(), 3, "{strs:?}");
        assert!(strs[0].starts_with("r#\""));
        assert_eq!(strs[1], "b\"x\"");
        assert_eq!(strs[2], "br##\"y\"##");
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
        let ks = kinds(src);
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        let chars: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'x'", "'\\n'", "'\\''"]);
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let src = "/* a /* b */ c */ fn f() {} /// doc\n//! inner\n// plain";
        let ks = kinds(src);
        assert_eq!(
            ks[0].0,
            TokenKind::BlockComment { doc: false },
            "{:?}",
            ks[0]
        );
        let docs = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::LineComment { doc: true }))
            .count();
        let plain = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::LineComment { doc: false }))
            .count();
        assert_eq!((docs, plain), (2, 1));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* x\ny */\nb \"s\ntr\" c";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").unwrap();
        let c = toks.iter().find(|t| t.text(src) == "c").unwrap();
        assert_eq!(b.line, 4);
        assert_eq!(c.line, 5);
    }

    #[test]
    fn line_continuation_escapes_count_newlines() {
        // `\` + newline inside a string is an escape pair; the newline must
        // still advance the line counter or every later waiver/violation
        // line in the file drifts (seen on simnet/src/metrics.rs).
        let src = "let m = \"head \\\n         tail\";\nlet after = 1;";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.text(src) == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn blanking_preserves_length_and_lines() {
        let src = "m.incr(\"ap.x\", 1); // c\nlet s = r#\"multi\nline\"#;";
        let toks = lex(src);
        let blanked = blank_non_code(src, &toks);
        assert_eq!(blanked.len(), src.len());
        assert_eq!(blanked.matches('\n').count(), src.matches('\n').count());
        assert!(blanked.contains("m.incr(\"\""));
        assert!(!blanked.contains("ap.x"));
        assert!(!blanked.contains("// c"));
    }

    #[test]
    fn string_value_unescapes_simple_literals() {
        let src = "(\"ap.dns_queries\", r#\"raw\"#, \"has\\nescape\")";
        let toks = lex(src);
        let strs: Vec<Option<&str>> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| string_value(src, t))
            .collect();
        assert_eq!(strs, vec![Some("ap.dns_queries"), Some("raw"), None]);
    }

    #[test]
    fn floats_and_ranges_do_not_merge() {
        let ks = kinds("for i in 0..5 { let x = 1.5e-3; }");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&".."));
        assert!(texts.contains(&"5"));
        assert!(texts.contains(&"1.5e-3"));
    }
}
