//! The v2 syntax-aware rule families: span-balance, sim-time-arith,
//! metric-registry, pub-api-debug.
//!
//! These run on the comment-free token stream (plus the block tree), unlike
//! the v1 line rules which substring-search blanked source. Each detector
//! pushes [`Violation`]s; fixable ones carry a byte-span [`Fix`].
//!
//! Honesty about scope: span-balance is a *leak-shape* detector, not a path
//! analysis. It flags a span binding (started via `span_start`/`begin_trace`,
//! or resumed from state via a `span`/`*_span` binding) that is never
//! mentioned again inside its scope — the exact shape of the PR 5
//! `handle_dns_response` leak. A span that is used once but dropped on one
//! early-return path is beyond a zero-dependency linter; the runtime trace
//! tests cover that half.

use crate::lexer::{string_value, Token, TokenKind};
use crate::registry::Registry;
use crate::tree::BlockTree;
use crate::{Fix, Rule, Violation};

fn is_p(src: &str, t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text(src) == s
}

fn is_i(src: &str, t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text(src) == s
}

fn masked(mask: &[bool], t: &Token) -> bool {
    mask.get(t.line as usize - 1).copied().unwrap_or(false)
}

/// Index of the bracket matching the opener at `open_idx`, scanning forward.
fn find_close(src: &str, toks: &[Token], open_idx: usize) -> Option<usize> {
    let open = toks[open_idx].text(src);
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return None,
    };
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if is_p(src, t, open) {
            depth += 1;
        } else if is_p(src, t, close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the bracket matching the closer at `close_idx`, scanning back.
fn find_open(src: &str, toks: &[Token], close_idx: usize) -> Option<usize> {
    let close = toks[close_idx].text(src);
    let open = match close {
        ")" => "(",
        "]" => "[",
        "}" => "{",
        _ => return None,
    };
    let mut depth = 0i32;
    for k in (0..=close_idx).rev() {
        if is_p(src, &toks[k], close) {
            depth += 1;
        } else if is_p(src, &toks[k], open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// --- span-balance ---------------------------------------------------------

/// Whether a binding name marks a span by convention.
fn span_name(name: &str) -> bool {
    name == "span" || name.ends_with("_span")
}

/// Detects span bindings that are never used again in their scope.
pub fn span_balance(
    rel: &str,
    src: &str,
    toks: &[Token],
    tree: &BlockTree,
    mask: &[bool],
    out: &mut Vec<Violation>,
) {
    let n = toks.len();
    let mut i = 0;
    while i < n {
        let t = &toks[i];
        // Pattern A/B: `let [mut] NAME [: T] = RHS ;` where the RHS calls
        // span_start/begin_trace, or NAME follows the span convention.
        if is_i(src, t, "let")
            && !(i > 0 && (is_i(src, &toks[i - 1], "if") || is_i(src, &toks[i - 1], "while")))
        {
            if let Some(v) = check_let_binding(rel, src, toks, tree, mask, i) {
                out.push(v);
            }
            i += 1;
            continue;
        }
        // Pattern C: `if/while let Some(NAME…) = … { body }` resuming a
        // span from state (`pending.span`, `fetch.lookup_span.take()`, …).
        if (is_i(src, t, "if") || is_i(src, t, "while"))
            && i + 4 < n
            && is_i(src, &toks[i + 1], "let")
            && is_i(src, &toks[i + 2], "Some")
            && is_p(src, &toks[i + 3], "(")
        {
            if let Some(v) = check_if_let_binding(rel, src, toks, tree, mask, i) {
                out.push(v);
            }
        }
        i += 1;
    }
}

fn check_let_binding(
    rel: &str,
    src: &str,
    toks: &[Token],
    tree: &BlockTree,
    mask: &[bool],
    let_idx: usize,
) -> Option<Violation> {
    let n = toks.len();
    let mut j = let_idx + 1;
    if j < n && is_i(src, &toks[j], "mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // destructuring pattern — out of scope
    }
    let name = name_tok.text(src);
    if name.starts_with('_') || name == "let" {
        return None;
    }
    // Scan past an optional `: Type` annotation to the `=` (or bail at `;`).
    let mut k = j + 1;
    let mut depth = 0i32;
    while k < n {
        let t = &toks[k];
        if depth == 0 && is_p(src, t, "=") {
            break;
        }
        if depth == 0 && (is_p(src, t, ";") || is_p(src, t, "{") || is_p(src, t, "}")) {
            return None; // no initializer
        }
        if is_p(src, t, "(") || is_p(src, t, "[") || is_p(src, t, "<") {
            depth += 1;
        } else if is_p(src, t, ")") || is_p(src, t, "]") || is_p(src, t, ">") {
            depth -= 1;
        }
        k += 1;
    }
    if k >= n {
        return None;
    }
    // RHS: from past `=` to the statement's `;` at bracket depth 0.
    let rhs_start = k + 1;
    let mut depth = 0i32;
    let mut semi = None;
    for (m, t) in toks.iter().enumerate().skip(rhs_start) {
        if depth == 0 && is_p(src, t, ";") {
            semi = Some(m);
            break;
        }
        if is_p(src, t, "(") || is_p(src, t, "[") || is_p(src, t, "{") {
            depth += 1;
        } else if is_p(src, t, ")") || is_p(src, t, "]") || is_p(src, t, "}") {
            depth -= 1;
            if depth < 0 {
                break; // statement truncated by block close
            }
        }
    }
    let semi = semi?;
    let rhs_starts_span = toks[rhs_start..semi]
        .iter()
        .any(|t| is_i(src, t, "span_start") || is_i(src, t, "begin_trace"));
    if !rhs_starts_span && !span_name(name) {
        return None;
    }
    if masked(mask, name_tok) {
        return None;
    }
    // Scope: rest of the innermost block containing the `let`.
    let block = tree.innermost(let_idx);
    let used = toks[semi + 1..block.close.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text(src) == name);
    if used {
        return None;
    }
    Some(Violation::new(
        rel,
        name_tok.line as usize,
        Rule::SpanBalance,
        format!(
            "span binding `{name}` is started but never ended or stored; every span must reach \
             `span_end`/`span_end_at` or escape into pending state on all paths"
        ),
    ))
}

fn check_if_let_binding(
    rel: &str,
    src: &str,
    toks: &[Token],
    tree: &BlockTree,
    mask: &[bool],
    if_idx: usize,
) -> Option<Violation> {
    let n = toks.len();
    let mut inner = if_idx + 4;
    if inner < n && is_p(src, &toks[inner], "(") {
        inner += 1; // tuple pattern `Some((span, kind))`
    }
    let name_tok = toks.get(inner)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text(src);
    if name.starts_with('_') || !span_name(name) {
        return None;
    }
    if masked(mask, name_tok) {
        return None;
    }
    // The body block: first `{` at bracket depth 0 after the pattern.
    let mut depth = 0i32;
    let mut open = None;
    for (k, t) in toks.iter().enumerate().skip(if_idx + 3) {
        if is_p(src, t, "(") || is_p(src, t, "[") {
            depth += 1;
        } else if is_p(src, t, ")") || is_p(src, t, "]") {
            depth -= 1;
        } else if depth == 0 && is_p(src, t, "{") {
            open = Some(k);
            break;
        }
    }
    let open = open?;
    let block = tree.blocks.iter().find(|b| b.open == open)?;
    let used = toks[block.open + 1..block.close.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text(src) == name);
    if used {
        return None;
    }
    Some(Violation::new(
        rel,
        name_tok.line as usize,
        Rule::SpanBalance,
        format!(
            "span binding `{name}` resumed from pending state is never ended or re-stored; \
             end it with `span_end`/`span_end_at` or put it back"
        ),
    ))
}

// --- sim-time-arith -------------------------------------------------------

/// Integer-valued time accessors: raw arithmetic right after these leaks
/// untyped nanoseconds.
const INT_TIME_ACCESSORS: &[&str] = &["as_nanos", "as_micros", "as_millis", "as_secs"];
/// All time accessors: an `as` narrowing cast after any of these truncates.
const ALL_TIME_ACCESSORS: &[&str] = &[
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "as_secs_f64",
    "as_millis_f64",
];
const ARITH: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];
const NARROW_INT: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Detects raw arithmetic / truncation casts on time values outside
/// `crates/simnet/src/time.rs` (the one place typed time math lives).
pub fn sim_time_arith(
    rel: &str,
    src: &str,
    toks: &[Token],
    mask: &[bool],
    out: &mut Vec<Violation>,
) {
    let n = toks.len();
    for i in 0..n {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(src);
        // `.accessor()` followed by arithmetic or an `as` narrowing cast,
        // or preceded by an arithmetic operator.
        if ALL_TIME_ACCESSORS.contains(&text)
            && i >= 1
            && is_p(src, &toks[i - 1], ".")
            && i + 2 < n
            && is_p(src, &toks[i + 1], "(")
            && is_p(src, &toks[i + 2], ")")
        {
            if masked(mask, t) {
                continue;
            }
            let after = toks.get(i + 3);
            let int_accessor = INT_TIME_ACCESSORS.contains(&text);
            if int_accessor && after.is_some_and(|a| ARITH.contains(&a.text(src))) {
                out.push(Violation::new(
                    rel,
                    t.line as usize,
                    Rule::SimTimeArith,
                    format!(
                        "raw arithmetic on `.{text}()`; keep time math on SimTime/SimDuration \
                         (ops live in crates/simnet/src/time.rs)"
                    ),
                ));
                continue;
            }
            if after.is_some_and(|a| is_i(src, a, "as"))
                && toks
                    .get(i + 4)
                    .is_some_and(|c| NARROW_INT.contains(&c.text(src)))
            {
                let target = toks[i + 4].text(src);
                out.push(Violation::new(
                    rel,
                    t.line as usize,
                    Rule::SimTimeArith,
                    format!(
                        "truncating cast `.{text}() as {target}`; use a saturating/checked \
                         conversion from crates/simnet/src/time.rs"
                    ),
                ));
                continue;
            }
            if int_accessor {
                if let Some(b) = before_chain(src, toks, i) {
                    if ARITH[..5].contains(&toks[b].text(src))
                        && toks[b].kind == TokenKind::Punct
                        && !masked(mask, t)
                    {
                        out.push(Violation::new(
                            rel,
                            t.line as usize,
                            Rule::SimTimeArith,
                            format!(
                                "raw arithmetic on `.{text}()`; keep time math on \
                                 SimTime/SimDuration (ops live in crates/simnet/src/time.rs)"
                            ),
                        ));
                    }
                }
            }
        }
        // `from_nanos(…)` whose argument does arithmetic or casts inline:
        // the typed constructors (`from_nanos_f64`, `from_millis_f64`, …)
        // exist so call sites never hand-convert.
        if text == "from_nanos" && i + 1 < n && is_p(src, &toks[i + 1], "(") {
            if masked(mask, t) {
                continue;
            }
            if let Some(close) = find_close(src, toks, i + 1) {
                let args = &toks[i + 2..close];
                let has_arith = args.iter().any(|a| {
                    (a.kind == TokenKind::Punct && ARITH[..5].contains(&a.text(src)))
                        || is_i(src, a, "as")
                });
                if has_arith && !args.is_empty() {
                    out.push(Violation::new(
                        rel,
                        t.line as usize,
                        Rule::SimTimeArith,
                        "inline arithmetic/cast inside `from_nanos(…)`; use the typed \
                         constructors (`from_nanos_f64`, `from_millis_f64`, …) instead"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}

/// Index of the token immediately before the postfix receiver chain whose
/// final accessor ident is at `accessor_idx` (`a + b.c().as_nanos()` → the
/// `+`). `None` when the chain reaches the start of the file.
fn before_chain(src: &str, toks: &[Token], accessor_idx: usize) -> Option<usize> {
    let mut k = accessor_idx.checked_sub(2)?; // skip the `.`
    loop {
        let t = &toks[k];
        if is_p(src, t, ")") || is_p(src, t, "]") {
            k = find_open(src, toks, k)?.checked_sub(1)?;
            continue;
        }
        if t.kind == TokenKind::Ident || t.kind == TokenKind::Num {
            if k >= 1 && (is_p(src, &toks[k - 1], ".") || is_p(src, &toks[k - 1], "::")) {
                k = k.checked_sub(2)?;
                continue;
            }
            return k.checked_sub(1);
        }
        // Unexpected chain head (`(`, `=`, operator…): it is the boundary.
        return Some(k);
    }
}

// --- metric-registry ------------------------------------------------------

/// Metric-recording methods taking a *name string* first argument. Span
/// methods (`begin_trace`, `span_start`, …) take `SpanKind` names and stay
/// under the v1 `metric-name` rule.
const METRIC_STR_METHODS: &[&str] = &["incr", "observe", "record_point", "counter"];
/// Interned-id recording methods: the argument must be a registered const.
const METRIC_ID_METHODS: &[&str] = &["incr_id", "observe_id", "record_point_id"];

/// Checks metric-name literals and interned-id arguments against the
/// registry exported by `ape_proto::names`.
pub fn metric_registry(
    rel: &str,
    src: &str,
    toks: &[Token],
    mask: &[bool],
    reg: &Registry,
    out: &mut Vec<Violation>,
) {
    let n = toks.len();
    for i in 0..n {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || i == 0 || !is_p(src, &toks[i - 1], ".") {
            continue;
        }
        let method = t.text(src);
        let open = i + 1;
        if open >= n || !is_p(src, &toks[open], "(") {
            continue;
        }
        if masked(mask, t) {
            continue;
        }
        if METRIC_STR_METHODS.contains(&method) {
            let Some(arg) = toks.get(open + 1) else {
                continue;
            };
            if arg.kind != TokenKind::Str {
                continue;
            }
            let line = arg.line as usize;
            match string_value(src, arg) {
                Some(value) if reg.const_for(value).is_some() => {
                    let ident = reg.const_for(value).expect("checked");
                    out.push(
                        Violation::new(
                            rel,
                            line,
                            Rule::MetricRegistry,
                            format!(
                                "literal metric name \"{value}\" duplicates the registered \
                                 constant; use `ape_proto::names::{ident}`"
                            ),
                        )
                        .with_fix(Fix {
                            start: arg.start,
                            end: arg.end,
                            replacement: format!("ape_proto::names::{ident}"),
                        }),
                    );
                }
                Some(value) if reg.resolves(value) => {
                    out.push(Violation::new(
                        rel,
                        line,
                        Rule::MetricRegistry,
                        format!(
                            "literal metric name \"{value}\" matches a registered dynamic \
                             prefix; build it with the helper next to the `*_PREFIX` constant \
                             in `ape_proto::names`"
                        ),
                    ));
                }
                Some(value) => {
                    out.push(Violation::new(
                        rel,
                        line,
                        Rule::MetricRegistry,
                        format!(
                            "unregistered metric name \"{value}\"; add it to \
                             `ape_proto::names` (REGISTRY) or use an existing constant"
                        ),
                    ));
                }
                None => {
                    out.push(Violation::new(
                        rel,
                        line,
                        Rule::MetricRegistry,
                        "escaped/opaque metric-name literal cannot resolve against \
                         `ape_proto::names`; use a registered constant"
                            .to_owned(),
                    ));
                }
            }
        } else if METRIC_ID_METHODS.contains(&method) {
            // First argument: the path's final SCREAMING_CASE ident must be
            // a registered const. Lowercase (variables) are skipped — the
            // static side cannot resolve them.
            let Some(close) = find_close(src, toks, open) else {
                continue;
            };
            let mut depth = 0i32;
            let mut last_const: Option<usize> = None;
            for ai in open + 1..close {
                let a = &toks[ai];
                if is_p(src, a, "(") {
                    depth += 1;
                } else if is_p(src, a, ")") {
                    depth -= 1;
                } else if depth == 0 && is_p(src, a, ",") {
                    break;
                } else if depth == 0 && a.kind == TokenKind::Ident {
                    let text = a.text(src);
                    if text.len() > 1
                        && text
                            .chars()
                            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                    {
                        // `IDS[i]` / `IDS.len()` / `F(x)` are expressions
                        // *on* a const (e.g. indexing an id table), not a
                        // terminal id path — only flag the bare/path form.
                        let next = toks.get(ai + 1);
                        let indexed = next.is_some_and(|t| {
                            is_p(src, t, "[") || is_p(src, t, "(") || is_p(src, t, ".")
                        });
                        last_const = if indexed { None } else { Some(ai) };
                    }
                }
            }
            if let Some(ci) = last_const {
                let c = &toks[ci];
                let ident = c.text(src);
                if !reg.knows_ident(ident) {
                    out.push(Violation::new(
                        rel,
                        c.line as usize,
                        Rule::MetricRegistry,
                        format!(
                            "interned metric id `{ident}` is not in the `ape_proto::names` \
                             registry (stale or ad-hoc id)"
                        ),
                    ));
                }
            }
        }
    }
}

// --- pub-api-debug --------------------------------------------------------

/// Detects `pub struct`/`pub enum`/`pub union` without `#[derive(Debug)]`
/// or a manual `impl … Debug for` in the same file. Replaces the blunt
/// workspace-wide `missing_debug_implementations` warn with a waiverable,
/// sim-state-scoped rule.
pub fn pub_api_debug(
    rel: &str,
    src: &str,
    toks: &[Token],
    mask: &[bool],
    out: &mut Vec<Violation>,
) {
    let n = toks.len();
    // Pre-pass: type names with a manual Debug impl (`impl fmt::Debug for X`).
    let mut manual: Vec<&str> = Vec::new();
    for i in 0..n {
        if is_i(src, &toks[i], "Debug")
            && i + 2 < n
            && is_i(src, &toks[i + 1], "for")
            && toks[i + 2].kind == TokenKind::Ident
        {
            manual.push(toks[i + 2].text(src));
        }
    }
    for i in 0..n {
        if !is_i(src, &toks[i], "pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if i + 1 < n && is_p(src, &toks[i + 1], "(") {
            continue;
        }
        let Some(kw) = toks.get(i + 1) else { continue };
        let kw_text = kw.text(src);
        if !(kw.kind == TokenKind::Ident
            && (kw_text == "struct" || kw_text == "enum" || kw_text == "union"))
        {
            continue;
        }
        let Some(name_tok) = toks.get(i + 2) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident || masked(mask, name_tok) {
            continue;
        }
        let name = name_tok.text(src);
        if manual.contains(&name) || has_derive_debug(src, toks, i) {
            continue;
        }
        out.push(Violation::new(
            rel,
            name_tok.line as usize,
            Rule::PubApiDebug,
            format!(
                "public {kw_text} `{name}` has no `Debug`; derive it (or impl it) so sim state \
                 stays inspectable in test failures"
            ),
        ));
    }
}

/// Whether the attribute groups directly above token `i` (the `pub`)
/// include `derive(… Debug …)`.
fn has_derive_debug(src: &str, toks: &[Token], i: usize) -> bool {
    let mut k = i;
    while k >= 1 && is_p(src, &toks[k - 1], "]") {
        let Some(open) = find_open(src, toks, k - 1) else {
            return false;
        };
        if open == 0 || !is_p(src, &toks[open - 1], "#") {
            return false;
        }
        let group = &toks[open + 1..k - 1];
        let is_derive = group.first().is_some_and(|t| is_i(src, t, "derive"));
        if is_derive && group.iter().any(|t| is_i(src, t, "Debug")) {
            return true;
        }
        k = open - 1; // keep walking over stacked attributes
    }
    false
}
