//! `ape-lint` CLI: `cargo run -p ape-lint -- check [--json] [--list-waivers]`.

use std::process::ExitCode;

use ape_lint::{scan_workspace, workspace_root, Report};

const USAGE: &str = "\
ape-lint — determinism & protocol-invariant analyzer for the APE-CACHE workspace

USAGE:
    cargo run -p ape-lint -- check [--json]
    cargo run -p ape-lint -- check --list-waivers [--json]

COMMANDS:
    check            Scan crates/*/src and src/ for rule violations.
                     Exits 1 if any unwaived violation is found.

OPTIONS:
    --json           Machine-readable output.
    --list-waivers   Print the waiver ledger (file, line, rule, reason)
                     instead of violations. Unused waivers are flagged.

RULES:
    map-iter      no unordered HashMap/HashSet iteration in sim-state crates
    wall-clock    no Instant/SystemTime/ambient randomness outside crates/bench
    metric-name   no bare metric/span name literals at instrumentation sites
    float-fold    no f32/f64 accumulation over unordered collections

WAIVERS:
    // ape-lint: allow(<rule>) -- <reason>      (same line or line above)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut json = false;
    let mut list_waivers = false;
    for arg in &args {
        match arg.as_str() {
            "check" => check = true,
            "--json" => json = true,
            "--list-waivers" => list_waivers = true,
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ape-lint: unknown argument `{other}`\n");
                print!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !check && !list_waivers {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ape-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if list_waivers {
        print_waivers(&report, json);
        return ExitCode::SUCCESS;
    }
    print_check(&report, json);
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_check(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    for v in &report.violations {
        let tag = if v.waived { " (waived)" } else { "" };
        println!("{}:{}: [{}]{} {}", v.file, v.line, v.rule, tag, v.message);
    }
    let unwaived = report.unwaived().count();
    let waived = report.violations.len() - unwaived;
    println!(
        "ape-lint: {} files scanned, {} violation(s) ({} waived), {} waiver(s)",
        report.files_scanned,
        report.violations.len(),
        waived,
        report.waivers.len()
    );
    if unwaived > 0 {
        println!(
            "ape-lint: FAIL — fix the violations or add `// ape-lint: allow(<rule>) -- <why>`"
        );
    } else {
        println!("ape-lint: OK");
    }
}

fn print_waivers(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    if report.waivers.is_empty() {
        println!("ape-lint: no waivers in the workspace");
        return;
    }
    for w in &report.waivers {
        let tag = if w.used { "" } else { " (UNUSED)" };
        println!(
            "{}:{}: allow({}){} -- {}",
            w.file, w.line, w.rule, tag, w.reason
        );
    }
    println!("ape-lint: {} waiver(s)", report.waivers.len());
}
