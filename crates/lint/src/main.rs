//! `ape-lint` CLI: `cargo run -p ape-lint -- check [--json] [--list-waivers]`
//! plus `fix` and the baseline-ledger options.

use std::process::ExitCode;

use ape_lint::baseline::Baseline;
use ape_lint::{
    apply_fixes, scan_source, scan_workspace, workspace_files, workspace_root, FileContext,
    Registry, Report,
};

const USAGE: &str = "\
ape-lint — determinism & sim-safety analyzer for the APE-CACHE workspace

USAGE:
    cargo run -p ape-lint -- check [--json] [--no-baseline] [--baseline <path>]
    cargo run -p ape-lint -- check --write-baseline
    cargo run -p ape-lint -- check --list-waivers [--json]
    cargo run -p ape-lint -- fix

COMMANDS:
    check            Scan crates/*/src and src/ for rule violations.
                     Exits 1 on any violation that is neither waived nor
                     covered by the committed baseline, and on stale
                     baseline entries.
    fix              Apply mechanical rewrites (registry-constant
                     replacement, unused-waiver removal) in place, then
                     report what changed. Re-run `check` afterwards.

OPTIONS:
    --json             Machine-readable report (schema 2; validated in CI
                       against docs/lint-report.schema.json).
    --list-waivers     Print the waiver ledger (file, line, rule, reason)
                       with a used/unused summary instead of violations.
    --baseline <path>  Baseline ledger location (default:
                       <workspace>/lint-baseline.json).
    --no-baseline      Ignore the committed baseline: every unwaived
                       violation fails.
    --write-baseline   Regenerate the baseline from the current scan and
                       exit. CI diffs the committed file against this
                       output, so the ledger can shrink but never drift.

RULES:
    map-iter         no unordered HashMap/HashSet iteration in sim-state crates
    wall-clock       no Instant/SystemTime/ambient randomness outside crates/bench
    metric-name      no bare span/trace name literals at instrumentation sites
    float-fold       no f32/f64 accumulation over unordered collections
    span-balance     no span binding that is started/resumed but never ended
    sim-time-arith   no raw arithmetic or truncating casts on SimTime values
                     outside crates/simnet/src/time.rs
    metric-registry  metric names/ids must resolve against ape_proto::names
    pub-api-debug    public sim-state types must implement Debug
    unused-waiver    waivers must still match a violation (unwaivable)

WAIVERS:
    // ape-lint: allow(<rule>) -- <reason>      (same line or line above)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut fix = false;
    let mut json = false;
    let mut list_waivers = false;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut baseline_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" => check = true,
            "fix" => fix = true,
            "--json" => json = true,
            "--list-waivers" => list_waivers = true,
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => {
                    eprintln!("ape-lint: `--baseline` needs a path\n");
                    print!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ape-lint: unknown argument `{other}`\n");
                print!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !check && !fix && !list_waivers {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let reg = Registry::workspace();

    if fix {
        return run_fix(&root, &reg);
    }

    let mut report = match scan_workspace(&root, &reg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ape-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if list_waivers {
        print_waivers(&report, json);
        return ExitCode::SUCCESS;
    }

    let ledger_path = baseline_path
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    if write_baseline {
        let ledger = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&ledger_path, ledger.to_json()) {
            eprintln!("ape-lint: cannot write {}: {e}", ledger_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "ape-lint: wrote {} entr{} to {}",
            ledger.entries.len(),
            if ledger.entries.len() == 1 {
                "y"
            } else {
                "ies"
            },
            ledger_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut stale: Vec<String> = Vec::new();
    if !no_baseline && ledger_path.is_file() {
        let text = match std::fs::read_to_string(&ledger_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ape-lint: cannot read {}: {e}", ledger_path.display());
                return ExitCode::FAILURE;
            }
        };
        let ledger = match Baseline::parse(&text) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("ape-lint: {}: {e}", ledger_path.display());
                return ExitCode::FAILURE;
            }
        };
        stale = ledger.apply(&mut report);
    }

    print_check(&report, json);
    for s in &stale {
        eprintln!("ape-lint: {s}");
    }
    if !stale.is_empty() {
        eprintln!(
            "ape-lint: FAIL — baseline no longer matches the workspace; \
             prune it with `--write-baseline`"
        );
        return ExitCode::FAILURE;
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Applies every mechanical fix in place, file by file.
fn run_fix(root: &std::path::Path, reg: &Registry) -> ExitCode {
    let files = match workspace_files(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ape-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut changed = 0usize;
    let mut applied = 0usize;
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ape-lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = scan_source(&rel, &source, FileContext::for_path(&rel), reg);
        let n_fixes = report.fixable().count();
        if let Some(rewritten) = apply_fixes(&source, &report) {
            if let Err(e) = std::fs::write(&file, rewritten) {
                eprintln!("ape-lint: cannot write {rel}: {e}");
                return ExitCode::FAILURE;
            }
            println!("ape-lint: fixed {rel} ({n_fixes} rewrite(s))");
            changed += 1;
            applied += n_fixes;
        }
    }
    if changed == 0 {
        println!("ape-lint: nothing to fix");
    } else {
        println!("ape-lint: applied {applied} rewrite(s) across {changed} file(s); re-run `check`");
    }
    ExitCode::SUCCESS
}

fn print_check(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    for v in &report.violations {
        let tag = if v.waived {
            " (waived)"
        } else if v.baselined {
            " (baselined)"
        } else {
            ""
        };
        let fixable = if !v.waived && v.fix.is_some() {
            " [fixable]"
        } else {
            ""
        };
        println!(
            "{}:{}: [{}]{}{} {}",
            v.file, v.line, v.rule, tag, fixable, v.message
        );
    }
    let failing = report.failing().count();
    let waived = report.violations.iter().filter(|v| v.waived).count();
    let baselined = report.violations.iter().filter(|v| v.baselined).count();
    println!(
        "ape-lint: {} files scanned, {} violation(s) ({} waived, {} baselined), {} waiver(s)",
        report.files_scanned,
        report.violations.len(),
        waived,
        baselined,
        report.waivers.len()
    );
    if failing > 0 {
        println!(
            "ape-lint: FAIL — fix the violations, add `// ape-lint: allow(<rule>) -- <why>`, \
             or try `ape-lint fix` for [fixable] ones"
        );
    } else {
        println!("ape-lint: OK");
    }
}

fn print_waivers(report: &Report, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    if report.waivers.is_empty() {
        println!("ape-lint: no waivers in the workspace");
        return;
    }
    for w in &report.waivers {
        let tag = if w.used { "" } else { " (UNUSED)" };
        println!(
            "{}:{}: allow({}){} -- {}",
            w.file, w.line, w.rule, tag, w.reason
        );
    }
    let used = report.waivers.iter().filter(|w| w.used).count();
    println!(
        "ape-lint: {} waiver(s) ({} used, {} unused)",
        report.waivers.len(),
        used,
        report.waivers.len() - used
    );
}
