//! Brace-matched block tree over the token stream.
//!
//! Rules that reason about *scopes* — span-balance needs function bodies
//! and binding extents, the test mask needs `#[cfg(test)]` item bodies —
//! build on this instead of counting `{`/`}` per line. The tree is built
//! from the comment-free token stream, so braces inside strings or comments
//! can never unbalance it.

use crate::lexer::{Token, TokenKind};

/// One `{ … }` block. Indices refer to the comment-free token slice the
/// tree was built from.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the opening `{` token.
    pub open: usize,
    /// Index of the closing `}` token (or one past the last token when the
    /// file is truncated / unbalanced).
    pub close: usize,
    /// Child blocks in source order.
    pub children: Vec<usize>,
    /// If this block is a function body: the function's name.
    pub fn_name: Option<String>,
}

/// The tree over one file; `blocks[0]` is a synthetic root spanning the
/// whole token stream.
#[derive(Debug)]
pub struct BlockTree {
    /// All blocks, root first, then in opening order.
    pub blocks: Vec<Block>,
}

impl BlockTree {
    /// Builds the tree. `tokens` must be comment-free (see
    /// [`code_tokens`]).
    pub fn build(src: &str, tokens: &[Token]) -> BlockTree {
        let mut blocks = vec![Block {
            open: 0,
            close: tokens.len(),
            children: Vec::new(),
            fn_name: None,
        }];
        let mut stack: Vec<usize> = vec![0];
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text(src) {
                "{" => {
                    let id = blocks.len();
                    blocks.push(Block {
                        open: i,
                        close: tokens.len(),
                        children: Vec::new(),
                        fn_name: fn_name_before(src, tokens, i),
                    });
                    let parent = *stack.last().expect("root never popped");
                    blocks[parent].children.push(id);
                    stack.push(id);
                }
                "}" if stack.len() > 1 => {
                    let id = stack.pop().expect("checked non-root");
                    blocks[id].close = i;
                }
                _ => {}
            }
        }
        BlockTree { blocks }
    }

    /// Every block that is a function body, in source order.
    pub fn fn_bodies(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter().filter(|b| b.fn_name.is_some())
    }

    /// The innermost block containing token index `i`, if any beyond root.
    pub fn innermost(&self, i: usize) -> &Block {
        let mut best = &self.blocks[0];
        for b in &self.blocks[1..] {
            if b.open < i && i < b.close && (b.open > best.open || best.fn_name.is_none()) {
                best = b;
            }
        }
        best
    }
}

/// If the `{` at token index `open` starts a function body, returns the
/// function's name. Walks backwards over the signature (return type,
/// params, generics, `where` clauses) until it either finds `fn <name>` or
/// a token that proves this brace belongs to something else.
fn fn_name_before(src: &str, tokens: &[Token], open: usize) -> Option<String> {
    let mut i = open;
    let mut steps = 0usize;
    while i > 0 {
        i -= 1;
        steps += 1;
        if steps > 256 {
            return None; // pathological signature; give up quietly
        }
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => match t.text(src) {
                // A statement/item boundary before seeing `fn` means this
                // brace opens a non-fn block (struct literal, match, mod…).
                ";" | "{" | "}" => return None,
                // `=` means `… = … {` — a struct-literal initializer, or
                // a closure body; either way not a named fn body.
                "=" | "=>" => return None,
                _ => {}
            },
            TokenKind::Ident => {
                if t.text(src) == "fn" {
                    let name = tokens.get(i + 1)?;
                    if name.kind == TokenKind::Ident {
                        return Some(name.text(src).to_owned());
                    }
                    return None;
                }
                // `match x {`, `loop {`, `if c {`… keep scanning: those
                // keywords can legally appear inside a signature only in
                // const-generic defaults, which `;`/`=` guards catch.
                match t.text(src) {
                    "match" | "loop" | "while" | "for" | "if" | "else" | "unsafe" | "mod"
                    | "impl" | "trait" | "struct" | "enum" | "union" => return None,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    None
}

/// Filters the raw token stream down to code tokens (everything except
/// comments), preserving order.
pub fn code_tokens(tokens: &[Token]) -> Vec<Token> {
    tokens.iter().filter(|t| !t.is_comment()).copied().collect()
}

/// Per-line mask of `#[cfg(test)]` / `#[test]` regions, attribute line
/// through the item's closing brace. `n_lines` is the file's line count;
/// `tokens` must be comment-free.
pub fn test_mask(src: &str, tokens: &[Token], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text(src) == "#") {
            i += 1;
            continue;
        }
        // Parse `#[ … ]` and check for a test-gating attribute.
        let Some(close) = attr_close(src, tokens, i) else {
            i += 1;
            continue;
        };
        let is_test_attr = {
            let body: Vec<&str> = tokens[i + 2..close].iter().map(|t| t.text(src)).collect();
            body.first() == Some(&"test")
                || (body.first() == Some(&"cfg") && body.contains(&"test"))
        };
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Mask from the attribute through the annotated item. Skip any
        // further attributes, then find the item's `{ … }` (or `;`).
        let attr_line = tokens[i].line as usize;
        let mut j = close + 1;
        while j + 1 < tokens.len()
            && tokens[j].kind == TokenKind::Punct
            && tokens[j].text(src) == "#"
        {
            match attr_close(src, tokens, j) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut depth = 0i32;
        let mut end_line = attr_line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text(src) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line as usize;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line as usize;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line as usize;
            j += 1;
        }
        for l in attr_line..=end_line.min(n_lines) {
            if l >= 1 {
                mask[l - 1] = true;
            }
        }
        i = j + 1;
    }
    mask
}

/// For a `#` at token index `i`, returns the index of the matching `]` of
/// a `#[ … ]` attribute, if that is what follows.
fn attr_close(src: &str, tokens: &[Token], i: usize) -> Option<usize> {
    let open = tokens.get(i + 1)?;
    if !(open.kind == TokenKind::Punct && open.text(src) == "[") {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (BlockTree, Vec<Token>) {
        let toks = code_tokens(&lex(src));
        (BlockTree::build(src, &toks), toks)
    }

    #[test]
    fn fn_bodies_are_identified() {
        let src = r#"
impl Foo {
    fn alpha(&self, x: u64) -> u64 {
        if x > 0 { x } else { 0 }
    }
    pub(crate) fn beta<T: Clone>(t: T) where T: Send {
        match t { _ => {} }
    }
}
fn gamma() {}
"#;
        let (tree, _) = tree_of(src);
        let names: Vec<&str> = tree
            .fn_bodies()
            .map(|b| b.fn_name.as_deref().unwrap())
            .collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn struct_literals_and_match_blocks_are_not_fn_bodies() {
        let src = r#"
fn f() {
    let s = Style { bold: true };
    let v = match s { _ => 1 };
    let c = |x: u64| { x + 1 };
}
"#;
        let (tree, _) = tree_of(src);
        assert_eq!(tree.fn_bodies().count(), 1);
    }

    #[test]
    fn cfg_test_mod_is_masked_to_its_close() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let toks = code_tokens(&lex(src));
        let mask = test_mask(src, &toks, src.lines().count());
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_and_plain_test_attrs_are_masked() {
        let src = "#[cfg(all(test, debug_assertions))]\nfn a() {}\n#[test]\nfn b() {}\nfn c() {}\n";
        let toks = code_tokens(&lex(src));
        let mask = test_mask(src, &toks, src.lines().count());
        assert_eq!(mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_mod_decl_masks_only_the_decl() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let toks = code_tokens(&lex(src));
        let mask = test_mask(src, &toks, src.lines().count());
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn non_test_cfgs_are_not_masked() {
        let src = "#[cfg(debug_assertions)]\nfn a() {}\n#[cfg(feature = \"x\")]\nfn b() {}\n";
        let toks = code_tokens(&lex(src));
        let mask = test_mask(src, &toks, src.lines().count());
        assert!(mask.iter().all(|m| !m), "{mask:?}");
    }

    #[test]
    fn innermost_block_lookup() {
        let src = "fn f() { if x { y(); } }";
        let (tree, toks) = tree_of(src);
        let y_idx = toks.iter().position(|t| t.text(src) == "y").unwrap();
        let b = tree.innermost(y_idx);
        // The innermost block holding `y` is the `if` body, not the fn.
        assert!(b.fn_name.is_none());
    }
}
