//! # ape-lint — determinism & sim-safety analysis for APE-CACHE
//!
//! Every result in this workspace is simulation-derived, so the simulator's
//! bitwise-determinism contract *is* the result. This crate enforces the
//! source-level half of that contract (the runtime half is
//! `ape_simnet::World::check_determinism`). v2 is built on a small
//! self-contained Rust lexer ([`lexer`]) and a brace-matched block tree
//! ([`tree`]) — no `syn`, no external dependencies — and enforces nine
//! rules:
//!
//! Line rules (v1, now driven by lexer-based blanking):
//! - **`map-iter` (D1)** — no unordered iteration (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `for _ in &map`, …) over `HashMap`/`HashSet`
//!   in sim-state crates. Use `BTreeMap`/`BTreeSet` or a sorted snapshot.
//! - **`wall-clock` (D2)** — no wall-clock reads (`Instant::now`,
//!   `SystemTime`) or ambient randomness (`thread_rng`, `from_entropy`, …)
//!   outside `crates/bench`. All time is `SimTime`; all randomness flows
//!   through the seeded `SimRng`.
//! - **`metric-name` (D3)** — no bare name literals at *span/trace*
//!   instrumentation sites (`ctx.begin_trace("…")`, `.span_start("…")`, …).
//!   Use `SpanKind::…::as_str()`. (Metric-recording sites moved to the
//!   registry-aware `metric-registry` rule below.)
//! - **`float-fold` (D4)** — no `f32`/`f64` accumulation (`.sum::<f64>()`,
//!   `.fold(0.0, …)`) over unordered collections: float addition is not
//!   associative, so an unordered reduction is nondeterministic even when
//!   the element set is identical.
//!
//! Token rules (v2, see [`rules`]):
//! - **`span-balance`** — a span binding (started via
//!   `span_start`/`begin_trace`, or resumed from pending state) that is
//!   never ended or stored: the PR 5 `handle_dns_response` leak shape.
//! - **`sim-time-arith`** — raw arithmetic or truncating `as` casts on
//!   `SimTime`/`SimDuration` accessor results, and inline arithmetic in
//!   `from_nanos(…)`, outside `crates/simnet/src/time.rs`.
//! - **`metric-registry`** — metric-name literals at
//!   `incr`/`observe`/`record_point`/`counter` sites and the const idents
//!   at `*_id` sites must resolve against `ape_proto::names`
//!   ([`registry::Registry`]). Exact-match literals carry a `--fix`
//!   rewrite to the registered constant.
//! - **`pub-api-debug`** — `pub` sim-state types without `Debug`
//!   (replacing the blunt workspace-wide `missing_debug_implementations`
//!   warn with a precise, waiverable rule).
//! - **`unused-waiver`** — a waiver whose rule no longer fires on its
//!   line is an error (with a `--fix` removal), keeping the ledger honest.
//!
//! Plus the unwaivable **`waiver-syntax`** meta-rule for malformed waiver
//! comments.
//!
//! ## Waivers
//!
//! A violation can be waived with an explicit comment on the same line or
//! the line directly above:
//!
//! ```text
//! // ape-lint: allow(map-iter) -- point-lookup table, never iterated for results
//! ```
//!
//! The reason after `--` is mandatory; `ape-lint check --list-waivers`
//! prints every waiver (with a used/unused summary) so reviewers can audit
//! the accumulated debt. `unused-waiver` and `waiver-syntax` cannot be
//! waived.
//!
//! ## Baseline
//!
//! [`baseline::Baseline`] is the committed ledger (`lint-baseline.json`)
//! that lets new rules land strict on new code while pre-existing
//! violations burn down visibly: baselined violations are reported but do
//! not fail the build, the ledger may never grow, and stale entries error.
//!
//! ## Scope and honesty about the approach
//!
//! The lexer gives exact token boundaries (raw strings, nested block
//! comments, char/lifetime disambiguation), but there is still no type
//! inference: a hash map smuggled across a function boundary under a type
//! alias is not tracked, and span-balance flags the *never-used* leak
//! shape, not all-paths coverage. That is the deliberate trade-off for a
//! zero-dependency tool the repo can always build; the runtime race
//! detector and trace tests cover what the static side misses.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod tree;

pub use registry::Registry;

/// Crates whose state participates in simulation results: rules `map-iter`,
/// `sim-time-arith` and `pub-api-debug` apply to these only (the bench
/// harness may use hash maps and host time for its own bookkeeping; nothing
/// there feeds a simulated outcome).
pub const SIM_STATE_CRATES: &[&str] = &[
    "simnet", "nodes", "cachealg", "core", "proto", "dnswire", "appdag", "workload",
];

/// Crates allowed to read the wall clock / OS entropy (rule `wall-clock`
/// is skipped for these): only the measurement harness.
pub const WALL_CLOCK_CRATES: &[&str] = &["bench"];

/// The file where typed time math lives; exempt from `sim-time-arith`.
pub const TIME_IMPL_FILE: &str = "crates/simnet/src/time.rs";

/// The rules the scanner enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: unordered iteration over `HashMap`/`HashSet` in sim-state code.
    MapIter,
    /// D2: wall-clock or ambient randomness outside `crates/bench`.
    WallClock,
    /// D3: bare span/trace name literal at an instrumentation call site.
    MetricName,
    /// D4: float accumulation over an unordered collection.
    FloatFold,
    /// Span started/resumed but never ended or stored (leak shape).
    SpanBalance,
    /// Raw arithmetic / truncating cast on time values outside time.rs.
    SimTimeArith,
    /// Metric name/id does not resolve against `ape_proto::names`.
    MetricRegistry,
    /// Public sim-state type without `Debug`.
    PubApiDebug,
    /// A waiver whose rule no longer fires on its line (unwaivable).
    UnusedWaiver,
    /// A malformed `ape-lint:` waiver comment (unwaivable).
    WaiverSyntax,
}

impl Rule {
    /// The waiver/CLI name of the rule.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::MapIter => "map-iter",
            Rule::WallClock => "wall-clock",
            Rule::MetricName => "metric-name",
            Rule::FloatFold => "float-fold",
            Rule::SpanBalance => "span-balance",
            Rule::SimTimeArith => "sim-time-arith",
            Rule::MetricRegistry => "metric-registry",
            Rule::PubApiDebug => "pub-api-debug",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::WaiverSyntax => "waiver-syntax",
        }
    }

    /// Parses a waiver rule name. `unused-waiver` and `waiver-syntax` are
    /// intentionally not parseable: ledger-honesty rules cannot be waived.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "map-iter" => Some(Rule::MapIter),
            "wall-clock" => Some(Rule::WallClock),
            "metric-name" => Some(Rule::MetricName),
            "float-fold" => Some(Rule::FloatFold),
            "span-balance" => Some(Rule::SpanBalance),
            "sim-time-arith" => Some(Rule::SimTimeArith),
            "metric-registry" => Some(Rule::MetricRegistry),
            "pub-api-debug" => Some(Rule::PubApiDebug),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A mechanical rewrite `--fix` can apply: replace the byte range
/// `start..end` of the original file with `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Byte offset of the first replaced byte.
    pub start: usize,
    /// Byte offset one past the last replaced byte.
    pub end: usize,
    /// Replacement text (empty for deletions).
    pub replacement: String,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable description (includes the offending snippet).
    pub message: String,
    /// Whether a matching waiver covered this violation.
    pub waived: bool,
    /// Whether the committed baseline grandfathers this violation.
    pub baselined: bool,
    /// The normalized source line (whitespace collapsed) — the baseline key.
    pub excerpt: String,
    /// Mechanical rewrite, when one is safe.
    pub fix: Option<Fix>,
}

impl Violation {
    /// A fresh, unwaived violation; `excerpt` is filled in by the scanner.
    pub fn new(file: &str, line: usize, rule: Rule, message: String) -> Violation {
        Violation {
            file: file.to_owned(),
            line,
            rule,
            message,
            waived: false,
            baselined: false,
            excerpt: String::new(),
            fix: None,
        }
    }

    /// Attaches a mechanical fix.
    pub fn with_fix(mut self, fix: Fix) -> Violation {
        self.fix = Some(fix);
        self
    }
}

/// One `// ape-lint: allow(rule) -- reason` waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line the comment is on (covers this line and the next).
    pub line: usize,
    /// The rule waived.
    pub rule: Rule,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Whether any violation actually matched this waiver.
    pub used: bool,
    /// Byte span of the comment in the source (for `--fix` removal).
    pub span: (usize, usize),
}

/// Scan result over one file or a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All violations found, waived/baselined ones included (flagged).
    pub violations: Vec<Violation>,
    /// All waivers found, unused ones included (flagged).
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Violations not covered by a waiver (baselined ones included).
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived)
    }

    /// Violations that fail the build: neither waived nor baselined.
    pub fn failing(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived && !v.baselined)
    }

    /// Whether the scan is clean (no failing violations).
    pub fn is_clean(&self) -> bool {
        self.failing().next().is_none()
    }

    /// Violations carrying a fix that `--fix` would apply (unwaived only:
    /// a waiver is an explicit decision to keep the code as written).
    pub fn fixable(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| !v.waived && v.fix.is_some())
    }

    /// Serializes the report as a stable JSON document (hand-rolled — the
    /// workspace has no registry access, hence no serde). Schema 2; CI
    /// validates against `docs/lint-report.schema.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 2,\n  \"files_scanned\": ");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\n  \"clean\": ");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(",\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"waived\": {}, \
                 \"baselined\": {}, \"fixable\": {}, \"message\": {}, \"excerpt\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(v.rule.as_str()),
                v.waived,
                v.baselined,
                v.fix.is_some(),
                json_str(&v.message),
                json_str(&v.excerpt)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"used\": {}, \"reason\": {}}}",
                json_str(&w.file),
                w.line,
                json_str(w.rule.as_str()),
                w.used,
                json_str(&w.reason)
            ));
        }
        out.push_str(if self.waivers.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        out
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which rules apply to the file being scanned.
#[derive(Debug, Clone, Copy)]
pub struct FileContext {
    /// Apply sim-state rules (file belongs to a sim-state crate).
    pub sim_state: bool,
    /// Skip `wall-clock` (file belongs to the measurement harness).
    pub allow_wall_clock: bool,
}

impl FileContext {
    /// Context for a path under the workspace root, derived from the
    /// `crates/<name>/` component.
    pub fn for_path(rel: &str) -> FileContext {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        FileContext {
            sim_state: SIM_STATE_CRATES.contains(&crate_name),
            allow_wall_clock: WALL_CLOCK_CRATES.contains(&crate_name),
        }
    }
}

// --- Waiver harvesting ----------------------------------------------------

/// A waiver parsed from a comment, byte span included.
struct RawWaiver {
    line: usize,
    rule: Rule,
    reason: String,
    span: (usize, usize),
}

fn parse_waiver(
    comment: &str,
    line: usize,
    span: (usize, usize),
    waivers: &mut Vec<RawWaiver>,
    bad: &mut Vec<(usize, String)>,
) {
    let Some(idx) = comment.find("ape-lint:") else {
        return;
    };
    let rest = comment[idx + "ape-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        bad.push((line, "expected `allow(<rule>)` after `ape-lint:`".into()));
        return;
    };
    let Some(close) = rest.find(')') else {
        bad.push((line, "unclosed `allow(`".into()));
        return;
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::parse(rule_name) else {
        bad.push((line, format!("unknown rule `{rule_name}`")));
        return;
    };
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        bad.push((
            line,
            format!("waiver for `{rule_name}` needs a reason: `-- <why>`"),
        ));
        return;
    }
    waivers.push(RawWaiver {
        line,
        rule,
        reason: reason.to_owned(),
        span,
    });
}

// --- Identifier tracking (v1 line rules) ----------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in this
/// file: struct fields and `let` bindings with an explicit annotation,
/// `= HashMap::new()` initializers, and `let x = … .collect::<HashMap…>()`.
fn tracked_hash_idents(code_lines: &[&str]) -> BTreeMap<String, usize> {
    let mut tracked = BTreeMap::new();
    for (idx, line) in code_lines.iter().enumerate() {
        for ty in ["HashMap", "HashSet"] {
            // `ident: HashMap<` (field / annotated let / fn param).
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // Reject identifiers merely containing the type name.
                let before_ok = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
                let after = line[at + ty.len()..].chars().next().unwrap_or(' ');
                if !before_ok || is_ident_char(after) {
                    continue;
                }
                if let Some(name) = ident_before_colon(line, at) {
                    tracked.entry(name).or_insert(idx + 1);
                } else if let Some(name) = let_binding_target(line) {
                    // `let x = HashMap::new()` / `let x: … = … HashMap …`.
                    tracked.entry(name).or_insert(idx + 1);
                }
            }
        }
    }
    tracked
}

/// For `foo: HashMap<…>` (also `foo: &HashMap<…>` / `&mut HashMap<…>`) at
/// `type_pos`, returns `foo`.
fn ident_before_colon(line: &str, type_pos: usize) -> Option<String> {
    let mut prefix = line[..type_pos].trim_end();
    loop {
        if let Some(p) = prefix.strip_suffix("mut") {
            prefix = p.trim_end();
        } else if let Some(p) = prefix.strip_suffix('&') {
            prefix = p.trim_end();
        } else {
            break;
        }
    }
    let prefix = prefix.strip_suffix(':')?.trim_end();
    let end = prefix.len();
    let start = prefix
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .map(|(i, _)| i)
        .last()?;
    let name = &prefix[start..end];
    (!name.is_empty() && !name.chars().next().unwrap().is_ascii_digit()).then(|| name.to_owned())
}

/// For `let (mut) x = …`, returns `x`.
fn let_binding_target(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    (!name.is_empty()).then_some(name)
}

// --- Line-rule detection (v1) ---------------------------------------------

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

const WALL_CLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "getrandom",
    "RandomState",
];

/// Span/trace instrumentation call sites for `metric-name` (D3): the name
/// must be a `SpanKind::…::as_str()`. Metric-recording sites
/// (`incr`/`observe`/`record_point`/`counter`) are owned by the
/// registry-aware `metric-registry` rule instead.
const METRIC_METHODS: &[&str] = &[
    ".begin_trace(",
    ".span_start(",
    ".span_end(",
    ".span_end_at(",
    ".span_instant(",
];

const FLOAT_FOLD_PATTERNS: &[&str] = &[".sum::<f64", ".sum::<f32", ".fold(0.0", ".fold(0f"];

/// Returns the receiver identifier of a method call ending at `dot_pos`
/// (the index of the `.`): for `self.entries.keys()` → `entries`.
fn receiver_ident(line: &str, dot_pos: usize) -> Option<String> {
    let prefix = &line[..dot_pos];
    let end = prefix.len();
    let start = prefix
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .map(|(i, _)| i)
        .last()?;
    let name = &prefix[start..end];
    (!name.is_empty()).then(|| name.to_owned())
}

/// The statement window starting at `idx`: the line plus up to `extra`
/// following lines, stopping once a `;` or `{` closes the statement.
fn statement_window(code_lines: &[&str], idx: usize, extra: usize) -> String {
    let mut window = code_lines[idx].to_owned();
    let mut j = idx;
    while !window.contains(';')
        && !window.trim_end().ends_with('{')
        && j + 1 < code_lines.len()
        && j - idx < extra
    {
        j += 1;
        window.push(' ');
        window.push_str(code_lines[j]);
    }
    window
}

/// Detects `for pat in [&mut |&]ident {` over a tracked hash collection and
/// returns the identifier.
fn for_loop_hash_receiver(line: &str, tracked: &BTreeMap<String, usize>) -> Option<String> {
    let for_pos = find_keyword(line, "for ")?;
    let after_for = &line[for_pos + 4..];
    let in_pos = find_keyword(after_for, " in ")?;
    let expr = after_for[in_pos + 4..].trim();
    let expr = expr.split('{').next()?.trim();
    let expr = expr.strip_prefix("&mut ").unwrap_or(expr);
    let expr = expr.strip_prefix('&').unwrap_or(expr);
    let expr = expr.strip_prefix("self.").unwrap_or(expr);
    if !expr.is_empty() && expr.chars().all(is_ident_char) && tracked.contains_key(expr) {
        Some(expr.to_owned())
    } else {
        None
    }
}

/// Finds `kw` at a word boundary (so `before ` doesn't match `therefore `).
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(kw) {
        let at = from + pos;
        let boundary = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
        let first_is_space = kw.starts_with(' ');
        if boundary || first_is_space {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

/// Whether the argument list starting right after `(` contains a string
/// literal at any nesting depth before the call's closing paren. Blanked
/// code keeps every literal's opening `""`, so one `"` suffices.
fn first_arglist_has_literal(args: &str) -> bool {
    let mut depth = 1;
    for c in args.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            '"' => return true,
            _ => {}
        }
    }
    false
}

// --- Scanning -------------------------------------------------------------

/// Scans one file's source. `rel_path` is used for reporting, waiver
/// bookkeeping and the `time.rs` exemption; `ctx` selects which rules
/// apply; `reg` is the metric-name registry (usually
/// [`Registry::workspace`]).
pub fn scan_source(rel_path: &str, source: &str, ctx: FileContext, reg: &Registry) -> Report {
    let raw_tokens = lexer::lex(source);
    let blanked = lexer::blank_non_code(source, &raw_tokens);
    let code: Vec<lexer::Token> = tree::code_tokens(&raw_tokens);
    let block_tree = tree::BlockTree::build(source, &code);
    let src_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = blanked.lines().collect();
    let mask = tree::test_mask(source, &code, src_lines.len());

    // Harvest waivers from plain (non-doc) line comments.
    let mut raw_waivers: Vec<RawWaiver> = Vec::new();
    let mut bad_waivers: Vec<(usize, String)> = Vec::new();
    for t in &raw_tokens {
        if let lexer::TokenKind::LineComment { doc: false } = t.kind {
            parse_waiver(
                t.text(source),
                t.line as usize,
                (t.start, t.end),
                &mut raw_waivers,
                &mut bad_waivers,
            );
        }
    }

    let tracked = tracked_hash_idents(&code_lines);
    let mut violations = Vec::new();

    // v1 line rules over blanked source.
    for (idx, line) in code_lines.iter().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let line_no = idx + 1;

        // D1 map-iter + D4 float-fold share the tracked-receiver hit.
        let mut hash_iter_hit = false;
        for pat in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if let Some(recv) = receiver_ident(line, at) {
                    if tracked.contains_key(&recv) {
                        hash_iter_hit = true;
                        if ctx.sim_state {
                            violations.push(Violation::new(
                                rel_path,
                                line_no,
                                Rule::MapIter,
                                format!(
                                    "unordered iteration `{recv}{pat}` over a HashMap/HashSet \
                                     (declared line {}); use BTreeMap/BTreeSet or a sorted \
                                     snapshot",
                                    tracked[&recv]
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // `for x in &map` / `for x in map` forms.
        if let Some(recv) = for_loop_hash_receiver(line, &tracked) {
            hash_iter_hit = true;
            if ctx.sim_state {
                violations.push(Violation::new(
                    rel_path,
                    line_no,
                    Rule::MapIter,
                    format!(
                        "unordered `for … in {recv}` over a HashMap/HashSet (declared line {}); \
                         use BTreeMap/BTreeSet or a sorted snapshot",
                        tracked[&recv]
                    ),
                ));
            }
        }

        if hash_iter_hit {
            let window = statement_window(&code_lines, idx, 4);
            for pat in FLOAT_FOLD_PATTERNS {
                if window.contains(pat) {
                    violations.push(Violation::new(
                        rel_path,
                        line_no,
                        Rule::FloatFold,
                        format!(
                            "float accumulation `{pat}…` over an unordered collection; float \
                             addition is order-sensitive — collect and sort first"
                        ),
                    ));
                    break;
                }
            }
        }

        // D2 wall-clock / ambient randomness.
        if !ctx.allow_wall_clock {
            for pat in WALL_CLOCK_PATTERNS {
                if let Some(pos) = line.find(pat) {
                    let before_ok = pos == 0 || !is_ident_char(line.as_bytes()[pos - 1] as char);
                    if before_ok {
                        violations.push(Violation::new(
                            rel_path,
                            line_no,
                            Rule::WallClock,
                            format!(
                                "`{pat}` outside crates/bench; simulated code must use \
                                 SimTime/SimRng so runs are replayable"
                            ),
                        ));
                    }
                }
            }
        }

        // D3 bare span/trace name literals.
        for pat in METRIC_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let window = statement_window(&code_lines, idx, 2);
                let wpos = window.find(pat).map(|p| p + pat.len()).unwrap_or(0);
                if first_arglist_has_literal(&window[wpos..]) {
                    violations.push(Violation::new(
                        rel_path,
                        line_no,
                        Rule::MetricName,
                        format!(
                            "bare name literal in `{}…)` call; reference \
                             SpanKind::…::as_str() (or an `ape_proto::names` constant) instead",
                            &pat[..pat.len() - 1]
                        ),
                    ));
                    break;
                }
            }
        }
    }

    // v2 token rules.
    rules::span_balance(rel_path, source, &code, &block_tree, &mask, &mut violations);
    if ctx.sim_state && rel_path != TIME_IMPL_FILE {
        rules::sim_time_arith(rel_path, source, &code, &mask, &mut violations);
    }
    rules::metric_registry(rel_path, source, &code, &mask, reg, &mut violations);
    if ctx.sim_state {
        rules::pub_api_debug(rel_path, source, &code, &mask, &mut violations);
    }

    // Waiver application: a waiver on line L covers violations on L and L+1.
    let mut waivers: Vec<Waiver> = raw_waivers
        .into_iter()
        .map(|w| Waiver {
            file: rel_path.to_owned(),
            line: w.line,
            rule: w.rule,
            reason: w.reason,
            used: false,
            span: w.span,
        })
        .collect();
    for v in &mut violations {
        for w in &mut waivers {
            if w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line) {
                v.waived = true;
                w.used = true;
            }
        }
    }

    // Unused waivers are violations themselves, with a removal fix.
    for w in &waivers {
        if !w.used {
            violations.push(
                Violation::new(
                    rel_path,
                    w.line,
                    Rule::UnusedWaiver,
                    format!(
                        "waiver `allow({})` no longer matches any violation on line {} or {}; \
                         remove it (or re-justify it) so the ledger stays honest",
                        w.rule,
                        w.line,
                        w.line + 1
                    ),
                )
                .with_fix(waiver_removal_fix(source, w.span)),
            );
        }
    }

    for (line, msg) in bad_waivers {
        violations.push(Violation::new(
            rel_path,
            line,
            Rule::WaiverSyntax,
            format!("malformed ape-lint waiver: {msg}"),
        ));
    }

    // Fill excerpts (normalized raw source line — the baseline key) and
    // sort for stable output.
    for v in &mut violations {
        if let Some(line) = src_lines.get(v.line.saturating_sub(1)) {
            v.excerpt = line.split_whitespace().collect::<Vec<_>>().join(" ");
        }
    }
    violations.sort_by(|a, b| {
        (a.line, a.rule.as_str(), &a.message).cmp(&(b.line, b.rule.as_str(), &b.message))
    });
    waivers.sort_by_key(|w| w.line);

    Report {
        violations,
        waivers,
        files_scanned: 1,
    }
}

/// A fix deleting the waiver comment at `span`. If the comment is alone on
/// its line the whole line goes (trailing newline included); otherwise the
/// comment plus the spaces before it.
fn waiver_removal_fix(source: &str, span: (usize, usize)) -> Fix {
    let (start, end) = span;
    let line_start = source[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let prefix = &source[line_start..start];
    if prefix.chars().all(char::is_whitespace) {
        let line_end = source[end..]
            .find('\n')
            .map(|p| end + p + 1)
            .unwrap_or(source.len());
        Fix {
            start: line_start,
            end: line_end,
            replacement: String::new(),
        }
    } else {
        let trimmed = prefix.trim_end();
        Fix {
            start: line_start + trimmed.len(),
            end,
            replacement: String::new(),
        }
    }
}

/// Applies every fix attached to an unwaived violation of `report` to
/// `source`. Returns the rewritten file, or `None` when there is nothing
/// to fix. Overlapping fixes (should not happen) keep only the first.
pub fn apply_fixes(source: &str, report: &Report) -> Option<String> {
    let mut fixes: Vec<&Fix> = report.fixable().filter_map(|v| v.fix.as_ref()).collect();
    if fixes.is_empty() {
        return None;
    }
    fixes.sort_by_key(|f| (f.start, f.end));
    let mut applied: Vec<&Fix> = Vec::with_capacity(fixes.len());
    let mut last_end = 0usize;
    for f in fixes {
        if f.start >= last_end && f.end >= f.start && f.end <= source.len() {
            applied.push(f);
            last_end = f.end;
        }
    }
    if applied.is_empty() {
        return None;
    }
    let mut out = String::with_capacity(source.len());
    let mut cursor = 0usize;
    for f in applied {
        out.push_str(&source[cursor..f.start]);
        out.push_str(&f.replacement);
        cursor = f.end;
    }
    out.push_str(&source[cursor..]);
    Some(out)
}

// --- Workspace walking ----------------------------------------------------

/// Scans every crate source file under `root` (`crates/*/src/**/*.rs` and
/// the umbrella `src/`), merging per-file reports. Test directories and
/// `target/` are out of scope: rules govern shipping simulation code.
pub fn scan_workspace(root: &Path, reg: &Registry) -> std::io::Result<Report> {
    let mut report = Report::default();
    for file in workspace_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        let ctx = FileContext::for_path(&rel);
        let file_report = scan_source(&rel, &source, ctx, reg);
        report.violations.extend(file_report.violations);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// The files a workspace scan visits, sorted.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root, resolved from this crate's manifest directory so
/// `cargo run -p ape-lint` works from any working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}
