//! # ape-lint — determinism & protocol-invariant analysis for APE-CACHE
//!
//! Every result in this workspace is simulation-derived, so the simulator's
//! bitwise-determinism contract *is* the result. This crate enforces the
//! source-level half of that contract (the runtime half is
//! `ape_simnet::World::check_determinism`): a self-contained line/token
//! scanner — no `syn`, no registry dependencies — that walks the workspace
//! sources and reports violations of four rules:
//!
//! - **`map-iter` (D1)** — no unordered iteration (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `for _ in &map`, …) over `HashMap`/`HashSet`
//!   in sim-state crates. Use `BTreeMap`/`BTreeSet` or a sorted snapshot.
//! - **`wall-clock` (D2)** — no wall-clock reads (`Instant::now`,
//!   `SystemTime`) or ambient randomness (`thread_rng`, `from_entropy`, …)
//!   outside `crates/bench`. All time is `SimTime`; all randomness flows
//!   through the seeded `SimRng`.
//! - **`metric-name` (D3)** — no bare string literals at metric/span
//!   instrumentation call sites (`.incr("…")`, `.observe("…")`,
//!   `ctx.begin_trace("…")`, …). Names must reference the
//!   `ape_proto::names` constants (or `SpanKind::…::as_str()`), so the
//!   vocabulary stays greppable and collision-free.
//! - **`float-fold` (D4)** — no `f32`/`f64` accumulation (`.sum::<f64>()`,
//!   `.fold(0.0, …)`) over unordered collections: float addition is not
//!   associative, so an unordered reduction is nondeterministic even when
//!   the element set is identical.
//!
//! ## Waivers
//!
//! A violation can be waived with an explicit comment on the same line or
//! the line directly above:
//!
//! ```text
//! // ape-lint: allow(map-iter) -- point-lookup table, never iterated for results
//! ```
//!
//! The reason after `--` is mandatory; `ape-lint check --list-waivers`
//! prints every waiver so reviewers can audit the accumulated debt.
//!
//! ## Scope and honesty about the approach
//!
//! The scanner strips comments and string literals with a small state
//! machine, skips `#[cfg(test)]` modules (test assertions may use literal
//! metric names), and tracks which identifiers are declared with a
//! `HashMap`/`HashSet` type *within each file*. It has no type inference:
//! a hash map smuggled across a function boundary under a type alias will
//! not be tracked, and `float-fold` only recognizes explicit `.sum::` /
//! `.fold(0.0` reductions attached to a tracked-map iteration. That is the
//! deliberate trade-off for a zero-dependency tool the repo can always
//! build; the runtime race detector covers what the static side misses.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose state participates in simulation results: rule `map-iter`
/// applies to these only (the bench harness may use hash maps for its own
/// bookkeeping; iteration order there never feeds a simulated outcome).
pub const SIM_STATE_CRATES: &[&str] = &[
    "simnet", "nodes", "cachealg", "core", "proto", "dnswire", "appdag", "workload",
];

/// Crates allowed to read the wall clock / OS entropy (rule `wall-clock`
/// is skipped for these): only the measurement harness.
pub const WALL_CLOCK_CRATES: &[&str] = &["bench"];

/// The four rules the scanner enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: unordered iteration over `HashMap`/`HashSet` in sim-state code.
    MapIter,
    /// D2: wall-clock or ambient randomness outside `crates/bench`.
    WallClock,
    /// D3: bare metric/span name literal at an instrumentation call site.
    MetricName,
    /// D4: float accumulation over an unordered collection.
    FloatFold,
    /// A malformed `ape-lint:` waiver comment (never waivable itself).
    WaiverSyntax,
}

impl Rule {
    /// The waiver/CLI name of the rule.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::MapIter => "map-iter",
            Rule::WallClock => "wall-clock",
            Rule::MetricName => "metric-name",
            Rule::FloatFold => "float-fold",
            Rule::WaiverSyntax => "waiver-syntax",
        }
    }

    /// Parses a waiver rule name. `waiver-syntax` is intentionally not
    /// parseable: a broken waiver cannot waive itself.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "map-iter" => Some(Rule::MapIter),
            "wall-clock" => Some(Rule::WallClock),
            "metric-name" => Some(Rule::MetricName),
            "float-fold" => Some(Rule::FloatFold),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: Rule,
    /// Human-readable description (includes the offending snippet).
    pub message: String,
    /// Whether a matching waiver covered this violation.
    pub waived: bool,
}

/// One `// ape-lint: allow(rule) -- reason` waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line the comment is on (covers this line and the next).
    pub line: usize,
    /// The rule waived.
    pub rule: Rule,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Whether any violation actually matched this waiver.
    pub used: bool,
}

/// Scan result over one file or a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All violations found, waived ones included (flagged).
    pub violations: Vec<Violation>,
    /// All waivers found, unused ones included (flagged).
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Violations not covered by a waiver — these fail the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived)
    }

    /// Whether the scan is clean (no unwaived violations).
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Serializes the report as a stable JSON document (hand-rolled — the
    /// workspace has no registry access, hence no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"files_scanned\": ");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\n  \"clean\": ");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(",\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"waived\": {}, \"message\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(v.rule.as_str()),
                v.waived,
                json_str(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"used\": {}, \"reason\": {}}}",
                json_str(&w.file),
                w.line,
                json_str(w.rule.as_str()),
                w.used,
                json_str(&w.reason)
            ));
        }
        out.push_str(if self.waivers.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which rules apply to the file being scanned.
#[derive(Debug, Clone, Copy)]
pub struct FileContext {
    /// Apply `map-iter` (file belongs to a sim-state crate).
    pub sim_state: bool,
    /// Skip `wall-clock` (file belongs to the measurement harness).
    pub allow_wall_clock: bool,
}

impl FileContext {
    /// Context for a path under the workspace root, derived from the
    /// `crates/<name>/` component.
    pub fn for_path(rel: &str) -> FileContext {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        FileContext {
            sim_state: SIM_STATE_CRATES.contains(&crate_name),
            allow_wall_clock: WALL_CLOCK_CRATES.contains(&crate_name),
        }
    }
}

// --- Source preprocessing -------------------------------------------------

/// A file after comment/string stripping: per-line code text (strings
/// collapsed to `""`, comments blanked) plus the waivers harvested from the
/// comments before they were blanked.
struct Stripped {
    code_lines: Vec<String>,
    waivers: Vec<(usize, Rule, String)>, // (1-based line, rule, reason)
    bad_waivers: Vec<(usize, String)>,   // malformed waiver comments
}

/// Strips comments (line, nested block) and string literals (plain, raw,
/// byte) from Rust source, preserving line structure so reported line
/// numbers match the file. String literals are replaced by `""` so "a call
/// site passes a literal" remains detectable without its content.
fn strip(source: &str) -> Stripped {
    let bytes: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comments = String::with_capacity(64);
    let mut waivers = Vec::new();
    let mut bad_waivers = Vec::new();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let next = if i + 1 < n { bytes[i + 1] } else { '\0' };
        if c == '/' && next == '/' {
            // Line comment: harvest for waivers, blank from code.
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            comments.push_str(&text);
            comments.push('\n');
            // Waivers live in plain `//` comments only: doc comments are
            // prose (and may legitimately *show* waiver syntax).
            if !text.starts_with("///") && !text.starts_with("//!") {
                let line_no = code.matches('\n').count() + 1;
                parse_waiver(&text, line_no, &mut waivers, &mut bad_waivers);
            }
        } else if c == '/' && next == '*' {
            // Block comment, nested per Rust. Preserve newlines.
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        code.push('\n');
                    }
                    i += 1;
                }
            }
        } else if c == 'r' && (next == '"' || next == '#') && is_raw_string_start(&bytes, i) {
            // Raw string r"…" / r#"…"# (any hash depth). Also reached for
            // br"…" via the 'b' branch below.
            i = skip_raw_string(&bytes, i, &mut code);
        } else if c == 'b' && next == '"' {
            code.push_str("\"\"");
            i = skip_plain_string(&bytes, i + 1, &mut code);
        } else if c == 'b' && next == 'r' && is_raw_string_start(&bytes, i + 1) {
            i = skip_raw_string(&bytes, i + 1, &mut code);
        } else if c == '"' {
            code.push_str("\"\"");
            i = skip_plain_string(&bytes, i, &mut code);
        } else if c == '\'' {
            // Char literal vs lifetime. 'x' or '\…' is a literal; 'ident
            // (no closing quote nearby) is a lifetime.
            if let Some(end) = char_literal_end(&bytes, i) {
                code.push_str("' '");
                for &b in &bytes[i..end] {
                    if b == '\n' {
                        code.push('\n');
                    }
                }
                i = end;
            } else {
                code.push(c);
                i += 1;
            }
        } else {
            code.push(c);
            i += 1;
        }
    }
    Stripped {
        code_lines: code.lines().map(str::to_owned).collect(),
        waivers,
        bad_waivers,
    }
}

fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // bytes[i] == 'r'; raw string if followed by zero or more '#' then '"'.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

/// Skips `r##"…"##` starting at the `r`; emits `""` to `code`, preserving
/// newlines. Returns the index just past the closing delimiter.
fn skip_raw_string(bytes: &[char], i: usize, code: &mut String) -> usize {
    let mut j = i + 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // past opening quote
    code.push_str("\"\"");
    while j < bytes.len() {
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < bytes.len() && seen < hashes && bytes[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        if bytes[j] == '\n' {
            code.push('\n');
        }
        j += 1;
    }
    j
}

/// Skips a plain string starting at the opening quote index; preserves
/// newlines. Returns the index just past the closing quote.
fn skip_plain_string(bytes: &[char], i: usize, code: &mut String) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                code.push('\n');
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// If a char literal starts at `i` (which holds `'`), returns the index
/// just past its closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 1 >= n {
        return None;
    }
    if bytes[i + 1] == '\\' {
        // Escape: scan to the closing quote (handles '\n', '\u{…}').
        let mut j = i + 2;
        while j < n && bytes[j] != '\'' && j - i < 12 {
            j += 1;
        }
        return (j < n && bytes[j] == '\'').then_some(j + 1);
    }
    // One non-quote char then a quote → literal; otherwise a lifetime.
    (i + 2 < n && bytes[i + 1] != '\'' && bytes[i + 2] == '\'').then_some(i + 3)
}

fn parse_waiver(
    comment: &str,
    line: usize,
    waivers: &mut Vec<(usize, Rule, String)>,
    bad: &mut Vec<(usize, String)>,
) {
    let Some(idx) = comment.find("ape-lint:") else {
        return;
    };
    let rest = comment[idx + "ape-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        bad.push((line, "expected `allow(<rule>)` after `ape-lint:`".into()));
        return;
    };
    let Some(close) = rest.find(')') else {
        bad.push((line, "unclosed `allow(`".into()));
        return;
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::parse(rule_name) else {
        bad.push((line, format!("unknown rule `{rule_name}`")));
        return;
    };
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        bad.push((
            line,
            format!("waiver for `{rule_name}` needs a reason: `-- <why>`"),
        ));
        return;
    }
    waivers.push((line, rule, reason.to_owned()));
}

// --- Test-region masking --------------------------------------------------

/// Returns, per line, whether the line lies inside a `#[cfg(test)]` item
/// (typically `mod tests { … }`), tracked by brace depth on stripped code.
fn test_mask(code_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut pending_cfg = false;
    let mut skip_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    for (idx, line) in code_lines.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if let Some(until) = skip_depth {
            mask[idx] = true;
            depth += opens - closes;
            if depth <= until {
                skip_depth = None;
            }
            continue;
        }
        if pending_cfg && opens > 0 {
            // The cfg(test) item's body starts here.
            mask[idx] = true;
            let before = depth;
            depth += opens - closes;
            if depth > before {
                skip_depth = Some(before);
            }
            pending_cfg = false;
            continue;
        }
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            mask[idx] = true;
            let before = depth;
            depth += opens - closes;
            if depth > before {
                // `#[cfg(test)] mod tests {` on one line.
                skip_depth = Some(before);
            } else {
                pending_cfg = true;
            }
            continue;
        }
        if pending_cfg && line.trim().is_empty() {
            continue;
        }
        if pending_cfg && !line.trim_start().starts_with("#[") && opens == 0 {
            // e.g. `mod tests;` — nothing to mask beyond the declaration.
            mask[idx] = true;
            pending_cfg = false;
        }
        depth += opens - closes;
    }
    mask
}

// --- Identifier tracking --------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in this
/// file: struct fields and `let` bindings with an explicit annotation,
/// `= HashMap::new()` initializers, and `let x = … .collect::<HashMap…>()`.
fn tracked_hash_idents(code_lines: &[String]) -> BTreeMap<String, usize> {
    let mut tracked = BTreeMap::new();
    for (idx, line) in code_lines.iter().enumerate() {
        for ty in ["HashMap", "HashSet"] {
            // `ident: HashMap<` (field / annotated let / fn param).
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // Reject identifiers merely containing the type name.
                let before_ok = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
                let after = line[at + ty.len()..].chars().next().unwrap_or(' ');
                if !before_ok || is_ident_char(after) {
                    continue;
                }
                if let Some(name) = ident_before_colon(line, at) {
                    tracked.entry(name).or_insert(idx + 1);
                } else if let Some(name) = let_binding_target(line) {
                    // `let x = HashMap::new()` / `let x: … = … HashMap …`.
                    tracked.entry(name).or_insert(idx + 1);
                }
            }
        }
    }
    tracked
}

/// For `foo: HashMap<…>` (also `foo: &HashMap<…>` / `&mut HashMap<…>`) at
/// `type_pos`, returns `foo`.
fn ident_before_colon(line: &str, type_pos: usize) -> Option<String> {
    let mut prefix = line[..type_pos].trim_end();
    loop {
        if let Some(p) = prefix.strip_suffix("mut") {
            prefix = p.trim_end();
        } else if let Some(p) = prefix.strip_suffix('&') {
            prefix = p.trim_end();
        } else {
            break;
        }
    }
    let prefix = prefix.strip_suffix(':')?.trim_end();
    let end = prefix.len();
    let start = prefix
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .map(|(i, _)| i)
        .last()?;
    let name = &prefix[start..end];
    (!name.is_empty() && !name.chars().next().unwrap().is_ascii_digit()).then(|| name.to_owned())
}

/// For `let (mut) x = …`, returns `x`.
fn let_binding_target(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    (!name.is_empty()).then_some(name)
}

// --- Rule detection -------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

const WALL_CLOCK_PATTERNS: &[&str] = &[
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "getrandom",
    "RandomState",
];

const METRIC_METHODS: &[&str] = &[
    ".incr(",
    ".observe(",
    ".record_point(",
    ".counter(",
    ".begin_trace(",
    ".span_start(",
    ".span_end(",
    ".span_instant(",
];

const FLOAT_FOLD_PATTERNS: &[&str] = &[".sum::<f64", ".sum::<f32", ".fold(0.0", ".fold(0f"];

/// Returns the receiver identifier of a method call ending at `dot_pos`
/// (the index of the `.`): for `self.entries.keys()` → `entries`.
fn receiver_ident(line: &str, dot_pos: usize) -> Option<String> {
    let prefix = &line[..dot_pos];
    let end = prefix.len();
    let start = prefix
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .map(|(i, _)| i)
        .last()?;
    let name = &prefix[start..end];
    (!name.is_empty()).then(|| name.to_owned())
}

/// The statement window starting at `idx`: the line plus up to `extra`
/// following lines, stopping once a `;` or `{` closes the statement.
fn statement_window(code_lines: &[String], idx: usize, extra: usize) -> String {
    let mut window = code_lines[idx].clone();
    let mut j = idx;
    while !window.contains(';')
        && !window.ends_with('{')
        && j + 1 < code_lines.len()
        && j - idx < extra
    {
        j += 1;
        window.push(' ');
        window.push_str(&code_lines[j]);
    }
    window
}

/// Scans one file's source. `rel_path` is used only for reporting and
/// waiver bookkeeping; `ctx` selects which rules apply.
pub fn scan_source(rel_path: &str, source: &str, ctx: FileContext) -> Report {
    let stripped = strip(source);
    let mask = test_mask(&stripped.code_lines);
    let tracked = tracked_hash_idents(&stripped.code_lines);
    let mut violations = Vec::new();

    for (idx, line) in stripped.code_lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let line_no = idx + 1;

        // D1 map-iter + D4 float-fold share the tracked-receiver hit.
        let mut hash_iter_hit = false;
        for pat in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if let Some(recv) = receiver_ident(line, at) {
                    if tracked.contains_key(&recv) {
                        hash_iter_hit = true;
                        if ctx.sim_state {
                            violations.push(Violation {
                                file: rel_path.to_owned(),
                                line: line_no,
                                rule: Rule::MapIter,
                                message: format!(
                                    "unordered iteration `{recv}{pat}` over a HashMap/HashSet \
                                     (declared line {}); use BTreeMap/BTreeSet or a sorted \
                                     snapshot",
                                    tracked[&recv]
                                ),
                                waived: false,
                            });
                        }
                    }
                }
            }
        }
        // `for x in &map` / `for x in map` forms.
        if let Some(recv) = for_loop_hash_receiver(line, &tracked) {
            hash_iter_hit = true;
            if ctx.sim_state {
                violations.push(Violation {
                    file: rel_path.to_owned(),
                    line: line_no,
                    rule: Rule::MapIter,
                    message: format!(
                        "unordered `for … in {recv}` over a HashMap/HashSet (declared line {}); \
                         use BTreeMap/BTreeSet or a sorted snapshot",
                        tracked[&recv]
                    ),
                    waived: false,
                });
            }
        }

        if hash_iter_hit {
            let window = statement_window(&stripped.code_lines, idx, 4);
            for pat in FLOAT_FOLD_PATTERNS {
                if window.contains(pat) {
                    violations.push(Violation {
                        file: rel_path.to_owned(),
                        line: line_no,
                        rule: Rule::FloatFold,
                        message: format!(
                            "float accumulation `{pat}…` over an unordered collection; float \
                             addition is order-sensitive — collect and sort first"
                        ),
                        waived: false,
                    });
                    break;
                }
            }
        }

        // D2 wall-clock / ambient randomness.
        if !ctx.allow_wall_clock {
            for pat in WALL_CLOCK_PATTERNS {
                if let Some(pos) = line.find(pat) {
                    let before_ok = pos == 0 || !is_ident_char(line.as_bytes()[pos - 1] as char);
                    if before_ok {
                        violations.push(Violation {
                            file: rel_path.to_owned(),
                            line: line_no,
                            rule: Rule::WallClock,
                            message: format!(
                                "`{pat}` outside crates/bench; simulated code must use \
                                 SimTime/SimRng so runs are replayable"
                            ),
                            waived: false,
                        });
                    }
                }
            }
        }

        // D3 bare metric/span name literals.
        for pat in METRIC_METHODS {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let window = statement_window(&stripped.code_lines, idx, 2);
                let wpos = window.find(pat).map(|p| p + pat.len()).unwrap_or(0);
                if first_arglist_has_literal(&window[wpos..]) {
                    violations.push(Violation {
                        file: rel_path.to_owned(),
                        line: line_no,
                        rule: Rule::MetricName,
                        message: format!(
                            "bare name literal in `{}…)` call; reference an \
                             `ape_proto::names` constant (or SpanKind::…::as_str()) instead",
                            &pat[..pat.len() - 1]
                        ),
                        waived: false,
                    });
                    break;
                }
            }
        }
    }

    // Waiver application: a waiver on line L covers violations on L and L+1.
    let mut waivers: Vec<Waiver> = stripped
        .waivers
        .into_iter()
        .map(|(line, rule, reason)| Waiver {
            file: rel_path.to_owned(),
            line,
            rule,
            reason,
            used: false,
        })
        .collect();
    for v in &mut violations {
        for w in &mut waivers {
            if w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line) {
                v.waived = true;
                w.used = true;
            }
        }
    }
    for (line, msg) in stripped.bad_waivers {
        violations.push(Violation {
            file: rel_path.to_owned(),
            line,
            rule: Rule::WaiverSyntax,
            message: format!("malformed ape-lint waiver: {msg}"),
            waived: false,
        });
    }

    Report {
        violations,
        waivers,
        files_scanned: 1,
    }
}

/// Detects `for pat in [&mut |&]ident {` over a tracked hash collection and
/// returns the identifier.
fn for_loop_hash_receiver(line: &str, tracked: &BTreeMap<String, usize>) -> Option<String> {
    let for_pos = find_keyword(line, "for ")?;
    let after_for = &line[for_pos + 4..];
    let in_pos = find_keyword(after_for, " in ")?;
    let expr = after_for[in_pos + 4..].trim();
    let expr = expr.split('{').next()?.trim();
    let expr = expr.strip_prefix("&mut ").unwrap_or(expr);
    let expr = expr.strip_prefix('&').unwrap_or(expr);
    let expr = expr.strip_prefix("self.").unwrap_or(expr);
    if !expr.is_empty() && expr.chars().all(is_ident_char) && tracked.contains_key(expr) {
        Some(expr.to_owned())
    } else {
        None
    }
}

/// Finds `kw` at a word boundary (so `before ` doesn't match `therefore `).
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(kw) {
        let at = from + pos;
        let boundary = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
        let first_is_space = kw.starts_with(' ');
        if boundary || first_is_space {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

/// Whether the argument list starting right after `(` contains a string
/// literal at any nesting depth before the call's closing paren. Stripped
/// code collapses every literal to `""`, so one `"` suffices.
fn first_arglist_has_literal(args: &str) -> bool {
    let mut depth = 1;
    for c in args.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            '"' => return true,
            _ => {}
        }
    }
    false
}

// --- Workspace walking ----------------------------------------------------

/// Scans every crate source file under `root` (`crates/*/src/**/*.rs` and
/// the umbrella `src/`), merging per-file reports. Test directories and
/// `target/` are out of scope: rules govern shipping simulation code.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut report = Report::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(file)?;
        let ctx = FileContext::for_path(&rel);
        let file_report = scan_source(&rel, &source, ctx);
        report.violations.extend(file_report.violations);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root, resolved from this crate's manifest directory so
/// `cargo run -p ape-lint` works from any working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}
