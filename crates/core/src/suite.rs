//! The paper's 30-app evaluation suite: MovieTrailer, VirtualHome, and 28
//! synthesized apps (§V-A).

use ape_appdag::{generate_app, movie_trailer, virtual_home, AppId, AppSpec, DummyAppConfig};
use ape_simnet::SimRng;

/// Builds the full 30-app suite with the given synthetic-app parameters.
///
/// App ids 0 and 1 are MovieTrailer and VirtualHome; 2..30 are synthetic.
pub fn paper_suite(dummy: &DummyAppConfig, seed: u64) -> Vec<AppSpec> {
    let mut rng = SimRng::seed_from(seed);
    let mut apps = vec![movie_trailer(AppId::new(0)), virtual_home(AppId::new(1))];
    for i in 2..30 {
        apps.push(generate_app(AppId::new(i), dummy, &mut rng));
    }
    apps
}

/// Builds a suite of `n` synthetic apps only (for the sweep experiments,
/// where app quantity varies).
pub fn synthetic_suite(n: usize, dummy: &DummyAppConfig, seed: u64) -> Vec<AppSpec> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| generate_app(AppId::new(i as u32), dummy, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_30_apps_with_real_apps_first() {
        let suite = paper_suite(&DummyAppConfig::default(), 1);
        assert_eq!(suite.len(), 30);
        assert_eq!(suite[0].name(), "MovieTrailer");
        assert_eq!(suite[1].name(), "VirtualHome");
        // Ids are dense and unique.
        let mut ids: Vec<u32> = suite.iter().map(|a| a.id().get()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 30);
    }

    #[test]
    fn synthetic_suite_sizes() {
        for n in [5, 10, 30] {
            assert_eq!(synthetic_suite(n, &DummyAppConfig::default(), 2).len(), n);
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let a = paper_suite(&DummyAppConfig::default(), 9);
        let b = paper_suite(&DummyAppConfig::default(), 9);
        assert_eq!(a, b);
    }
}
