//! The §II-B empirical study (Table I): measuring CDN cache-lookup and
//! cache-retrieval anatomy from three vantage points.
//!
//! The paper probed Akamai-hosted sites (apple.com, microsoft.com,
//! yahoo.com) from Michigan, Tokyo and São Paulo with 100 DNS resolutions,
//! pings and traceroutes per cell. We cannot reach Akamai from a
//! simulation, so each cell gets a mini-Internet whose path parameters are
//! calibrated to the published measurements — and the *measured* values are
//! produced by actually running DNS resolutions (CNAME chase, TTL expiry
//! and all) and TCP handshakes through the simulated stack.

use std::net::Ipv4Addr;

use ape_dnswire::{DnsMessage, DomainName};
use ape_nodes::{AuthDnsNode, LdnsNode, OriginNode, ZoneAnswer};
use ape_proto::{ConnId, Msg};
use ape_simnet::{Context, LinkSpec, Node, NodeId, SimDuration, SimTime, World};

/// Path calibration for one (vantage point, site) cell.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// Vantage-point region name.
    pub region: &'static str,
    /// Probed site.
    pub site: &'static str,
    /// RTT to the local resolver, ms.
    pub ldns_rtt_ms: f64,
    /// RTT from the LDNS to the site's authoritative DNS, ms.
    pub adns_rtt_ms: f64,
    /// RTT from the LDNS to the CDN's DNS, ms.
    pub cdn_dns_rtt_ms: f64,
    /// Hop count to the serving cache (or origin) server.
    pub server_hops: u32,
    /// RTT to the serving server, ms.
    pub server_rtt_ms: f64,
}

/// One row cell of Table I, as measured through the simulation.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Vantage-point region.
    pub region: &'static str,
    /// Probed site.
    pub site: &'static str,
    /// Mean DNS resolution latency over the trials, ms.
    pub dns_resolution_ms: f64,
    /// Mean TCP round-trip time to the serving server, ms.
    pub rtt_ms: f64,
    /// Network hops to the serving server.
    pub hops: u32,
}

/// The nine cells of Table I, calibrated to the paper's measurements.
///
/// São Paulo has no Yahoo replica (the paper's observation): its traffic
/// crosses to a distant origin, and even its CDN DNS resolution leaves the
/// region.
pub fn table1_paths() -> Vec<PathSpec> {
    let cell = |region, site, ldns, adns, cdn, hops, rtt| PathSpec {
        region,
        site,
        ldns_rtt_ms: ldns,
        adns_rtt_ms: adns,
        cdn_dns_rtt_ms: cdn,
        server_hops: hops,
        server_rtt_ms: rtt,
    };
    vec![
        cell("Michigan, US", "Apple", 4.0, 28.0, 12.0, 13, 34.0),
        cell("Michigan, US", "Microsoft", 4.0, 30.0, 13.0, 13, 33.0),
        cell("Michigan, US", "Yahoo", 4.0, 32.0, 15.0, 16, 53.0),
        cell("Tokyo, Japan", "Apple", 4.0, 30.0, 12.0, 7, 22.0),
        cell("Tokyo, Japan", "Microsoft", 5.0, 38.0, 19.0, 10, 27.0),
        cell("Tokyo, Japan", "Yahoo", 5.0, 40.0, 20.0, 13, 93.0),
        cell("São Paulo, Brazil", "Apple", 5.0, 32.0, 13.0, 12, 19.0),
        cell("São Paulo, Brazil", "Microsoft", 5.0, 42.0, 19.0, 10, 19.0),
        // No regional Yahoo replica: every resolution crosses continents.
        cell("São Paulo, Brazil", "Yahoo", 5.0, 240.0, 215.0, 15, 156.0),
    ]
}

/// Probe node recording DNS and TCP handshake completions.
#[derive(Debug, Default)]
struct ProbeNode {
    dns_done: Option<SimTime>,
    syn_ack_done: Option<SimTime>,
}

impl Node<Msg> for ProbeNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Dns(m) if m.header.response => self.dns_done = Some(ctx.now()),
            Msg::TcpSynAck { .. } => self.syn_ack_done = Some(ctx.now()),
            _ => {}
        }
    }
}

/// Measures one Table I cell by running `trials` resolutions and TCP
/// handshakes through a calibrated mini-Internet, spaced 30 s apart so the
/// CDN's 20 s A-record TTL expires between trials (as it does in the wild).
pub fn measure_cell(path: &PathSpec, trials: usize, seed: u64) -> Table1Cell {
    let mut world = World::new(seed);
    let probe = world.add_node("probe", ProbeNode::default());
    let server = world.add_node(
        "cache-server",
        OriginNode::new(ape_nodes::Catalog::new(), SimDuration::from_micros(200)),
    );

    let site_name: DomainName = format!("www.{}.example", path.site.to_lowercase())
        .parse()
        .expect("valid site name");
    let cdn_name: DomainName = format!("www.{}.example.edgekey.example", path.site.to_lowercase())
        .parse()
        .expect("valid cdn name");
    let server_ip = Ipv4Addr::new(10, 9, 9, 9);

    let mut adns = AuthDnsNode::new(SimDuration::from_micros(300));
    adns.record(
        site_name.clone(),
        ZoneAnswer::Cname {
            target: cdn_name.clone(),
            ttl: 300,
        },
    );
    let adns_id = world.add_node("adns", adns);

    let mut cdn = AuthDnsNode::new(SimDuration::from_micros(300));
    cdn.record(
        cdn_name,
        ZoneAnswer::A {
            ip: server_ip,
            ttl: 20,
        },
    );
    let cdn_id = world.add_node("cdn-dns", cdn);

    let ldns = world.add_node(
        "ldns",
        LdnsNode::new(
            SimDuration::from_micros(200),
            vec![
                (site_name.suffix(2), adns_id),
                ("edgekey.example".parse().expect("static"), cdn_id),
            ],
        ),
    );

    let ms = SimDuration::from_millis_f64;
    world.connect(
        probe,
        ldns,
        LinkSpec::from_rtt(3, ms(path.ldns_rtt_ms)).jitter_mean(ms(path.ldns_rtt_ms * 0.06)),
    );
    world.connect(
        ldns,
        adns_id,
        LinkSpec::from_rtt(11, ms(path.adns_rtt_ms)).jitter_mean(ms(path.adns_rtt_ms * 0.06)),
    );
    world.connect(
        ldns,
        cdn_id,
        LinkSpec::from_rtt(8, ms(path.cdn_dns_rtt_ms)).jitter_mean(ms(path.cdn_dns_rtt_ms * 0.06)),
    );
    world.connect(
        probe,
        server,
        LinkSpec::from_rtt(path.server_hops, ms(path.server_rtt_ms))
            .jitter_mean(ms(path.server_rtt_ms * 0.04)),
    );

    let mut dns_total = 0.0;
    let mut rtt_total = 0.0;
    for trial in 0..trials {
        let start = world.now();
        world.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(trial as u16, site_name.clone())),
        );
        world.run_to_idle();
        let dns_done = world
            .node::<ProbeNode>(probe)
            .dns_done
            .expect("dns answered");
        dns_total += (dns_done - start).as_millis_f64();

        let t0 = world.now();
        world.post(
            probe,
            server,
            Msg::TcpSyn {
                conn: ConnId(trial as u64),
            },
        );
        world.run_to_idle();
        let syn_done = world
            .node::<ProbeNode>(probe)
            .syn_ack_done
            .expect("handshake answered");
        rtt_total += (syn_done - t0).as_millis_f64();

        // Space trials so short-TTL records expire, as in the real study.
        let next = world.now() + SimDuration::from_secs(30);
        world.run_until(next);
    }

    Table1Cell {
        region: path.region,
        site: path.site,
        dns_resolution_ms: dns_total / trials as f64,
        rtt_ms: rtt_total / trials as f64,
        hops: path.server_hops,
    }
}

/// Measures the full table.
pub fn measure_table1(trials: usize, seed: u64) -> Vec<Table1Cell> {
    table1_paths()
        .iter()
        .enumerate()
        .map(|(i, p)| measure_cell(p, trials, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn michigan_apple_matches_paper_scale() {
        let paths = table1_paths();
        let cell = measure_cell(&paths[0], 50, 7);
        // Paper: 18 ms DNS, 34 ms RTT, 13 hops.
        assert!(
            (10.0..30.0).contains(&cell.dns_resolution_ms),
            "dns {}",
            cell.dns_resolution_ms
        );
        assert!((30.0..40.0).contains(&cell.rtt_ms), "rtt {}", cell.rtt_ms);
        assert_eq!(cell.hops, 13);
    }

    #[test]
    fn sao_paulo_yahoo_is_the_outlier() {
        let paths = table1_paths();
        let sp_yahoo = measure_cell(&paths[8], 30, 7);
        let sp_apple = measure_cell(&paths[6], 30, 7);
        assert!(
            sp_yahoo.dns_resolution_ms > 5.0 * sp_apple.dns_resolution_ms,
            "yahoo {} vs apple {}",
            sp_yahoo.dns_resolution_ms,
            sp_apple.dns_resolution_ms
        );
        assert!(sp_yahoo.rtt_ms > 100.0);
    }

    #[test]
    fn full_table_has_nine_cells() {
        let table = measure_table1(5, 1);
        assert_eq!(table.len(), 9);
        // Average DNS resolution across cells lands in the tens of ms
        // (paper: 22 ms average excluding the São Paulo outlier).
        let non_outlier_mean: f64 =
            table[..8].iter().map(|c| c.dns_resolution_ms).sum::<f64>() / 8.0;
        assert!(
            (10.0..35.0).contains(&non_outlier_mean),
            "mean {non_outlier_mean}"
        );
    }
}
