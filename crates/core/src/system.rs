//! The four caching systems the evaluation compares (§V-A).

use std::fmt;

/// One of the paper's evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// APE-CACHE: DNS-piggybacked AP cache with PACM eviction.
    ApeCache,
    /// APE-CACHE-LRU: the APE-CACHE workflow with LRU eviction (ablation).
    ApeCacheLru,
    /// Wi-Cache: controller-mediated AP cache with LRU eviction.
    WiCache,
    /// Edge Cache: conventional DNS-located edge cache server.
    EdgeCache,
}

impl System {
    /// All systems in the paper's presentation order.
    pub const ALL: [System; 4] = [
        System::ApeCache,
        System::ApeCacheLru,
        System::WiCache,
        System::EdgeCache,
    ];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            System::ApeCache => "APE-CACHE",
            System::ApeCacheLru => "APE-CACHE-LRU",
            System::WiCache => "Wi-Cache",
            System::EdgeCache => "Edge Cache",
        }
    }

    /// Whether the system caches on the AP at all.
    pub fn caches_on_ap(self) -> bool {
        !matches!(self, System::EdgeCache)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(System::ApeCache.to_string(), "APE-CACHE");
        assert_eq!(System::WiCache.to_string(), "Wi-Cache");
        assert_eq!(System::EdgeCache.label(), "Edge Cache");
        assert_eq!(System::ALL.len(), 4);
    }

    #[test]
    fn ap_caching_classification() {
        assert!(System::ApeCache.caches_on_ap());
        assert!(System::ApeCacheLru.caches_on_ap());
        assert!(System::WiCache.caches_on_ap());
        assert!(!System::EdgeCache.caches_on_ap());
    }
}
