//! Trace analysis: per-request critical paths, latency attribution, and
//! exportable telemetry.
//!
//! The simulator records causally-linked spans (see `ape_simnet::trace`);
//! this module turns the raw event stream of one or more runs into:
//!
//! * a [`TraceLog`] — the merged, run-indexed event stream, exportable as
//!   JSONL (one event per line);
//! * an [`Attribution`] — where each request's latency went (DNS lookup,
//!   AP cache hit, delegation, WAN fetch, origin fill), as count / total /
//!   mean / p50 / p95 / p99 per stage;
//! * a plain-text critical-path report — span trees aggregated by their
//!   kind path, flamegraph-style;
//! * a Prometheus-style text snapshot of a run's metric registry.
//!
//! Everything here is deterministic: events are kept in recording order,
//! runs are merged in trial order, and all aggregation iterates `BTreeMap`s
//! — so every derived number and every exported byte is identical across
//! thread counts for the same seed.

use std::collections::BTreeMap;

use ape_proto::SpanKind;
use ape_simnet::{Histogram, Metrics, NodeId, TraceEvent, TracePhase};

/// One trace event tagged with the (merged) run it came from.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Index of the run within the merged log (trial order).
    pub run: u32,
    /// The recorded span event.
    pub event: TraceEvent,
}

/// The trace event stream of one or more runs of a single configuration.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    runs: u32,
    node_names: Vec<String>,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Wraps the events of one finished run (run index 0).
    pub fn from_run(node_names: Vec<String>, events: Vec<TraceEvent>) -> Self {
        TraceLog {
            runs: 1,
            node_names,
            records: events
                .into_iter()
                .map(|event| TraceRecord { run: 0, event })
                .collect(),
        }
    }

    /// Number of runs merged into this log.
    pub fn runs(&self) -> u32 {
        self.runs
    }

    /// The merged records, in (run, recording) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The registered name of `node`, or `"?"` for ids outside the world.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.node_names
            .get(node.as_raw() as usize)
            .map_or("?", String::as_str)
    }

    /// Appends another log's runs after this one's, re-indexing the
    /// incoming run numbers. Merging in trial order keeps the combined
    /// stream — and everything derived from it — deterministic.
    pub fn merge(&mut self, other: &TraceLog) {
        debug_assert!(
            self.node_names == other.node_names,
            "merging trace logs from different topologies"
        );
        let offset = self.runs;
        self.records
            .extend(other.records.iter().map(|r| TraceRecord {
                run: offset + r.run,
                event: r.event,
            }));
        self.runs += other.runs;
    }

    /// Serializes every event as JSON Lines, one event per line, tagged
    /// with the system label. Byte-identical across thread counts for the
    /// same seed.
    pub fn to_jsonl(&self, system: &str) -> String {
        let mut out = String::with_capacity(self.records.len() * 128);
        for r in &self.records {
            let e = &r.event;
            out.push_str("{\"system\":\"");
            json_escape_into(&mut out, system);
            out.push_str("\",\"run\":");
            out.push_str(&r.run.to_string());
            out.push_str(",\"trace\":");
            out.push_str(&e.trace.0.to_string());
            out.push_str(",\"span\":");
            out.push_str(&e.span.0.to_string());
            out.push_str(",\"parent\":");
            match e.parent {
                Some(p) => out.push_str(&p.0.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"node\":\"");
            json_escape_into(&mut out, self.node_name(e.node));
            out.push_str("\",\"kind\":\"");
            json_escape_into(&mut out, e.kind);
            out.push_str("\",\"phase\":\"");
            out.push_str(e.phase.as_str());
            out.push_str("\",\"at_ns\":");
            out.push_str(&e.at.as_nanos().to_string());
            out.push_str("}\n");
        }
        out
    }

    /// Computes the latency attribution across span kinds.
    pub fn attribution(&self, system: &str) -> Attribution {
        let fetch = SpanKind::Fetch.as_str();
        let mut traces = 0u64;
        let mut completed = 0u64;
        // Open spans keyed by (run, span id); span ids are unique per run.
        let mut open: BTreeMap<(u32, u64), ape_simnet::SimTime> = BTreeMap::new();
        let mut samples: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for kind in SpanKind::ALL {
            samples.insert(kind.as_str(), Histogram::new());
        }
        for r in &self.records {
            let e = &r.event;
            match e.phase {
                TracePhase::Start => {
                    if e.kind == fetch {
                        traces += 1;
                    }
                    open.insert((r.run, e.span.0), e.at);
                }
                TracePhase::End => {
                    let Some(started) = open.remove(&(r.run, e.span.0)) else {
                        continue;
                    };
                    if e.kind == fetch {
                        completed += 1;
                    }
                    samples
                        .entry(e.kind)
                        .or_default()
                        .record((e.at - started).as_millis_f64());
                }
                TracePhase::Instant => {}
            }
        }
        let stages = samples
            .into_iter()
            .map(|(kind, mut hist)| (kind.to_owned(), BucketStat::from_histogram(&mut hist)))
            .collect();
        Attribution {
            system: system.to_owned(),
            traces,
            completed,
            stages,
        }
    }

    /// Renders the flamegraph-style critical-path report: every completed
    /// span aggregated under its ancestor-kind path, with counts, totals
    /// and the share of root (fetch) time.
    pub fn critical_path_report(&self, system: &str) -> String {
        // Span identity → kind and parent, to reconstruct kind paths.
        let mut kind_of: BTreeMap<(u32, u64), &'static str> = BTreeMap::new();
        let mut parent_of: BTreeMap<(u32, u64), Option<u64>> = BTreeMap::new();
        let mut open: BTreeMap<(u32, u64), ape_simnet::SimTime> = BTreeMap::new();
        // Aggregate (count, total ms) per kind path, e.g.
        // ["fetch", "retrieval.delegation", "wan.fetch"].
        let mut paths: BTreeMap<Vec<&'static str>, (u64, f64)> = BTreeMap::new();
        for r in &self.records {
            let e = &r.event;
            let id = (r.run, e.span.0);
            match e.phase {
                TracePhase::Start => {
                    kind_of.insert(id, e.kind);
                    parent_of.insert(id, e.parent.map(|p| p.0));
                    open.insert(id, e.at);
                }
                TracePhase::End => {
                    let Some(started) = open.remove(&id) else {
                        continue;
                    };
                    let mut path = vec![e.kind];
                    let mut cursor = parent_of.get(&id).copied().flatten();
                    while let Some(parent) = cursor {
                        let pid = (r.run, parent);
                        let Some(kind) = kind_of.get(&pid) else { break };
                        path.push(kind);
                        cursor = parent_of.get(&pid).copied().flatten();
                    }
                    path.reverse();
                    let slot = paths.entry(path).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 += (e.at - started).as_millis_f64();
                }
                TracePhase::Instant => {}
            }
        }

        let root_total: f64 = paths
            .iter()
            .filter(|(path, _)| path.len() == 1)
            .map(|(_, (_, total))| *total)
            .sum();
        let mut out = format!(
            "critical paths — {system} ({} runs, {} events)\n",
            self.runs,
            self.records.len()
        );
        if paths.is_empty() {
            out.push_str("(no completed spans)\n");
            return out;
        }
        for (path, (count, total)) in &paths {
            let depth = path.len() - 1;
            let label = format!("{}{}", "  ".repeat(depth), path.last().expect("non-empty"));
            let mean = total / *count as f64;
            let share = if root_total > 0.0 {
                100.0 * total / root_total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{label:<34} count={count:<7} total={total:>12.3}ms  mean={mean:>9.3}ms  {share:>5.1}%\n"
            ));
        }
        out
    }
}

/// Latency statistics of one attribution stage, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketStat {
    /// Completed spans of this kind.
    pub count: u64,
    /// Sum of span durations.
    pub total_ms: f64,
    /// Mean span duration (0 when no spans completed).
    pub mean_ms: f64,
    /// Median span duration.
    pub p50_ms: f64,
    /// 95th-percentile span duration.
    pub p95_ms: f64,
    /// 99th-percentile span duration.
    pub p99_ms: f64,
}

impl BucketStat {
    fn from_histogram(hist: &mut Histogram) -> Self {
        // Incremental and bitwise identical to the seed's
        // `samples().iter().sum()` (both fold insertion order from -0.0,
        // with the same empty→+0.0 guard) — and, unlike the seed scan, it
        // also works for sketch histograms, which keep no samples.
        let total_ms = hist.sum();
        BucketStat {
            count: hist.count() as u64,
            total_ms,
            mean_ms: hist.mean(),
            p50_ms: hist.p50(),
            p95_ms: hist.p95(),
            p99_ms: hist.p99(),
        }
    }
}

/// Where request latency went, per span kind, for one system variant.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// System label the traces came from.
    pub system: String,
    /// Traces started (sampled-in client fetches).
    pub traces: u64,
    /// Traces whose root fetch span completed.
    pub completed: u64,
    /// Per-stage latency statistics, keyed by span-kind label. Every kind
    /// in [`SpanKind::ALL`] is present (zeroed when unused), so tables have
    /// a stable shape across systems.
    pub stages: BTreeMap<String, BucketStat>,
}

impl Attribution {
    /// The statistics of `kind`'s stage.
    pub fn stage(&self, kind: SpanKind) -> &BucketStat {
        self.stages
            .get(kind.as_str())
            .expect("all kinds are present")
    }

    /// Renders the stage table as aligned plain text.
    pub fn table(&self) -> String {
        let mut out = format!(
            "latency attribution — {} ({} traces, {} completed)\n{:<22} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
            self.system, self.traces, self.completed,
            "stage", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms"
        );
        for kind in SpanKind::ALL {
            let s = self.stage(kind);
            out.push_str(&format!(
                "{:<22} {:>7} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                kind.as_str(),
                s.count,
                s.total_ms,
                s.mean_ms,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms
            ));
        }
        out
    }

    /// Exports the attribution as Prometheus text-format summaries.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP apecache_trace_stage_latency_ms Stage latency attributed from request traces.\n\
             # TYPE apecache_trace_stage_latency_ms summary\n",
        );
        for (stage, s) in &self.stages {
            for (q, v) in [("0.5", s.p50_ms), ("0.95", s.p95_ms), ("0.99", s.p99_ms)] {
                out.push_str(&format!(
                    "apecache_trace_stage_latency_ms{{system=\"{}\",stage=\"{stage}\",quantile=\"{q}\"}} {v}\n",
                    self.system
                ));
            }
            out.push_str(&format!(
                "apecache_trace_stage_latency_ms_sum{{system=\"{}\",stage=\"{stage}\"}} {}\n",
                self.system, s.total_ms
            ));
            out.push_str(&format!(
                "apecache_trace_stage_latency_ms_count{{system=\"{}\",stage=\"{stage}\"}} {}\n",
                self.system, s.count
            ));
        }
        out.push_str("# TYPE apecache_trace_traces_total counter\n");
        out.push_str(&format!(
            "apecache_trace_traces_total{{system=\"{}\"}} {}\n",
            self.system, self.traces
        ));
        out.push_str("# TYPE apecache_trace_traces_completed_total counter\n");
        out.push_str(&format!(
            "apecache_trace_traces_completed_total{{system=\"{}\"}} {}\n",
            self.system, self.completed
        ));
        out
    }
}

/// Exports a run's metric registry as Prometheus text format: counters as
/// `apecache_<name>_total` and histograms as summaries (p50/p95/p99 plus
/// `_sum`/`_count`), all labelled with the system variant. Metric-name dots
/// become underscores. Deterministic: the registry iterates `BTreeMap`s.
pub fn prometheus_snapshot(metrics: &mut Metrics, system: &str) -> String {
    let mut out = String::new();
    let counters: Vec<(String, u64)> = metrics
        .counter_names()
        .map(|n| (n.to_owned(), metrics.counter(n)))
        .collect();
    for (name, value) in counters {
        out.push_str(&format!(
            "apecache_{}_total{{system=\"{system}\"}} {value}\n",
            mangle(&name)
        ));
    }
    let histogram_names: Vec<String> = metrics.histogram_names().map(str::to_owned).collect();
    for name in histogram_names {
        let mangled = mangle(&name);
        for (q, quantile) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            let v = metrics.quantile(&name, quantile);
            out.push_str(&format!(
                "apecache_{mangled}{{system=\"{system}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        let hist = metrics.histogram(&name).expect("name from registry");
        let sum: f64 = hist.sum();
        out.push_str(&format!(
            "apecache_{mangled}_sum{{system=\"{system}\"}} {sum}\n"
        ));
        out.push_str(&format!(
            "apecache_{mangled}_count{{system=\"{system}\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!(
            "apecache_{mangled}_dropped_total{{system=\"{system}\"}} {}\n",
            hist.dropped_samples()
        ));
    }
    out
}

fn mangle(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_proto::names;
    use ape_simnet::{SimTime, SpanId, TraceId};

    fn event(
        at_ms: u64,
        trace: u64,
        span: u64,
        parent: Option<u64>,
        kind: &'static str,
        phase: TracePhase,
    ) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            trace: TraceId(trace),
            span: SpanId(span),
            parent: parent.map(SpanId),
            node: NodeId::from_raw(0),
            kind,
            phase,
        }
    }

    fn sample_log() -> TraceLog {
        let fetch = SpanKind::Fetch.as_str();
        let lookup = SpanKind::Lookup.as_str();
        let hit = SpanKind::RetrievalHit.as_str();
        TraceLog::from_run(
            vec!["client0".to_owned()],
            vec![
                event(0, 0, 0, None, fetch, TracePhase::Start),
                event(0, 0, 1, Some(0), lookup, TracePhase::Start),
                event(4, 0, 1, Some(0), lookup, TracePhase::End),
                event(4, 0, 2, Some(0), hit, TracePhase::Start),
                event(10, 0, 2, Some(0), hit, TracePhase::End),
                event(10, 0, 0, None, fetch, TracePhase::End),
            ],
        )
    }

    #[test]
    fn attribution_buckets_span_durations() {
        let a = sample_log().attribution("TEST");
        assert_eq!(a.traces, 1);
        assert_eq!(a.completed, 1);
        assert_eq!(a.stage(SpanKind::Fetch).count, 1);
        assert_eq!(a.stage(SpanKind::Fetch).mean_ms, 10.0);
        assert_eq!(a.stage(SpanKind::Lookup).mean_ms, 4.0);
        assert_eq!(a.stage(SpanKind::RetrievalHit).mean_ms, 6.0);
        assert_eq!(a.stage(SpanKind::WanFetch).count, 0);
        assert_eq!(a.stages.len(), SpanKind::ALL.len());
    }

    #[test]
    fn merge_offsets_run_indices() {
        let mut a = sample_log();
        let b = sample_log();
        a.merge(&b);
        assert_eq!(a.runs(), 2);
        assert_eq!(a.len(), 12);
        assert_eq!(a.records()[6].run, 1);
        let attribution = a.attribution("TEST");
        assert_eq!(attribution.traces, 2);
        assert_eq!(attribution.completed, 2);
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let log = sample_log();
        let jsonl = log.to_jsonl("TEST");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"system\":\"TEST\""));
            assert!(line.contains("\"node\":\"client0\""));
        }
        assert!(jsonl.contains("\"parent\":null"));
        assert!(jsonl.contains("\"parent\":0"));
    }

    #[test]
    fn critical_path_report_nests_by_parentage() {
        let report = sample_log().critical_path_report("TEST");
        assert!(report.contains("fetch"), "{report}");
        assert!(report.contains("  lookup"), "{report}");
        assert!(report.contains("  retrieval.hit"), "{report}");
        assert!(report.contains("100.0%"), "{report}");
    }

    #[test]
    fn prometheus_export_has_summaries() {
        let prom = sample_log().attribution("TEST").prometheus();
        assert!(prom.contains(
            "apecache_trace_stage_latency_ms{system=\"TEST\",stage=\"fetch\",quantile=\"0.5\"} 10"
        ));
        assert!(prom.contains("apecache_trace_traces_total{system=\"TEST\"} 1"));
    }

    #[test]
    fn metric_snapshot_exports_counters_and_histograms() {
        let mut m = Metrics::new();
        m.incr(names::CLIENT_FETCHES, 3);
        m.observe(names::CLIENT_APP_LATENCY_MS, 5.0);
        m.observe(names::CLIENT_APP_LATENCY_MS, 7.0);
        let prom = prometheus_snapshot(&mut m, "TEST");
        assert!(prom.contains("apecache_client_fetches_total{system=\"TEST\"} 3"));
        assert!(prom.contains("apecache_client_app_latency_ms{system=\"TEST\",quantile=\"0.5\"} 5"));
        assert!(prom.contains("apecache_client_app_latency_ms_sum{system=\"TEST\"} 12"));
        assert!(prom.contains("apecache_client_app_latency_ms_count{system=\"TEST\"} 2"));
        assert!(prom.contains("apecache_client_app_latency_ms_dropped_total{system=\"TEST\"} 0"));
    }

    #[test]
    fn unmatched_spans_are_skipped_not_counted() {
        let fetch = SpanKind::Fetch.as_str();
        let log = TraceLog::from_run(
            vec!["client0".to_owned()],
            vec![event(0, 0, 0, None, fetch, TracePhase::Start)],
        );
        let a = log.attribution("TEST");
        assert_eq!(a.traces, 1);
        assert_eq!(a.completed, 0);
        assert_eq!(a.stage(SpanKind::Fetch).count, 0);
    }
}
