//! # apecache — AP + Edge caching for millisecond-level app latency
//!
//! A from-scratch Rust reproduction of **APE-CACHE** (ICDCS 2024): a
//! lightweight caching architecture running directly on WiFi access
//! points, interposed between mobile clients and conventional edge caches.
//!
//! The three contributions, and where they live:
//!
//! * **PACM** — priority-aware cache management —
//!   [`ape_cachealg::PacmPolicy`];
//! * **DNS-Cache** — AP cache lookups piggybacked on DNS queries —
//!   [`ape_dnswire`] (wire format) and [`ape_nodes::ApNode`] /
//!   [`ape_nodes::ClientNode`] (runtime);
//! * **declarative programming model** — the client-side `Cacheable`
//!   registry built from app DAG annotations — [`ape_appdag`] +
//!   [`ape_nodes::ClientNode`].
//!
//! This crate is the public face: it assembles the paper's Fig. 9 testbed
//! over the deterministic simulator, runs any of the four evaluated
//! systems (APE-CACHE, APE-CACHE-LRU, Wi-Cache, Edge Cache) under
//! identical workloads, and extracts the measurements behind every table
//! and figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use apecache::{synthetic_suite, run_system, System, TestbedConfig};
//! use ape_appdag::DummyAppConfig;
//! use ape_simnet::SimDuration;
//! use ape_workload::ScheduleConfig;
//!
//! let apps = synthetic_suite(5, &DummyAppConfig::default(), 7);
//! let mut config = TestbedConfig::new(System::ApeCache, apps);
//! config.schedule = ScheduleConfig { apps: 5, ..ScheduleConfig::default() };
//! let mut result = run_system(&config, SimDuration::from_mins(1));
//! let summary = result.summary();
//! assert!(summary.executions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod internet;
mod router;
mod run;
mod suite;
mod system;
mod testbed;
mod topology;
mod trace;

pub use internet::{measure_cell, measure_table1, table1_paths, PathSpec, Table1Cell};
pub use router::{replay_summary, replay_trace, RouterModel, RouterSample};
pub use run::{
    collect, collect_sharded, compare_systems, run_many, run_system, run_system_sharded,
    ParallelRunner, RunJob, RunResult, Summary,
};
pub use suite::{paper_suite, synthetic_suite};
pub use system::System;
pub use testbed::{build, build_sharded, ShardedTestbed, Testbed, TestbedConfig};
pub use topology::{
    build_topology, build_topology_sharded, collect_topology, collect_topology_sharded,
    grid_neighbors, grid_pos, grid_side, ShardedTopology, Topology, TopologyConfig,
};
pub use trace::{prometheus_snapshot, Attribution, BucketStat, TraceLog, TraceRecord};
