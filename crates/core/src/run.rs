//! Executing testbeds — sequentially or across a thread pool — and
//! summarizing their measurements.
//!
//! # Determinism contract
//!
//! Every run owns its own seeded [`World`](ape_simnet::World), so a job's
//! [`RunResult`] depends only on its `(config, duration)` pair — never on
//! which worker thread executed it or what ran beside it. [`run_many`]
//! returns results in job order, and replicated runs merge trial metrics in
//! trial order, so all derived [`Summary`] numbers are **bitwise identical**
//! across thread counts (`--threads 1` vs `--threads N`). A test in this
//! module pins that property via `f64::to_bits`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use ape_nodes::ClientNode;
use ape_proto::names;
use ape_simnet::{Metrics, NodeId, ProfileReport, SimDuration};

use crate::system::System;
use crate::testbed::{build, build_sharded, ShardedTestbed, Testbed, TestbedConfig};
use crate::trace::{Attribution, TraceLog};

/// Raw result of one run: the full metric registry plus merged client
/// counters.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which system ran.
    pub system: System,
    /// The world's metric registry at the end of the run.
    pub metrics: Metrics,
    /// Merged per-client outcome counters.
    pub report: ape_nodes::ClientReport,
    /// The run's span events, when tracing was enabled in the config.
    pub trace: Option<TraceLog>,
    /// Host-time attribution from the sim-loop self-profiler (all-zero
    /// unless the config enabled it).
    pub profile: ProfileReport,
}

/// Headline numbers extracted from a run, named after the paper's plots.
#[derive(Debug, Clone)]
pub struct Summary {
    /// System label.
    pub system: String,
    /// Mean cache-lookup latency over actual lookup operations (Fig. 11a).
    pub lookup_ms: f64,
    /// Mean retrieval latency over all fetches (Fig. 11c aggregates over
    /// hit locations the same way).
    pub retrieval_ms: f64,
    /// Mean retrieval latency for AP cache hits only.
    pub retrieval_hit_ms: f64,
    /// Mean retrieval latency for edge fetches only.
    pub retrieval_edge_ms: f64,
    /// Object-level latency: lookup + retrieval stage means (§V-B summary).
    pub object_level_ms: f64,
    /// Mean app-level latency (Fig. 12/13).
    pub app_latency_ms: f64,
    /// Median app-level latency.
    pub app_latency_p50_ms: f64,
    /// 95th-percentile app-level latency (Fig. 12 tail).
    pub app_latency_p95_ms: f64,
    /// 99th-percentile app-level latency.
    pub app_latency_p99_ms: f64,
    /// Per-app mean and p95 latency, keyed by app name.
    pub per_app_latency_ms: BTreeMap<String, (f64, f64)>,
    /// AP cache hit ratio across all cacheable fetches.
    pub hit_ratio: f64,
    /// AP cache hit ratio for high-priority fetches.
    pub high_priority_hit_ratio: f64,
    /// Completed app executions.
    pub executions: u64,
    /// Failed fetches.
    pub failures: u64,
    /// Mean AP CPU utilization (0..1).
    pub ap_cpu_mean: f64,
    /// Peak AP CPU utilization (0..1).
    pub ap_cpu_max: f64,
    /// Peak APE-CACHE memory on the AP, MB.
    pub ape_mem_mb_max: f64,
    /// Latency attribution from request traces (when tracing was on).
    pub attribution: Option<Attribution>,
}

/// Builds the testbed for `config`, runs it for `duration`, and collects
/// results.
pub fn run_system(config: &TestbedConfig, duration: SimDuration) -> RunResult {
    let mut bed = build(config);
    bed.world.run_for(duration);
    collect(config.system, &mut bed)
}

/// Collects results from an already-run testbed.
pub fn collect(system: System, bed: &mut Testbed) -> RunResult {
    let mut report = ape_nodes::ClientReport::default();
    for &client in &bed.clients {
        report.merge(&bed.world.node::<ClientNode>(client).report());
    }
    let trace = bed.world.trace().is_enabled().then(|| {
        let names: Vec<String> = (0..bed.world.node_count())
            .map(|i| bed.world.node_name(NodeId::from_raw(i as u32)).to_owned())
            .collect();
        TraceLog::from_run(names, bed.world.take_trace_events())
    });
    RunResult {
        system,
        metrics: bed.world.metrics().clone(),
        report,
        trace,
        profile: bed.world.profile_report(),
    }
}

/// Builds the sharded testbed for `config`, runs it for `duration` over
/// `shards` shards, and collects results.
///
/// The collected measurements are bitwise identical at any shard count
/// (the sharded engine's invariance contract); they differ from
/// [`run_system`]'s because the sharded world derives per-node RNG streams
/// instead of one global stream.
pub fn run_system_sharded(config: &TestbedConfig, shards: u32, duration: SimDuration) -> RunResult {
    let mut bed = build_sharded(config, shards);
    bed.world.run_for(duration);
    collect_sharded(config.system, &mut bed)
}

/// Collects results from an already-run sharded testbed, merging per-shard
/// metric registries and trace buffers in canonical order.
pub fn collect_sharded(system: System, bed: &mut ShardedTestbed) -> RunResult {
    let mut report = ape_nodes::ClientReport::default();
    for &client in &bed.clients {
        report.merge(&bed.world.node::<ClientNode>(client).report());
    }
    let metrics = bed.world.metrics_merged();
    let events = bed.world.take_trace_events();
    let trace = (!events.is_empty()).then(|| {
        let names: Vec<String> = (0..bed.world.node_count())
            .map(|i| bed.world.node_name(NodeId::from_raw(i as u32)).to_owned())
            .collect();
        TraceLog::from_run(names, events)
    });
    RunResult {
        system,
        metrics,
        report,
        trace,
        profile: bed.world.profile_report(),
    }
}

impl RunResult {
    /// Extracts the headline summary (sorting histograms as needed).
    pub fn summary(&mut self) -> Summary {
        let m = &mut self.metrics;
        let lookup_ms = m.mean(names::CLIENT_LOOKUP_QUERY_MS);
        let retrieval_ms = m.mean(names::CLIENT_RETRIEVAL_MS);
        let retrieval_hit_ms = m.mean(names::CLIENT_RETRIEVAL_HIT_MS);
        let retrieval_edge_ms = m.mean(names::CLIENT_RETRIEVAL_EDGE_MS);
        let app_latency_ms = m.mean(names::CLIENT_APP_LATENCY_MS);
        let app_latency_p50_ms = m.quantile(names::CLIENT_APP_LATENCY_MS, 0.50);
        let app_latency_p95_ms = m.quantile(names::CLIENT_APP_LATENCY_MS, 0.95);
        let app_latency_p99_ms = m.quantile(names::CLIENT_APP_LATENCY_MS, 0.99);

        let mut per_app_latency_ms = BTreeMap::new();
        let app_names: Vec<String> = m
            .histogram_names()
            .filter_map(|n| {
                n.strip_prefix(names::CLIENT_APP_LATENCY_MS_PREFIX)
                    .map(str::to_owned)
            })
            .collect();
        for name in app_names {
            let key = names::client_app_latency_ms(&name);
            let mean = m.mean(&key);
            let p95 = m.quantile(&key, 0.95);
            per_app_latency_ms.insert(name, (mean, p95));
        }

        let cpu = m.time_series(names::AP_CPU).cloned().unwrap_or_default();
        let mem = m
            .time_series(names::AP_APE_MEM_MB)
            .cloned()
            .unwrap_or_default();
        let attribution = self
            .trace
            .as_ref()
            .map(|t| t.attribution(self.system.label()));

        Summary {
            system: self.system.label().to_owned(),
            lookup_ms,
            retrieval_ms,
            retrieval_hit_ms,
            retrieval_edge_ms,
            object_level_ms: lookup_ms + retrieval_ms,
            app_latency_ms,
            app_latency_p50_ms,
            app_latency_p95_ms,
            app_latency_p99_ms,
            per_app_latency_ms,
            hit_ratio: self.report.hit_ratio(),
            high_priority_hit_ratio: self.report.high_priority_hit_ratio(),
            executions: self.report.executions,
            failures: self.report.failures,
            // Time-weighted: CPU/memory are sampled states, not events, so
            // the average must weight each sample by how long it was held.
            ap_cpu_mean: cpu.time_weighted_mean(),
            ap_cpu_max: cpu.max(),
            ape_mem_mb_max: mem.max(),
            attribution,
        }
    }

    /// Merges another run's raw measurements into this one (counters add,
    /// histogram samples and series points append in call order).
    ///
    /// Used to pool `trials` replicas of one sweep point before extracting
    /// a [`Summary`]: means and percentiles are then computed over the
    /// pooled samples. Merge order must be deterministic (trial order) for
    /// the bitwise-determinism contract to hold.
    pub fn merge(&mut self, other: &RunResult) {
        debug_assert_eq!(self.system, other.system, "merging across systems");
        self.metrics.merge(&other.metrics);
        self.report.merge(&other.report);
        match (&mut self.trace, &other.trace) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (mine @ None, Some(theirs)) => *mine = Some(theirs.clone()),
            (_, None) => {}
        }
        self.profile.merge(&other.profile);
    }
}

/// One independent simulation to execute: a full testbed configuration
/// (including its seed) plus how long to run it.
#[derive(Debug, Clone)]
pub struct RunJob {
    /// Testbed configuration; `config.seed` makes the job self-contained.
    pub config: TestbedConfig,
    /// Simulated time to run for.
    pub duration: SimDuration,
}

impl RunJob {
    /// Convenience constructor.
    pub fn new(config: TestbedConfig, duration: SimDuration) -> Self {
        RunJob { config, duration }
    }
}

/// Fans independent `(system × sweep-point × seed)` jobs across a pool of
/// OS threads.
///
/// Workers pull jobs off a shared atomic cursor (dynamic load balancing —
/// sweep points differ wildly in event count) and write each result into
/// the slot indexed by its job position, so the output order is the input
/// order no matter how the OS schedules the workers.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl Default for ParallelRunner {
    fn default() -> Self {
        ParallelRunner::new()
    }
}

impl ParallelRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        ParallelRunner::with_threads(0)
    }

    /// A runner with an explicit pool size; `0` means auto-detect.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        ParallelRunner { threads }
    }

    /// The worker-pool size this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job and returns results in job order.
    ///
    /// Results are bitwise independent of the pool size: each job runs in
    /// its own freshly seeded `World`, and slot `i` of the output always
    /// holds job `i`'s result.
    pub fn run_many(&self, jobs: &[RunJob]) -> Vec<RunResult> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len()).max(1);
        if workers == 1 {
            return jobs
                .iter()
                .map(|job| run_system(&job.config, job.duration))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<RunResult>> = Vec::new();
        slots.resize_with(jobs.len(), || None);

        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else { break };
                        local.push((idx, run_system(&job.config, job.duration)));
                    }
                    local
                }));
            }
            for handle in handles {
                for (idx, result) in handle.join().expect("runner worker panicked") {
                    slots[idx] = Some(result);
                }
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("every job produces a result"))
            .collect()
    }

    /// Runs `trials` replicas of `config` — seeds `config.seed`,
    /// `config.seed + 1`, … — in parallel and merges them (in trial order)
    /// into one pooled [`RunResult`].
    pub fn run_replicated(
        &self,
        config: &TestbedConfig,
        duration: SimDuration,
        trials: usize,
    ) -> RunResult {
        let jobs = replicate_jobs(config, duration, trials);
        let results = self.run_many(&jobs);
        merge_trials(results)
    }

    /// Runs all four systems under identical workloads, `trials` replicas
    /// each, and returns their summaries in the paper's presentation order.
    pub fn compare_systems(
        &self,
        base: &TestbedConfig,
        duration: SimDuration,
        trials: usize,
    ) -> Vec<(System, Summary)> {
        let mut jobs = Vec::new();
        for &system in System::ALL.iter() {
            let config = TestbedConfig {
                system,
                ..base.clone()
            };
            jobs.extend(replicate_jobs(&config, duration, trials));
        }
        let mut results = self.run_many(&jobs);
        System::ALL
            .iter()
            .map(|&system| {
                let rest = results.split_off(trials.max(1));
                let mut merged = merge_trials(std::mem::replace(&mut results, rest));
                (system, merged.summary())
            })
            .collect()
    }
}

/// Expands one configuration into `trials` jobs with consecutive seeds.
fn replicate_jobs(config: &TestbedConfig, duration: SimDuration, trials: usize) -> Vec<RunJob> {
    (0..trials.max(1))
        .map(|trial| {
            let mut config = config.clone();
            config.seed = config.seed.wrapping_add(trial as u64);
            RunJob::new(config, duration)
        })
        .collect()
}

/// Folds trial results (already in trial order) into one pooled result.
fn merge_trials(results: Vec<RunResult>) -> RunResult {
    let mut iter = results.into_iter();
    let mut merged = iter.next().expect("at least one trial");
    for result in iter {
        merged.merge(&result);
    }
    merged
}

/// Executes jobs across `threads` worker threads (0 = auto), returning
/// results in job order. Free-function form of [`ParallelRunner::run_many`].
pub fn run_many(jobs: &[RunJob], threads: usize) -> Vec<RunResult> {
    ParallelRunner::with_threads(threads).run_many(jobs)
}

/// Runs all four systems under identical workloads and returns their
/// summaries in the paper's presentation order.
///
/// Single-trial wrapper over [`ParallelRunner::compare_systems`]; the
/// summaries are bitwise identical to running each system sequentially.
pub fn compare_systems(base: &TestbedConfig, duration: SimDuration) -> Vec<(System, Summary)> {
    ParallelRunner::new().compare_systems(base, duration, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_appdag::{generate_fleet, DummyAppConfig};
    use ape_simnet::SimRng;
    use ape_workload::ScheduleConfig;

    fn small_config(system: System) -> TestbedConfig {
        let mut rng = SimRng::seed_from(3);
        let apps = generate_fleet(5, &DummyAppConfig::default(), &mut rng);
        let mut config = TestbedConfig::new(system, apps);
        config.schedule = ScheduleConfig {
            apps: 5,
            avg_per_minute: 3.0,
            zipf_exponent: 0.8,
            duration: SimDuration::from_mins(5),
        };
        config
    }

    #[test]
    fn ape_cache_run_produces_sane_summary() {
        let mut result = run_system(&small_config(System::ApeCache), SimDuration::from_mins(5));
        let s = result.summary();
        assert!(s.executions > 30, "executions {}", s.executions);
        assert_eq!(s.failures, 0, "failures {:?}", s.failures);
        assert!(s.hit_ratio > 0.5, "hit ratio {}", s.hit_ratio);
        assert!(s.app_latency_ms > 1.0 && s.app_latency_ms < 200.0);
        assert!(s.lookup_ms < 25.0, "lookup {}", s.lookup_ms);
        assert!(s.ap_cpu_max <= 1.0);
        assert!(s.ape_mem_mb_max > 3.0);
    }

    #[test]
    fn edge_cache_is_slower_than_ape_cache() {
        let mut ape = run_system(&small_config(System::ApeCache), SimDuration::from_mins(5));
        let mut edge = run_system(&small_config(System::EdgeCache), SimDuration::from_mins(5));
        let ape_s = ape.summary();
        let edge_s = edge.summary();
        assert!(
            ape_s.app_latency_ms < edge_s.app_latency_ms,
            "APE {} vs Edge {}",
            ape_s.app_latency_ms,
            edge_s.app_latency_ms
        );
        assert_eq!(edge_s.hit_ratio, 0.0, "edge baseline never hits the AP");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut r = run_system(&small_config(System::ApeCache), SimDuration::from_mins(2));
            let s = r.summary();
            (
                s.executions,
                s.hit_ratio.to_bits(),
                s.app_latency_ms.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    /// Flattens every float in a summary to its bit pattern so equality is
    /// exact, not epsilon-based.
    fn summary_bits(s: &Summary) -> Vec<u64> {
        let mut bits = vec![
            s.lookup_ms.to_bits(),
            s.retrieval_ms.to_bits(),
            s.retrieval_hit_ms.to_bits(),
            s.retrieval_edge_ms.to_bits(),
            s.object_level_ms.to_bits(),
            s.app_latency_ms.to_bits(),
            s.app_latency_p50_ms.to_bits(),
            s.app_latency_p95_ms.to_bits(),
            s.app_latency_p99_ms.to_bits(),
            s.hit_ratio.to_bits(),
            s.high_priority_hit_ratio.to_bits(),
            s.executions,
            s.failures,
            s.ap_cpu_mean.to_bits(),
            s.ap_cpu_max.to_bits(),
            s.ape_mem_mb_max.to_bits(),
        ];
        for (name, (mean, p95)) in &s.per_app_latency_ms {
            bits.push(name.len() as u64);
            bits.push(mean.to_bits());
            bits.push(p95.to_bits());
        }
        if let Some(a) = &s.attribution {
            bits.push(a.traces);
            bits.push(a.completed);
            for (stage, stat) in &a.stages {
                bits.push(stage.len() as u64);
                bits.push(stat.count);
                bits.push(stat.total_ms.to_bits());
                bits.push(stat.mean_ms.to_bits());
                bits.push(stat.p50_ms.to_bits());
                bits.push(stat.p95_ms.to_bits());
                bits.push(stat.p99_ms.to_bits());
            }
        }
        bits
    }

    #[test]
    fn parallel_runner_is_bitwise_identical_to_sequential() {
        // Tracing stays on here so the pin also covers span recording and
        // the attribution numbers derived from it.
        let mut base = small_config(System::ApeCache);
        base.trace = ape_simnet::TraceConfig::enabled();
        let duration = SimDuration::from_mins(2);
        let trials = 3;

        let compare = |threads: usize| {
            ParallelRunner::with_threads(threads).compare_systems(&base, duration, trials)
        };
        let sequential = compare(1);
        let parallel = compare(4);

        assert_eq!(sequential.len(), parallel.len());
        for ((sys_a, sum_a), (sys_b, sum_b)) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(sys_a, sys_b);
            assert_eq!(sum_a.system, sum_b.system);
            assert_eq!(
                summary_bits(sum_a),
                summary_bits(sum_b),
                "summaries for {sys_a:?} differ between 1 and 4 threads"
            );
        }
    }

    #[test]
    fn traced_runs_export_identical_jsonl_across_thread_counts() {
        let mut base = small_config(System::ApeCache);
        base.trace = ape_simnet::TraceConfig::enabled();
        let duration = SimDuration::from_mins(2);
        let export = |threads: usize| {
            let result = ParallelRunner::with_threads(threads).run_replicated(&base, duration, 2);
            let log = result.trace.as_ref().expect("tracing was enabled");
            assert_eq!(log.runs(), 2);
            log.to_jsonl(base.system.label())
        };
        let sequential = export(1);
        let parallel = export(4);
        assert!(!sequential.is_empty(), "traced run recorded no events");
        assert_eq!(sequential, parallel, "JSONL differs across thread counts");
    }

    #[test]
    fn untraced_runs_carry_no_trace_log() {
        let result = run_system(&small_config(System::ApeCache), SimDuration::from_mins(1));
        assert!(result.trace.is_none());
    }

    #[test]
    fn traced_run_attributes_latency_to_stages() {
        let mut config = small_config(System::ApeCache);
        config.trace = ape_simnet::TraceConfig::enabled();
        let mut result = run_system(&config, SimDuration::from_mins(5));
        let summary = result.summary();
        let a = summary.attribution.as_ref().expect("tracing was enabled");
        assert!(a.traces > 30, "traces {}", a.traces);
        assert!(a.completed > 30, "completed {}", a.completed);
        let fetch = a.stage(ape_proto::SpanKind::Fetch);
        let lookup = a.stage(ape_proto::SpanKind::Lookup);
        let hit = a.stage(ape_proto::SpanKind::RetrievalHit);
        assert_eq!(fetch.count, a.completed);
        assert!(lookup.count > 0 && hit.count > 0);
        // Stages nest inside the root fetch span.
        assert!(lookup.mean_ms < fetch.mean_ms);
        assert!(hit.p95_ms <= fetch.p95_ms);
    }

    #[test]
    fn run_many_preserves_job_order() {
        let duration = SimDuration::from_mins(1);
        let jobs: Vec<RunJob> = [System::ApeCache, System::EdgeCache, System::ApeCacheLru]
            .iter()
            .map(|&system| RunJob::new(small_config(system), duration))
            .collect();
        let results = run_many(&jobs, 3);
        let systems: Vec<System> = results.iter().map(|r| r.system).collect();
        assert_eq!(
            systems,
            vec![System::ApeCache, System::EdgeCache, System::ApeCacheLru]
        );
    }

    #[test]
    fn replication_pools_trials() {
        let config = small_config(System::ApeCache);
        let duration = SimDuration::from_mins(2);
        let runner = ParallelRunner::with_threads(2);
        let one = runner.run_replicated(&config, duration, 1);
        let three = runner.run_replicated(&config, duration, 3);
        assert!(
            three.report.executions > one.report.executions,
            "pooled trials should accumulate executions ({} vs {})",
            three.report.executions,
            one.report.executions
        );
    }
}
