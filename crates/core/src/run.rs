//! Executing a testbed and summarizing its measurements.

use std::collections::BTreeMap;

use ape_nodes::ClientNode;
use ape_simnet::{Metrics, SimDuration};

use crate::system::System;
use crate::testbed::{build, Testbed, TestbedConfig};

/// Raw result of one run: the full metric registry plus merged client
/// counters.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which system ran.
    pub system: System,
    /// The world's metric registry at the end of the run.
    pub metrics: Metrics,
    /// Merged per-client outcome counters.
    pub report: ape_nodes::ClientReport,
}

/// Headline numbers extracted from a run, named after the paper's plots.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Summary {
    /// System label.
    pub system: String,
    /// Mean cache-lookup latency over actual lookup operations (Fig. 11a).
    pub lookup_ms: f64,
    /// Mean retrieval latency over all fetches (Fig. 11c aggregates over
    /// hit locations the same way).
    pub retrieval_ms: f64,
    /// Mean retrieval latency for AP cache hits only.
    pub retrieval_hit_ms: f64,
    /// Mean retrieval latency for edge fetches only.
    pub retrieval_edge_ms: f64,
    /// Object-level latency: lookup + retrieval stage means (§V-B summary).
    pub object_level_ms: f64,
    /// Mean app-level latency (Fig. 12/13).
    pub app_latency_ms: f64,
    /// 95th-percentile app-level latency (Fig. 12 tail).
    pub app_latency_p95_ms: f64,
    /// Per-app mean and p95 latency, keyed by app name.
    pub per_app_latency_ms: BTreeMap<String, (f64, f64)>,
    /// AP cache hit ratio across all cacheable fetches.
    pub hit_ratio: f64,
    /// AP cache hit ratio for high-priority fetches.
    pub high_priority_hit_ratio: f64,
    /// Completed app executions.
    pub executions: u64,
    /// Failed fetches.
    pub failures: u64,
    /// Mean AP CPU utilization (0..1).
    pub ap_cpu_mean: f64,
    /// Peak AP CPU utilization (0..1).
    pub ap_cpu_max: f64,
    /// Peak APE-CACHE memory on the AP, MB.
    pub ape_mem_mb_max: f64,
}

/// Builds the testbed for `config`, runs it for `duration`, and collects
/// results.
pub fn run_system(config: &TestbedConfig, duration: SimDuration) -> RunResult {
    let mut bed = build(config);
    bed.world.run_for(duration);
    collect(config.system, &mut bed)
}

/// Collects results from an already-run testbed.
pub fn collect(system: System, bed: &mut Testbed) -> RunResult {
    let mut report = ape_nodes::ClientReport::default();
    for &client in &bed.clients {
        report.merge(&bed.world.node::<ClientNode>(client).report());
    }
    RunResult {
        system,
        metrics: bed.world.metrics().clone(),
        report,
    }
}

impl RunResult {
    /// Extracts the headline summary (sorting histograms as needed).
    pub fn summary(&mut self) -> Summary {
        let m = &mut self.metrics;
        let lookup_ms = m.mean("client.lookup_query_ms");
        let retrieval_ms = m.mean("client.retrieval_ms");
        let retrieval_hit_ms = m.mean("client.retrieval_hit_ms");
        let retrieval_edge_ms = m.mean("client.retrieval_edge_ms");
        let app_latency_ms = m.mean("client.app_latency_ms");
        let app_latency_p95_ms = m.percentile("client.app_latency_ms", 95.0);

        let mut per_app_latency_ms = BTreeMap::new();
        let app_names: Vec<String> = m
            .histogram_names()
            .filter_map(|n| n.strip_prefix("client.app_latency_ms.").map(str::to_owned))
            .collect();
        for name in app_names {
            let key = format!("client.app_latency_ms.{name}");
            let mean = m.mean(&key);
            let p95 = m.percentile(&key, 95.0);
            per_app_latency_ms.insert(name, (mean, p95));
        }

        let cpu = m.time_series("ap.cpu").cloned().unwrap_or_default();
        let mem = m.time_series("ap.ape_mem_mb").cloned().unwrap_or_default();

        Summary {
            system: self.system.label().to_owned(),
            lookup_ms,
            retrieval_ms,
            retrieval_hit_ms,
            retrieval_edge_ms,
            object_level_ms: lookup_ms + retrieval_ms,
            app_latency_ms,
            app_latency_p95_ms,
            per_app_latency_ms,
            hit_ratio: self.report.hit_ratio(),
            high_priority_hit_ratio: self.report.high_priority_hit_ratio(),
            executions: self.report.executions,
            failures: self.report.failures,
            ap_cpu_mean: cpu.mean(),
            ap_cpu_max: cpu.max(),
            ape_mem_mb_max: mem.max(),
        }
    }
}

/// Runs all four systems under identical workloads and returns their
/// summaries in the paper's presentation order.
pub fn compare_systems(
    base: &TestbedConfig,
    duration: SimDuration,
) -> Vec<(System, Summary)> {
    System::ALL
        .iter()
        .map(|&system| {
            let config = TestbedConfig {
                system,
                ..base.clone()
            };
            let mut result = run_system(&config, duration);
            (system, result.summary())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_appdag::{generate_fleet, DummyAppConfig};
    use ape_simnet::SimRng;
    use ape_workload::ScheduleConfig;

    fn small_config(system: System) -> TestbedConfig {
        let mut rng = SimRng::seed_from(3);
        let apps = generate_fleet(5, &DummyAppConfig::default(), &mut rng);
        let mut config = TestbedConfig::new(system, apps);
        config.schedule = ScheduleConfig {
            apps: 5,
            avg_per_minute: 3.0,
            zipf_exponent: 0.8,
            duration: SimDuration::from_mins(5),
        };
        config
    }

    #[test]
    fn ape_cache_run_produces_sane_summary() {
        let mut result = run_system(&small_config(System::ApeCache), SimDuration::from_mins(5));
        let s = result.summary();
        assert!(s.executions > 30, "executions {}", s.executions);
        assert_eq!(s.failures, 0, "failures {:?}", s.failures);
        assert!(s.hit_ratio > 0.5, "hit ratio {}", s.hit_ratio);
        assert!(s.app_latency_ms > 1.0 && s.app_latency_ms < 200.0);
        assert!(s.lookup_ms < 25.0, "lookup {}", s.lookup_ms);
        assert!(s.ap_cpu_max <= 1.0);
        assert!(s.ape_mem_mb_max > 3.0);
    }

    #[test]
    fn edge_cache_is_slower_than_ape_cache() {
        let mut ape = run_system(&small_config(System::ApeCache), SimDuration::from_mins(5));
        let mut edge = run_system(&small_config(System::EdgeCache), SimDuration::from_mins(5));
        let ape_s = ape.summary();
        let edge_s = edge.summary();
        assert!(
            ape_s.app_latency_ms < edge_s.app_latency_ms,
            "APE {} vs Edge {}",
            ape_s.app_latency_ms,
            edge_s.app_latency_ms
        );
        assert_eq!(edge_s.hit_ratio, 0.0, "edge baseline never hits the AP");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut r = run_system(&small_config(System::ApeCache), SimDuration::from_mins(2));
            let s = r.summary();
            (s.executions, s.hit_ratio.to_bits(), s.app_latency_ms.to_bits())
        };
        assert_eq!(run(), run());
    }
}
