//! Builds the paper's evaluation testbed (Fig. 9) as a simulated world.
//!
//! Topology: two "phones" and one "client simulator" behind a WiFi AP; an
//! edge cache server 7 hops away; the local DNS a few hops upstream with
//! the authoritative/CDN DNS chain behind it; an origin further out; and —
//! for the Wi-Cache baseline — an EC2-hosted controller 12 hops away.
//! Link characteristics are calibrated to the paper's measured anatomy
//! (WiFi RTT ≈ 3 ms, AP↔edge ≈ 14 ms, controller ≈ 24 ms, Table I-level
//! DNS latencies).
//!
//! The same assembly can target either a plain [`World`] ([`build`]) or a
//! sharded one ([`build_sharded`]): node ids, link specs and construction
//! order are identical in both, with the serving/DNS spine living on shard
//! 0 and the client population spread round-robin over shards `1..N`.

use ape_appdag::AppSpec;
use ape_dnswire::DomainName;
use ape_nodes::{
    ApConfig, ApNode, ApPolicy, AuthDnsNode, Catalog, CatalogEntry, ClientConfig, ClientNode,
    EdgeNode, LdnsNode, LookupMode, OriginNode, Strategy, WiCacheControllerNode, WiCacheLink,
    ZoneAnswer,
};
use ape_proto::{IpMap, Msg};
use ape_simnet::{
    FaultPlan, LinkSpec, MetricsConfig, Node, NodeId, ShardedWorld, SimDuration, SimRng,
    TraceConfig, World,
};
use ape_workload::{generate_schedule, Execution, ScheduleConfig};

use crate::system::System;

/// Everything needed to instantiate one evaluation run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Which caching system to deploy.
    pub system: System,
    /// The app suite (paper: 2 real + 28 synthetic apps).
    pub apps: Vec<AppSpec>,
    /// Execution schedule parameters.
    pub schedule: ScheduleConfig,
    /// AP parameters (policy is overridden to match `system`).
    pub ap: ApConfig,
    /// Number of client devices sharing the schedule (paper: 2 phones +
    /// 1 emulator host).
    pub clients: usize,
    /// APE-CACHE lookup mode (Fig. 11b ablation).
    pub lookup_mode: LookupMode,
    /// Whether the edge starts with every object cached (the paper's
    /// ample-capacity steady-state assumption).
    pub prewarm_edge: bool,
    /// Extension (paper §VI): clients send request-dependency information
    /// so the AP prefetches upcoming objects.
    pub prefetch_hints: bool,
    /// Request-tracing knobs (disabled by default; enabling records causal
    /// spans for every sampled client fetch).
    pub trace: TraceConfig,
    /// Metric-registry knobs (histogram representation, sketch oracle,
    /// series capacity). The default — exact-compat mode, unbounded series
    /// — is bitwise identical to the pre-sketch registry.
    pub metrics: MetricsConfig,
    /// Enables the sim-loop self-profiler (see
    /// [`World::enable_profiler`](ape_simnet::World::enable_profiler)).
    /// Off by default; on or off, simulation outputs are unchanged — the
    /// profiler only attributes host wall-clock.
    pub profiler: bool,
    /// Steady-state packet-loss probability of the WiFi radio, applied to
    /// every client link (AP, edge, LDNS, and controller paths all cross
    /// the radio as their first hop). `0.0` — the default — keeps the
    /// links lossless and the run's RNG draws, and therefore its outputs,
    /// bitwise identical to before this knob existed.
    pub wifi_loss: f64,
    /// Scheduled link disturbances (partitions, loss bursts, delay
    /// spikes). The empty default draws no RNG and records no metrics, so
    /// it is bitwise invisible.
    pub faults: FaultPlan,
    /// Root seed for all randomness in the run.
    pub seed: u64,
    /// Schedule-perturbation key for the race detector: when set, the
    /// world's same-timestamp tie-breaks follow a seeded permutation
    /// instead of FIFO order (see
    /// [`World::set_tie_perturbation`](ape_simnet::World::set_tie_perturbation)).
    /// `None` — the default — is the production FIFO order.
    pub tie_perturbation: Option<u64>,
}

impl TestbedConfig {
    /// Paper-default testbed for `system` over `apps`.
    pub fn new(system: System, apps: Vec<AppSpec>) -> Self {
        TestbedConfig {
            system,
            apps,
            schedule: ScheduleConfig::default(),
            ap: ApConfig::default(),
            clients: 3,
            lookup_mode: LookupMode::Piggybacked,
            prewarm_edge: true,
            prefetch_hints: false,
            trace: TraceConfig::default(),
            metrics: MetricsConfig::default(),
            profiler: false,
            wifi_loss: 0.0,
            faults: FaultPlan::new(),
            seed: 42,
            tie_perturbation: None,
        }
    }

    /// Sets PACM's eviction watermark: evictions free `headroom` bytes
    /// beyond what the incoming object needs, so bursts of admissions
    /// amortize one solve across several inserts. `0` (the default) keeps
    /// the paper-exact evict-to-capacity behavior; any other value changes
    /// victim selection and therefore the bitwise-reproducible outputs.
    pub fn with_evict_headroom(mut self, headroom: u64) -> Self {
        self.ap.pacm.evict_headroom = headroom;
        self
    }
}

/// A built testbed: the world plus the node ids a harness needs.
pub struct Testbed {
    /// The simulated deployment.
    pub world: World<Msg>,
    /// Client device nodes.
    pub clients: Vec<NodeId>,
    /// The WiFi AP.
    pub ap: NodeId,
    /// The edge cache server.
    pub edge: NodeId,
    /// The origin server.
    pub origin: NodeId,
    /// The local DNS resolver.
    pub ldns: NodeId,
    /// The Wi-Cache controller, when deployed.
    pub controller: Option<NodeId>,
    /// The schedule that was installed across clients.
    pub schedule: Vec<Execution>,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("clients", &self.clients.len())
            .field("schedule_len", &self.schedule.len())
            .finish()
    }
}

/// A testbed assembled into a [`ShardedWorld`]: same node set, ids and
/// links as [`Testbed`], with the spine on shard 0 and clients spread over
/// the client shards.
pub struct ShardedTestbed {
    /// The simulated deployment, partitioned for epoch execution.
    pub world: ShardedWorld<Msg>,
    /// Client device nodes.
    pub clients: Vec<NodeId>,
    /// The WiFi AP.
    pub ap: NodeId,
    /// The edge cache server.
    pub edge: NodeId,
    /// The origin server.
    pub origin: NodeId,
    /// The local DNS resolver.
    pub ldns: NodeId,
    /// The Wi-Cache controller, when deployed.
    pub controller: Option<NodeId>,
    /// The schedule that was installed across clients.
    pub schedule: Vec<Execution>,
}

impl std::fmt::Debug for ShardedTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTestbed")
            .field("shards", &self.world.shard_count())
            .field("clients", &self.clients.len())
            .field("schedule_len", &self.schedule.len())
            .finish()
    }
}

/// Suffix of the per-domain CDN aliases (mirroring
/// `www.apple.com → www.apple.com.edgekey.net`).
pub(crate) const CDN_SUFFIX: &str = "edgekey.example";

/// TTL of the CDN's A record (Akamai-style short TTL, seconds).
pub(crate) const CDN_A_TTL: u32 = 60;

/// TTL of the site CNAME records (seconds).
pub(crate) const CNAME_TTL: u32 = 300;

/// The world operations assembly needs, so [`build`] and [`build_sharded`]
/// share one construction sequence (identical node/link order is what makes
/// sharded and plain runs comparable). The multi-AP topology assembler
/// (`crate::topology`) targets the same trait.
pub(crate) trait AssembleWorld {
    /// Adds a node, placing it on `shard` when the backend is sharded.
    fn add(&mut self, shard: u32, name: String, node: impl Node<Msg> + 'static) -> NodeId;
    /// Registers a symmetric link.
    fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec);
    /// Nodes added so far.
    fn count(&self) -> usize;
    /// Typed mutable access to an added node.
    fn get_mut<T: 'static>(&mut self, id: NodeId) -> &mut T;
    /// Applies the config's world-level knobs (perturbation, tracing,
    /// metrics, profiler, faults).
    fn configure(&mut self, config: &TestbedConfig);
}

impl AssembleWorld for World<Msg> {
    fn add(&mut self, _shard: u32, name: String, node: impl Node<Msg> + 'static) -> NodeId {
        self.add_node(name, node)
    }
    fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.connect(a, b, spec);
    }
    fn count(&self) -> usize {
        self.node_count()
    }
    fn get_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.node_mut(id)
    }
    fn configure(&mut self, config: &TestbedConfig) {
        if let Some(key) = config.tie_perturbation {
            self.set_tie_perturbation(key);
        }
        self.set_trace_config(config.trace);
        self.set_metrics_config(config.metrics.clone());
        if config.profiler {
            self.enable_profiler();
        }
        if !config.faults.is_empty() {
            self.set_fault_plan(config.faults.clone());
        }
    }
}

impl AssembleWorld for ShardedWorld<Msg> {
    fn add(&mut self, shard: u32, name: String, node: impl Node<Msg> + 'static) -> NodeId {
        self.add_node(shard, name, node)
    }
    fn link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.connect(a, b, spec);
    }
    fn count(&self) -> usize {
        self.node_count()
    }
    fn get_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.node_mut(id)
    }
    fn configure(&mut self, config: &TestbedConfig) {
        if let Some(key) = config.tie_perturbation {
            self.set_tie_perturbation(key);
        }
        self.set_trace_config(config.trace);
        self.set_metrics_config(config.metrics.clone());
        if config.profiler {
            self.enable_profiler();
        }
        if !config.faults.is_empty() {
            self.set_fault_plan(config.faults.clone());
        }
    }
}

/// Node ids produced by [`assemble`].
struct AssembledIds {
    clients: Vec<NodeId>,
    ap: NodeId,
    edge: NodeId,
    origin: NodeId,
    ldns: NodeId,
    controller: Option<NodeId>,
    schedule: Vec<Execution>,
}

/// Which shard client `i` lives on: round-robin over the client shards
/// (`1..shards`), or the spine shard when the world isn't split.
pub(crate) fn client_shard(i: usize, shards: u32) -> u32 {
    if shards <= 1 {
        0
    } else {
        1 + (i as u32) % (shards - 1)
    }
}

/// Node ids of the serving/DNS spine shared by the single-AP testbed and
/// the multi-AP topology (`crate::topology`).
pub(crate) struct SpineIds {
    /// The origin server.
    pub origin: NodeId,
    /// The edge cache server.
    pub edge: NodeId,
    /// The authoritative DNS for the app domains.
    pub adns: NodeId,
    /// The CDN's authoritative DNS.
    pub cdn_dns: NodeId,
    /// The local DNS resolver.
    pub ldns: NodeId,
}

/// Assembles the serving spine — origin, edge, and the DNS hierarchy — in
/// the canonical order (origin, edge, adns, cdn-dns, ldns), assigning the
/// edge and origin addresses into `ip_map`. Both [`assemble`] and the
/// multi-AP topology assembler start from this sequence, so their spine
/// node ids line up.
pub(crate) fn assemble_spine<W: AssembleWorld>(
    world: &mut W,
    config: &TestbedConfig,
    ip_map: &mut IpMap,
) -> SpineIds {
    // --- Catalog shared by origin and edge -----------------------------
    let mut catalog = Catalog::new();
    for app in &config.apps {
        for (_, obj) in app.dag().iter() {
            catalog.add(
                obj.url.base_id(),
                CatalogEntry {
                    size: obj.size,
                    extra_latency: obj.remote_latency,
                },
            );
        }
    }

    // --- Servers --------------------------------------------------------
    let origin = world.add(
        0,
        "origin".into(),
        OriginNode::new(catalog.clone(), SimDuration::from_micros(500)),
    );
    let mut edge_node = EdgeNode::new(origin, catalog, SimDuration::from_micros(400));
    if config.prewarm_edge {
        edge_node.prewarm();
    }
    let edge = world.add(0, "edge".into(), edge_node);

    let edge_ip = ip_map.assign(edge);
    let _origin_ip = ip_map.assign(origin);

    // --- DNS hierarchy ----------------------------------------------------
    // Each app domain gets its own CDN alias (`<host>.edgekey.example`),
    // as real CDNs do, so short A-record TTLs expire per domain.
    let mut adns = AuthDnsNode::new(SimDuration::from_micros(300));
    for app in &config.apps {
        for (_, obj) in app.dag().iter() {
            let alias: DomainName = format!("{}.{}", obj.url.host(), CDN_SUFFIX)
                .parse()
                .expect("alias from valid host");
            adns.wildcard(
                obj.url.host().clone(),
                ZoneAnswer::Cname {
                    target: alias,
                    ttl: CNAME_TTL,
                },
            );
        }
    }
    let adns_id = world.add(0, "adns".into(), adns);

    let mut cdn_dns = AuthDnsNode::new(SimDuration::from_micros(300));
    cdn_dns.wildcard(
        CDN_SUFFIX.parse().expect("static name"),
        ZoneAnswer::A {
            ip: edge_ip,
            ttl: CDN_A_TTL,
        },
    );
    let cdn_dns_id = world.add(0, "cdn-dns".into(), cdn_dns);

    let mut delegations: Vec<(DomainName, NodeId)> =
        vec![("edgekey.example".parse().expect("static name"), cdn_dns_id)];
    for app in &config.apps {
        for (_, obj) in app.dag().iter() {
            let host = obj.url.host().clone();
            if !delegations.iter().any(|(d, _)| *d == host) {
                delegations.push((host, adns_id));
            }
        }
    }
    let ldns = world.add(
        0,
        "ldns".into(),
        LdnsNode::new(SimDuration::from_micros(200), delegations),
    );

    SpineIds {
        origin,
        edge,
        adns: adns_id,
        cdn_dns: cdn_dns_id,
        ldns,
    }
}

/// Assembles the Fig. 9 testbed into any world backend. The spine (origin,
/// edge, DNS chain, AP, controller) goes on shard 0; clients round-robin
/// over the remaining shards. With a plain [`World`] the shard argument is
/// ignored, so [`build`] and [`build_sharded`] produce the same node ids in
/// the same order.
fn assemble<W: AssembleWorld>(world: &mut W, config: &TestbedConfig, shards: u32) -> AssembledIds {
    assert!(!config.apps.is_empty(), "testbed needs at least one app");
    assert!(config.clients > 0, "testbed needs at least one client");
    world.configure(config);

    let mut ip_map = IpMap::new();
    let spine = assemble_spine(world, config, &mut ip_map);
    let SpineIds {
        origin,
        edge,
        adns: adns_id,
        cdn_dns: cdn_dns_id,
        ldns,
    } = spine;

    // --- AP ----------------------------------------------------------------
    let mut ap_config = config.ap.clone();
    ap_config.policy = match config.system {
        // APE-CACHE honours the configured policy so PACM ablations
        // (e.g. fairness off) can run under the normal workflow.
        System::ApeCache => config.ap.policy,
        System::ApeCacheLru | System::WiCache => ApPolicy::Lru,
        // Unused for Edge Cache, but keep the AP present for fair
        // resource comparisons.
        System::EdgeCache => ApPolicy::Lru,
    };
    let ap_node = ApNode::new(ap_config, ldns, ip_map.clone());

    // --- Wi-Cache controller ------------------------------------------------
    let (ap, controller) = if config.system == System::WiCache {
        let controller = world.add(
            0,
            "wicache-controller".into(),
            WiCacheControllerNode::new(SimDuration::from_micros(300)),
        );
        // The AP id is allocated after the controller; assign its address
        // first so the node can be constructed with the link.
        let ap_ip_probe = {
            let mut m = ip_map.clone();
            m.assign(NodeId::from_raw(world.count() as u32))
        };
        let ap = world.add(
            0,
            "ap".into(),
            ap_node.with_wicache(WiCacheLink {
                controller,
                own_address: ap_ip_probe,
            }),
        );
        let ap_ip = ip_map.assign(ap);
        world
            .get_mut::<WiCacheControllerNode>(controller)
            .register_ap(ap, ap_ip);
        (ap, Some(controller))
    } else {
        (world.add(0, "ap".into(), ap_node), None)
    };

    // --- Schedule -------------------------------------------------------------
    let mut rng = SimRng::seed_from(config.seed ^ 0x5EED_5EED);
    let schedule = generate_schedule(&config.schedule, &mut rng);

    // --- Clients -----------------------------------------------------------------
    let strategy = match config.system {
        System::ApeCache | System::ApeCacheLru => Strategy::ApeCache,
        System::WiCache => Strategy::WiCache,
        System::EdgeCache => Strategy::EdgeCache,
    };
    let mut clients = Vec::with_capacity(config.clients);
    for i in 0..config.clients {
        let share: Vec<Execution> = schedule
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % config.clients == i)
            .map(|(_, e)| *e)
            .collect();
        let dns_server = match strategy {
            // APE-CACHE clients resolve through the AP (it is the LAN's
            // DNS); the Edge Cache baseline queries the LDNS directly.
            Strategy::ApeCache | Strategy::WiCache => ap,
            Strategy::EdgeCache => ldns,
        };
        let mut client_config = ClientConfig::new(strategy, dns_server, ap, ip_map.clone());
        client_config.controller = controller;
        client_config.lookup_mode = config.lookup_mode;
        client_config.prefetch_hints = config.prefetch_hints;
        let node = ClientNode::new(client_config, config.apps.clone(), share);
        clients.push(world.add(client_shard(i, shards), format!("client{i}"), node));
    }

    // --- Links (Fig. 9 distances) ------------------------------------------------
    // All client links cross the WiFi radio as their first hop, so the
    // configured radio loss applies to each of them.
    let lossy = |link: LinkSpec| {
        if config.wifi_loss > 0.0 {
            link.loss_probability(config.wifi_loss)
        } else {
            link
        }
    };
    let wifi = lossy(
        LinkSpec::from_rtt(1, SimDuration::from_millis(3))
            .bandwidth_bytes_per_sec(40_000_000)
            .jitter_mean(SimDuration::from_micros(200)),
    );
    let ap_ldns = LinkSpec::from_rtt(5, SimDuration::from_millis(13))
        .jitter_mean(SimDuration::from_micros(600));
    let ldns_adns = LinkSpec::from_rtt(12, SimDuration::from_millis(30))
        .jitter_mean(SimDuration::from_millis(2));
    let ldns_cdn = LinkSpec::from_rtt(9, SimDuration::from_millis(20))
        .jitter_mean(SimDuration::from_millis(1));
    let ap_edge = LinkSpec::from_rtt(7, SimDuration::from_millis(14))
        .jitter_mean(SimDuration::from_micros(800));
    let client_edge = lossy(
        LinkSpec::from_rtt(7, SimDuration::from_millis(15))
            .bandwidth_bytes_per_sec(40_000_000)
            .jitter_mean(SimDuration::from_micros(800)),
    );
    let client_ldns = lossy(
        LinkSpec::from_rtt(6, SimDuration::from_millis(16))
            .jitter_mean(SimDuration::from_micros(700)),
    );
    let controller_link = LinkSpec::from_rtt(12, SimDuration::from_millis(24))
        .jitter_mean(SimDuration::from_millis(1));
    let client_controller = lossy(controller_link);
    let edge_origin = LinkSpec::from_rtt(8, SimDuration::from_millis(24))
        .jitter_mean(SimDuration::from_millis(1));

    world.link(ap, ldns, ap_ldns);
    world.link(ldns, adns_id, ldns_adns);
    world.link(ldns, cdn_dns_id, ldns_cdn);
    world.link(ap, edge, ap_edge);
    world.link(edge, origin, edge_origin);
    for &client in &clients {
        world.link(client, ap, wifi);
        world.link(client, edge, client_edge);
        world.link(client, ldns, client_ldns);
        if let Some(controller) = controller {
            world.link(client, controller, client_controller);
        }
    }
    if let Some(controller) = controller {
        world.link(ap, controller, controller_link);
    }

    AssembledIds {
        clients,
        ap,
        edge,
        origin,
        ldns,
        controller,
        schedule,
    }
}

/// Builds the world for `config`.
///
/// # Panics
///
/// Panics if the config has no apps or zero clients.
pub fn build(config: &TestbedConfig) -> Testbed {
    let mut world = World::new(config.seed);
    let ids = assemble(&mut world, config, 1);
    Testbed {
        world,
        clients: ids.clients,
        ap: ids.ap,
        edge: ids.edge,
        origin: ids.origin,
        ldns: ids.ldns,
        controller: ids.controller,
        schedule: ids.schedule,
    }
}

/// Builds the same testbed into a [`ShardedWorld`] with `shards` shards.
///
/// Node construction order — and therefore every [`NodeId`] — matches
/// [`build`] exactly; only the shard placement differs. The sharded world's
/// own determinism contract applies: results are bitwise identical at any
/// shard count (enforced by `tests/shard_determinism.rs`), though they
/// differ from plain-[`World`] runs because the sharded engine derives
/// per-node RNG streams instead of one global stream.
///
/// # Panics
///
/// Panics if the config has no apps or zero clients, or if `shards` is 0.
pub fn build_sharded(config: &TestbedConfig, shards: u32) -> ShardedTestbed {
    assert!(shards > 0, "need at least one shard");
    let mut world = ShardedWorld::new(config.seed, shards);
    let ids = assemble(&mut world, config, shards);
    ShardedTestbed {
        world,
        clients: ids.clients,
        ap: ids.ap,
        edge: ids.edge,
        origin: ids.origin,
        ldns: ids.ldns,
        controller: ids.controller,
        schedule: ids.schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_appdag::{generate_fleet, DummyAppConfig};

    fn apps(n: usize) -> Vec<AppSpec> {
        let mut rng = SimRng::seed_from(1);
        generate_fleet(n, &DummyAppConfig::default(), &mut rng)
    }

    #[test]
    fn builds_all_four_systems() {
        for system in System::ALL {
            let config = TestbedConfig::new(system, apps(3));
            let bed = build(&config);
            assert_eq!(bed.clients.len(), 3);
            assert_eq!(bed.controller.is_some(), system == System::WiCache);
            assert!(!bed.schedule.is_empty());
        }
    }

    #[test]
    fn schedule_is_identical_across_systems() {
        let a = build(&TestbedConfig::new(System::ApeCache, apps(3)));
        let b = build(&TestbedConfig::new(System::EdgeCache, apps(3)));
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_app_suite_rejected() {
        let _ = build(&TestbedConfig::new(System::ApeCache, Vec::new()));
    }

    #[test]
    fn evict_headroom_defaults_off_and_threads_through() {
        let config = TestbedConfig::new(System::ApeCache, apps(2));
        assert_eq!(
            config.ap.pacm.evict_headroom, 0,
            "default must stay seed-exact"
        );
        let config = config.with_evict_headroom(256_000);
        assert_eq!(config.ap.pacm.evict_headroom, 256_000);
        // The watermarked testbed still builds and runs.
        let bed = build(&config);
        assert_eq!(bed.clients.len(), 3);
    }

    #[test]
    fn sharded_build_mirrors_plain_ids_and_places_spine_on_shard_zero() {
        for system in [System::ApeCache, System::WiCache] {
            let config = TestbedConfig::new(system, apps(3));
            let plain = build(&config);
            let sharded = build_sharded(&config, 4);
            assert_eq!(plain.clients, sharded.clients);
            assert_eq!(plain.ap, sharded.ap);
            assert_eq!(plain.edge, sharded.edge);
            assert_eq!(plain.ldns, sharded.ldns);
            assert_eq!(plain.controller, sharded.controller);
            assert_eq!(plain.schedule, sharded.schedule);
            for &spine in [sharded.ap, sharded.edge, sharded.origin, sharded.ldns].iter() {
                assert_eq!(sharded.world.shard_of(spine), 0);
            }
            // Clients spread over the client shards, none on the spine.
            for &c in &sharded.clients {
                assert_ne!(sharded.world.shard_of(c), 0);
            }
        }
    }

    #[test]
    fn single_shard_build_places_everything_on_shard_zero() {
        let config = TestbedConfig::new(System::ApeCache, apps(2));
        let bed = build_sharded(&config, 1);
        for i in 0..bed.world.node_count() {
            assert_eq!(bed.world.shard_of(NodeId::from_raw(i as u32)), 0);
        }
    }
}
