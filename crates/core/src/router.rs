//! The §II-C feasibility study (Fig. 2): CPU/memory headroom of an
//! off-the-shelf router under replayed WiFi traffic.
//!
//! The paper tcpreplays two captures against a GL-MT1300 (MT7621A, 2 cores
//! @ 880 MHz, 256 MB RAM) and records utilization. We replay the synthetic
//! Table II-equivalent traces against a calibrated router resource model:
//! per-packet forwarding CPU, a conntrack table with idle expiry, and an
//! OS page/buffer cache that grows with carried bytes and saturates.

use ape_simnet::{CpuMeter, SimDuration, SimRng, SimTime};
use ape_workload::{generate_trace, TraceSpec};

/// Calibrated GL-MT1300 resource model.
#[derive(Debug, Clone, Copy)]
pub struct RouterModel {
    /// CPU cores.
    pub cores: u32,
    /// Fixed CPU time per forwarded packet.
    pub per_packet_cpu: SimDuration,
    /// Additional CPU time per payload byte.
    pub per_byte_cpu_ns: f64,
    /// Baseline firmware/OS memory, bytes.
    pub mem_baseline: u64,
    /// Conntrack entry size, bytes.
    pub per_flow_bytes: u64,
    /// Conntrack idle timeout.
    pub flow_timeout: SimDuration,
    /// Fraction of carried bytes retained in OS caches...
    pub cache_retention: f64,
    /// ...up to this cap, bytes.
    pub cache_cap: u64,
}

impl Default for RouterModel {
    fn default() -> Self {
        RouterModel {
            cores: 2,
            per_packet_cpu: SimDuration::from_micros(200),
            per_byte_cpu_ns: 25.0,
            mem_baseline: 62_000_000,
            per_flow_bytes: 1_024,
            flow_timeout: SimDuration::from_secs(30),
            cache_retention: 0.15,
            cache_cap: 60_000_000,
        }
    }
}

/// One per-second sample of the replay.
#[derive(Debug, Clone, Copy)]
pub struct RouterSample {
    /// Seconds since replay start.
    pub at_secs: f64,
    /// CPU utilization in `[0, 1]`.
    pub cpu: f64,
    /// Total memory in MB.
    pub mem_mb: f64,
    /// Live conntrack entries.
    pub active_flows: usize,
}

/// Replays `spec` against the router model, sampling once per second.
pub fn replay_trace(spec: &TraceSpec, model: &RouterModel, seed: u64) -> Vec<RouterSample> {
    let mut rng = SimRng::seed_from(seed);
    let packets = generate_trace(spec, &mut rng);
    let mut cpu = CpuMeter::new(model.cores);
    // flow id → last-seen time.
    let mut flows: std::collections::BTreeMap<u32, SimTime> = std::collections::BTreeMap::new();
    let mut carried_bytes = 0u64;
    let mut samples = Vec::new();
    let mut idx = 0usize;

    let total_secs = spec.duration.as_secs();
    for second in 1..=total_secs {
        let boundary = SimTime::from_secs(second);
        while idx < packets.len() && packets[idx].at <= boundary {
            let p = &packets[idx];
            let work = model.per_packet_cpu
                + SimDuration::from_nanos_f64(p.size as f64 * model.per_byte_cpu_ns);
            cpu.charge(p.at, work);
            carried_bytes += p.size as u64;
            flows.insert(p.flow, p.at);
            idx += 1;
        }
        // Expire idle conntrack entries.
        flows.retain(|_, last| boundary - *last < model.flow_timeout);
        let conntrack = flows.len() as u64 * model.per_flow_bytes;
        let os_cache = ((carried_bytes as f64 * model.cache_retention) as u64).min(model.cache_cap);
        let total_mem = model.mem_baseline + conntrack + os_cache;
        samples.push(RouterSample {
            at_secs: second as f64,
            cpu: cpu.sample_utilization(boundary),
            mem_mb: total_mem as f64 / 1e6,
            active_flows: flows.len(),
        });
    }
    samples
}

/// Convenience: mean CPU and final memory of a replay.
pub fn replay_summary(samples: &[RouterSample]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mean_cpu = samples.iter().map(|s| s.cpu).sum::<f64>() / samples.len() as f64;
    let max_cpu = samples.iter().map(|s| s.cpu).fold(0.0, f64::max);
    let final_mem = samples.last().expect("non-empty").mem_mb;
    (mean_cpu, max_cpu, final_mem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_rate_stays_below_half_cpu_with_headroom() {
        let samples = replay_trace(&TraceSpec::high_rate(), &RouterModel::default(), 5);
        let (mean_cpu, max_cpu, final_mem) = replay_summary(&samples);
        // Paper: CPU well below 50 %, memory hovering around 120 MB.
        assert!(
            mean_cpu > 0.05,
            "high traffic visibly loads the CPU: {mean_cpu}"
        );
        assert!(max_cpu < 0.5, "max cpu {max_cpu}");
        assert!(
            (100.0..140.0).contains(&final_mem),
            "final mem {final_mem} MB"
        );
    }

    #[test]
    fn low_rate_is_nearly_idle() {
        let samples = replay_trace(&TraceSpec::low_rate(), &RouterModel::default(), 5);
        let (mean_cpu, _max, final_mem) = replay_summary(&samples);
        assert!(mean_cpu < 0.05, "low traffic cpu {mean_cpu}");
        assert!(final_mem < 70.0, "low traffic mem {final_mem}");
    }

    #[test]
    fn five_minute_trace_yields_300_samples() {
        let samples = replay_trace(&TraceSpec::low_rate(), &RouterModel::default(), 5);
        assert_eq!(samples.len(), 300);
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.cpu)));
    }

    #[test]
    fn conntrack_tracks_active_flows() {
        let samples = replay_trace(&TraceSpec::high_rate(), &RouterModel::default(), 5);
        let mid = &samples[150];
        assert!(mid.active_flows > 1_000, "flows {}", mid.active_flows);
        // More traffic, more memory than at the very start.
        assert!(samples[250].mem_mb > samples[5].mem_mb);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(replay_summary(&[]), (0.0, 0.0, 0.0));
    }
}
