//! City-scale multi-AP topologies: grids of APs with per-AP client
//! populations, roaming clients, and (optionally) cooperating AP caches.
//!
//! The single-AP testbed ([`crate::build`]) reproduces the paper's Fig. 9
//! deployment; this module scales it out to the deployment the paper
//! *argues for* — every AP in a campus or city running the cache. APs are
//! laid out on a √N×√N grid with 4-adjacency, each homing its own client
//! population and reaching the (shared) edge/DNS spine over a
//! heterogeneous backhaul: AP `i` draws link class `i mod 3` (fiber,
//! cable, DSL — calibrated against the Fig. 9 AP↔edge anatomy), so hit
//! ratio and tail latency are measured over a realistic mix, not a uniform
//! fleet.
//!
//! Every random choice — per-AP schedules, per-client roam walks — is
//! drawn at build time from seeds derived from the config, so a topology
//! run inherits the simulator's bitwise-determinism contract: identical
//! results at any shard count, thread count, or tie-perturbation key
//! (pinned by `tests/shard_determinism.rs` and the `bench-scale` sweep).
//!
//! Fleet-scale populations (`FleetNode`) stay on the representation bench
//! path: they speak the reduced `FleetMsg` vocabulary and cannot exercise
//! the AP's DNS-Cache/delegation protocol. The topology homes full
//! [`ClientNode`]s at each AP — fewer clients, but every one runs the real
//! enhanced-client runtime end to end.

use ape_nodes::{
    ApNode, ApPolicy, ClientConfig, ClientNode, GridPos, RoamStop, Strategy, WiCacheControllerNode,
    WiCacheLink,
};
use ape_proto::{IpMap, Msg};
use ape_simnet::{LinkSpec, NodeId, ShardedWorld, SimDuration, SimRng, World};
use ape_workload::{generate_roam_schedule, generate_schedule, Execution, RoamConfig};

use crate::run::RunResult;
use crate::system::System;
use crate::testbed::{assemble_spine, client_shard, AssembleWorld, SpineIds, TestbedConfig};
use crate::trace::TraceLog;

/// Seed-mixing constant for per-AP and per-client derived streams
/// (splitmix64's increment; any odd constant with good avalanche works).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream tag of the per-AP schedule RNGs.
const SCHEDULE_STREAM: u64 = 0x5EED_5EED;

/// Stream tag of the per-client roam RNGs.
const ROAM_STREAM: u64 = 0x0A0A_D0AD_0A0A_D0AD;

/// A multi-AP deployment to instantiate.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Per-run knobs shared with the single-AP testbed: system, app suite,
    /// schedule shape, AP parameters, seed, tie perturbation, tracing,
    /// metrics. (`base.clients` is ignored — `clients_per_ap` governs the
    /// population here.)
    pub base: TestbedConfig,
    /// Number of APs in the grid (1 = campus corner case, 256 = city ward).
    pub aps: usize,
    /// Clients homed at each AP.
    pub clients_per_ap: usize,
    /// Mean roams per client per minute (`0.0` pins every client to its
    /// home AP and draws no roam randomness).
    pub roam_per_minute: f64,
    /// When true, APs gossip cache summaries to grid neighbors and try a
    /// nearest-holder peer fetch before going upstream; when false each AP
    /// cache is isolated (the paper's per-AP deployment).
    pub cooperative: bool,
}

impl TopologyConfig {
    /// A cooperative, non-roaming grid of `aps` APs over `base`.
    pub fn new(base: TestbedConfig, aps: usize) -> Self {
        TopologyConfig {
            base,
            aps,
            clients_per_ap: 3,
            roam_per_minute: 0.0,
            cooperative: true,
        }
    }

    /// Sets the per-AP client population.
    pub fn with_clients_per_ap(mut self, clients: usize) -> Self {
        self.clients_per_ap = clients;
        self
    }

    /// Sets the mean roam rate (roams per client per minute).
    pub fn with_roam_rate(mut self, per_minute: f64) -> Self {
        self.roam_per_minute = per_minute;
        self
    }

    /// Disables AP↔AP cooperation (isolated per-AP caches).
    pub fn isolated(mut self) -> Self {
        self.cooperative = false;
        self
    }
}

/// A built multi-AP deployment over a plain [`World`].
pub struct Topology {
    /// The simulated deployment.
    pub world: World<Msg>,
    /// AP nodes, in grid order (index `i` sits at [`grid_pos`]`(i, side)`).
    pub aps: Vec<NodeId>,
    /// All client nodes, grouped by home AP (AP `i`'s clients occupy
    /// indices `i*clients_per_ap .. (i+1)*clients_per_ap`).
    pub clients: Vec<NodeId>,
    /// Home-AP grid index of each client.
    pub client_home: Vec<usize>,
    /// The edge cache server.
    pub edge: NodeId,
    /// The origin server.
    pub origin: NodeId,
    /// The local DNS resolver.
    pub ldns: NodeId,
    /// The Wi-Cache controller, when deployed.
    pub controller: Option<NodeId>,
    /// Total app executions installed across every client.
    pub scheduled: usize,
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("aps", &self.aps.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

/// A built multi-AP deployment over a [`ShardedWorld`]: same node ids as
/// [`Topology`], with the spine (servers, DNS, controller, every AP) on
/// shard 0 and clients round-robin over shards `1..N`.
pub struct ShardedTopology {
    /// The simulated deployment, partitioned for epoch execution.
    pub world: ShardedWorld<Msg>,
    /// AP nodes, in grid order.
    pub aps: Vec<NodeId>,
    /// All client nodes, grouped by home AP.
    pub clients: Vec<NodeId>,
    /// Home-AP grid index of each client.
    pub client_home: Vec<usize>,
    /// The edge cache server.
    pub edge: NodeId,
    /// The origin server.
    pub origin: NodeId,
    /// The local DNS resolver.
    pub ldns: NodeId,
    /// The Wi-Cache controller, when deployed.
    pub controller: Option<NodeId>,
    /// Total app executions installed across every client.
    pub scheduled: usize,
}

impl std::fmt::Debug for ShardedTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTopology")
            .field("shards", &self.world.shard_count())
            .field("aps", &self.aps.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

/// Side length of the AP grid: the smallest square that fits `aps` cells.
pub fn grid_side(aps: usize) -> usize {
    let mut side = (aps as f64).sqrt() as usize;
    while side * side < aps {
        side += 1;
    }
    side.max(1)
}

/// Grid position of AP `i` on a grid with side length `side`.
pub fn grid_pos(i: usize, side: usize) -> GridPos {
    ((i % side) as u32, (i / side) as u32)
}

/// 4-adjacency neighbor lists over the (possibly ragged) `aps`-cell grid.
/// Entry `i` lists the grid indices adjacent to AP `i`, in ascending order.
pub fn grid_neighbors(aps: usize) -> Vec<Vec<usize>> {
    let side = grid_side(aps);
    (0..aps)
        .map(|i| {
            let (x, y) = (i % side, i / side);
            let mut out = Vec::new();
            if y > 0 {
                out.push(i - side);
            }
            if x > 0 {
                out.push(i - 1);
            }
            if x + 1 < side && i + 1 < aps {
                out.push(i + 1);
            }
            if i + side < aps {
                out.push(i + side);
            }
            out
        })
        .collect()
}

/// Node ids produced by [`assemble_topology`].
struct AssembledTopology {
    aps: Vec<NodeId>,
    clients: Vec<NodeId>,
    client_home: Vec<usize>,
    edge: NodeId,
    origin: NodeId,
    ldns: NodeId,
    controller: Option<NodeId>,
    scheduled: usize,
}

/// Assembles the multi-AP deployment into any world backend. Spine first
/// (same sequence as the single-AP testbed), then the controller, then the
/// AP grid, then per-AP client populations; the plain and sharded builds
/// therefore agree on every [`NodeId`].
fn assemble_topology<W: AssembleWorld>(
    world: &mut W,
    config: &TopologyConfig,
    shards: u32,
) -> AssembledTopology {
    assert!(config.aps > 0, "topology needs at least one AP");
    assert!(
        config.clients_per_ap > 0,
        "topology needs at least one client per AP"
    );
    assert!(
        !config.base.apps.is_empty(),
        "topology needs at least one app"
    );
    world.configure(&config.base);

    let base = &config.base;
    let mut ip_map = IpMap::new();
    let spine = assemble_spine(world, base, &mut ip_map);
    let SpineIds {
        origin,
        edge,
        adns,
        cdn_dns,
        ldns,
    } = spine;

    let side = grid_side(config.aps);
    let adjacency = grid_neighbors(config.aps);

    // --- Wi-Cache controller -------------------------------------------
    let controller = (base.system == System::WiCache).then(|| {
        world.add(
            0,
            "wicache-controller".into(),
            WiCacheControllerNode::new(SimDuration::from_micros(300)),
        )
    });

    // --- AP grid --------------------------------------------------------
    // AP ids follow the current node count, so both their NodeIds and
    // their addresses can be fixed before any AP is constructed — every AP
    // then carries the complete AP address map.
    let ap_base = world.count();
    let ap_id = |i: usize| NodeId::from_raw((ap_base + i) as u32);
    let ap_ips: Vec<_> = (0..config.aps).map(|i| ip_map.assign(ap_id(i))).collect();

    let policy = match base.system {
        System::ApeCache => base.ap.policy,
        System::ApeCacheLru | System::WiCache | System::EdgeCache => ApPolicy::Lru,
    };
    let mut aps = Vec::with_capacity(config.aps);
    for i in 0..config.aps {
        let mut ap_config = base.ap.clone();
        ap_config.policy = policy;
        // Distinct sub-microsecond tick phases per AP: 17 ns keeps the AP
        // grid off the clients' 61 ns watchdog grid, the 61 ns step keeps
        // APs off each other, and the 2048 wrap stays under REAP_PHASE so
        // reap ticks never cross another AP's window/sample grid.
        // ape-lint: allow(sim-time-arith) -- deliberate raw-nanosecond phase offsets; the primes are the point, no unit constructor expresses them
        ap_config.phase_stagger = SimDuration::from_nanos(17 + 61 * (i as u64 % 2048));
        let mut node = ApNode::new(ap_config, ldns, ip_map.clone());
        if let Some(controller) = controller {
            node = node.with_wicache(WiCacheLink {
                controller,
                own_address: ap_ips[i],
            });
        }
        if config.cooperative {
            node = node.with_neighbors(adjacency[i].iter().map(|&j| ap_id(j)).collect());
        }
        let id = world.add(0, format!("ap{i}"), node);
        debug_assert_eq!(id, ap_id(i), "AP id prediction out of sync");
        if let Some(controller) = controller {
            world
                .get_mut::<WiCacheControllerNode>(controller)
                .register_ap_at(id, ap_ips[i], grid_pos(i, side));
        }
        aps.push(id);
    }

    // --- Clients ----------------------------------------------------------
    let strategy = match base.system {
        System::ApeCache | System::ApeCacheLru => Strategy::ApeCache,
        System::WiCache => Strategy::WiCache,
        System::EdgeCache => Strategy::EdgeCache,
    };
    let roam = RoamConfig {
        per_client_per_minute: config.roam_per_minute,
        duration: base.schedule.duration,
    };
    let mut clients = Vec::with_capacity(config.aps * config.clients_per_ap);
    let mut client_home = Vec::with_capacity(clients.capacity());
    let mut roam_targets: Vec<Vec<usize>> = Vec::with_capacity(clients.capacity());
    let mut scheduled = 0usize;
    for (i, &home_ap) in aps.iter().enumerate() {
        // Each AP serves its own independently seeded schedule, split
        // round-robin over its population (the testbed's sharing scheme).
        let mut schedule_rng =
            SimRng::seed_from(base.seed ^ SCHEDULE_STREAM ^ (i as u64).wrapping_mul(SEED_MIX));
        let schedule = generate_schedule(&base.schedule, &mut schedule_rng);
        scheduled += schedule.len();
        for j in 0..config.clients_per_ap {
            let g = clients.len();
            let share: Vec<Execution> = schedule
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % config.clients_per_ap == j)
                .map(|(_, e)| *e)
                .collect();
            let mut roam_rng =
                SimRng::seed_from(base.seed ^ ROAM_STREAM ^ (g as u64).wrapping_mul(SEED_MIX));
            let walk = generate_roam_schedule(&adjacency, i, &roam, &mut roam_rng);
            let stops: Vec<RoamStop> = walk
                .iter()
                .map(|ev| RoamStop {
                    at: ev.at,
                    ap: ap_id(ev.ap),
                })
                .collect();
            // The radio association set: home plus every AP the walk
            // visits, known upfront so the links exist before the roam.
            let mut targets: Vec<usize> = walk.iter().map(|ev| ev.ap).collect();
            targets.sort_unstable();
            targets.dedup();
            targets.retain(|&t| t != i);
            roam_targets.push(targets);

            let dns_server = match strategy {
                Strategy::ApeCache | Strategy::WiCache => home_ap,
                Strategy::EdgeCache => ldns,
            };
            let mut client_config =
                ClientConfig::new(strategy, dns_server, home_ap, ip_map.clone());
            client_config.controller = controller;
            client_config.lookup_mode = base.lookup_mode;
            client_config.prefetch_hints = base.prefetch_hints;
            let node =
                ClientNode::new(client_config, base.apps.clone(), share).with_roam_schedule(stops);
            let id = world.add(client_shard(g, shards), format!("client{g}"), node);
            if let Some(controller) = controller {
                world
                    .get_mut::<WiCacheControllerNode>(controller)
                    .register_requester_at(id, grid_pos(i, side));
            }
            clients.push(id);
            client_home.push(i);
        }
    }

    // --- Links ------------------------------------------------------------
    // Heterogeneous backhaul: AP i draws class i mod 3. Class 0 is the
    // testbed's calibrated Fig. 9 anatomy; classes 1 and 2 stretch the
    // AP↔edge and AP↔LDNS paths to cable- and DSL-like distances.
    let backhaul = [
        // (AP↔edge, AP↔LDNS): fiber — the single-AP testbed's links.
        (
            LinkSpec::from_rtt(7, SimDuration::from_millis(14))
                .jitter_mean(SimDuration::from_micros(800)),
            LinkSpec::from_rtt(5, SimDuration::from_millis(13))
                .jitter_mean(SimDuration::from_micros(600)),
        ),
        // Cable.
        (
            LinkSpec::from_rtt(8, SimDuration::from_millis(21))
                .jitter_mean(SimDuration::from_millis(1)),
            LinkSpec::from_rtt(6, SimDuration::from_millis(18))
                .jitter_mean(SimDuration::from_micros(800)),
        ),
        // DSL.
        (
            LinkSpec::from_rtt(10, SimDuration::from_millis(35))
                .jitter_mean(SimDuration::from_millis(2)),
            LinkSpec::from_rtt(7, SimDuration::from_millis(26))
                .jitter_mean(SimDuration::from_millis(1)),
        ),
    ];
    // Neighbor APs share a wired LAN segment (metro backhaul hop).
    let ap_peer = LinkSpec::from_rtt(2, SimDuration::from_millis(4))
        .jitter_mean(SimDuration::from_micros(300));
    let controller_link = LinkSpec::from_rtt(12, SimDuration::from_millis(24))
        .jitter_mean(SimDuration::from_millis(1));
    let ldns_adns = LinkSpec::from_rtt(12, SimDuration::from_millis(30))
        .jitter_mean(SimDuration::from_millis(2));
    let ldns_cdn = LinkSpec::from_rtt(9, SimDuration::from_millis(20))
        .jitter_mean(SimDuration::from_millis(1));
    let edge_origin = LinkSpec::from_rtt(8, SimDuration::from_millis(24))
        .jitter_mean(SimDuration::from_millis(1));
    let lossy = |link: LinkSpec| {
        if base.wifi_loss > 0.0 {
            link.loss_probability(base.wifi_loss)
        } else {
            link
        }
    };
    let wifi = lossy(
        LinkSpec::from_rtt(1, SimDuration::from_millis(3))
            .bandwidth_bytes_per_sec(40_000_000)
            .jitter_mean(SimDuration::from_micros(200)),
    );
    let client_edge = lossy(
        LinkSpec::from_rtt(7, SimDuration::from_millis(15))
            .bandwidth_bytes_per_sec(40_000_000)
            .jitter_mean(SimDuration::from_micros(800)),
    );
    let client_ldns = lossy(
        LinkSpec::from_rtt(6, SimDuration::from_millis(16))
            .jitter_mean(SimDuration::from_micros(700)),
    );
    let client_controller = lossy(controller_link);

    world.link(ldns, adns, ldns_adns);
    world.link(ldns, cdn_dns, ldns_cdn);
    world.link(edge, origin, edge_origin);
    for (i, &ap) in aps.iter().enumerate() {
        let (ap_edge, ap_ldns) = backhaul[i % backhaul.len()];
        world.link(ap, edge, ap_edge);
        world.link(ap, ldns, ap_ldns);
        // AP↔AP segments exist regardless of cooperation: roam handoffs
        // travel them even when summary gossip is off.
        for &j in &adjacency[i] {
            if j > i {
                world.link(ap, ap_id(j), ap_peer);
            }
        }
        if let Some(controller) = controller {
            world.link(ap, controller, controller_link);
        }
    }
    for (g, &client) in clients.iter().enumerate() {
        world.link(client, aps[client_home[g]], wifi);
        for &target in &roam_targets[g] {
            world.link(client, aps[target], wifi);
        }
        world.link(client, edge, client_edge);
        world.link(client, ldns, client_ldns);
        if let Some(controller) = controller {
            world.link(client, controller, client_controller);
        }
    }

    AssembledTopology {
        aps,
        clients,
        client_home,
        edge,
        origin,
        ldns,
        controller,
        scheduled,
    }
}

/// Builds the multi-AP world for `config` over a plain [`World`].
///
/// # Panics
///
/// Panics if the config has no APs, no clients per AP, or no apps.
pub fn build_topology(config: &TopologyConfig) -> Topology {
    let mut world = World::new(config.base.seed);
    let ids = assemble_topology(&mut world, config, 1);
    Topology {
        world,
        aps: ids.aps,
        clients: ids.clients,
        client_home: ids.client_home,
        edge: ids.edge,
        origin: ids.origin,
        ldns: ids.ldns,
        controller: ids.controller,
        scheduled: ids.scheduled,
    }
}

/// Builds the same deployment into a [`ShardedWorld`] with `shards`
/// shards. Node ids match [`build_topology`] exactly; outputs are bitwise
/// identical at any shard count under the sharded engine's invariance
/// contract.
///
/// # Panics
///
/// Panics if the config is empty (see [`build_topology`]) or `shards` is 0.
pub fn build_topology_sharded(config: &TopologyConfig, shards: u32) -> ShardedTopology {
    assert!(shards > 0, "need at least one shard");
    let mut world = ShardedWorld::new(config.base.seed, shards);
    let ids = assemble_topology(&mut world, config, shards);
    ShardedTopology {
        world,
        aps: ids.aps,
        clients: ids.clients,
        client_home: ids.client_home,
        edge: ids.edge,
        origin: ids.origin,
        ldns: ids.ldns,
        controller: ids.controller,
        scheduled: ids.scheduled,
    }
}

/// Collects results from an already-run topology.
pub fn collect_topology(system: System, top: &mut Topology) -> RunResult {
    let mut report = ape_nodes::ClientReport::default();
    for &client in &top.clients {
        report.merge(&top.world.node::<ClientNode>(client).report());
    }
    let trace = top.world.trace().is_enabled().then(|| {
        let names: Vec<String> = (0..top.world.node_count())
            .map(|i| top.world.node_name(NodeId::from_raw(i as u32)).to_owned())
            .collect();
        TraceLog::from_run(names, top.world.take_trace_events())
    });
    RunResult {
        system,
        metrics: top.world.metrics().clone(),
        report,
        trace,
        profile: top.world.profile_report(),
    }
}

/// Collects results from an already-run sharded topology, merging
/// per-shard metric registries and trace buffers in canonical order.
pub fn collect_topology_sharded(system: System, top: &mut ShardedTopology) -> RunResult {
    let mut report = ape_nodes::ClientReport::default();
    for &client in &top.clients {
        report.merge(&top.world.node::<ClientNode>(client).report());
    }
    let metrics = top.world.metrics_merged();
    let events = top.world.take_trace_events();
    let trace = (!events.is_empty()).then(|| {
        let names: Vec<String> = (0..top.world.node_count())
            .map(|i| top.world.node_name(NodeId::from_raw(i as u32)).to_owned())
            .collect();
        TraceLog::from_run(names, events)
    });
    RunResult {
        system,
        metrics,
        report,
        trace,
        profile: top.world.profile_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_appdag::{generate_fleet, DummyAppConfig};
    use ape_proto::names;
    use ape_workload::ScheduleConfig;

    fn apps(n: usize) -> Vec<AppSpec> {
        let mut rng = SimRng::seed_from(1);
        generate_fleet(n, &DummyAppConfig::default(), &mut rng)
    }

    use ape_appdag::AppSpec;

    fn small_base(system: System) -> TestbedConfig {
        let mut config = TestbedConfig::new(system, apps(5));
        config.schedule = ScheduleConfig {
            apps: 5,
            avg_per_minute: 6.0,
            zipf_exponent: 0.8,
            duration: SimDuration::from_mins(3),
        };
        config
    }

    #[test]
    fn grid_geometry_is_sane() {
        assert_eq!(grid_side(1), 1);
        assert_eq!(grid_side(16), 4);
        assert_eq!(grid_side(17), 5);
        assert_eq!(grid_pos(5, 4), (1, 1));
        let adj = grid_neighbors(16);
        assert_eq!(adj[0], vec![1, 4]);
        assert_eq!(adj[5], vec![1, 4, 6, 9]);
        assert_eq!(adj[15], vec![11, 14]);
        // Ragged 5-cell grid on a 3-wide board: cell 4 has no right/down.
        let ragged = grid_neighbors(5);
        assert_eq!(ragged[4], vec![1, 3]);
        // Adjacency is symmetric.
        for (i, ns) in adj.iter().enumerate() {
            for &j in ns {
                assert!(adj[j].contains(&i), "{i} -> {j} not symmetric");
            }
        }
    }

    #[test]
    fn builds_a_grid_with_per_ap_populations() {
        let config = TopologyConfig::new(small_base(System::ApeCache), 4).with_clients_per_ap(2);
        let top = build_topology(&config);
        assert_eq!(top.aps.len(), 4);
        assert_eq!(top.clients.len(), 8);
        assert_eq!(top.client_home, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert!(top.controller.is_none());
    }

    #[test]
    fn sharded_build_mirrors_plain_ids_and_shard_placement() {
        for system in [System::ApeCache, System::WiCache] {
            let config = TopologyConfig::new(small_base(system), 4)
                .with_clients_per_ap(2)
                .with_roam_rate(1.0);
            let plain = build_topology(&config);
            let sharded = build_topology_sharded(&config, 4);
            assert_eq!(plain.aps, sharded.aps);
            assert_eq!(plain.clients, sharded.clients);
            assert_eq!(plain.controller, sharded.controller);
            for &ap in &sharded.aps {
                assert_eq!(sharded.world.shard_of(ap), 0, "APs live on the spine");
            }
            for &c in &sharded.clients {
                assert_ne!(sharded.world.shard_of(c), 0, "clients live off-spine");
            }
        }
    }

    #[test]
    fn single_ap_topology_runs_clean() {
        let config = TopologyConfig::new(small_base(System::ApeCache), 1).with_clients_per_ap(3);
        let mut top = build_topology(&config);
        top.world.run_for(SimDuration::from_mins(3));
        let mut result = collect_topology(System::ApeCache, &mut top);
        let s = result.summary();
        assert!(s.executions > 10, "executions {}", s.executions);
        assert_eq!(s.failures, 0);
        assert!(s.hit_ratio > 0.3, "hit ratio {}", s.hit_ratio);
    }

    #[test]
    fn roaming_clients_roam_and_the_run_stays_clean() {
        let config = TopologyConfig::new(small_base(System::ApeCache), 4)
            .with_clients_per_ap(2)
            .with_roam_rate(2.0);
        let mut top = build_topology(&config);
        top.world.run_for(SimDuration::from_mins(3));
        let roams = top.world.metrics().counter(names::CLIENT_ROAMS);
        assert!(roams > 0, "no client ever roamed");
        let departures = top.world.metrics().counter(names::AP_ROAM_DEPARTURES);
        assert_eq!(roams, departures, "every roam notifies the departed AP");
        let mut result = collect_topology(System::ApeCache, &mut top);
        let s = result.summary();
        assert!(s.executions > 10, "executions {}", s.executions);
    }

    #[test]
    fn cooperative_aps_peer_fetch() {
        let config = TopologyConfig::new(small_base(System::ApeCache), 4).with_clients_per_ap(2);
        let mut top = build_topology(&config);
        top.world.run_for(SimDuration::from_mins(3));
        let fetches = top.world.metrics().counter(names::AP_PEER_FETCHES);
        let hits = top.world.metrics().counter(names::AP_PEER_HITS);
        let misses = top.world.metrics().counter(names::AP_PEER_MISSES);
        assert!(fetches > 0, "cooperative grid never tried a peer fetch");
        assert_eq!(fetches, hits + misses, "every peer fetch resolves");
        assert!(hits > 0, "gossiped summaries never produced a peer hit");
    }

    #[test]
    fn isolated_aps_never_peer_fetch() {
        let config = TopologyConfig::new(small_base(System::ApeCache), 4)
            .with_clients_per_ap(2)
            .isolated();
        let mut top = build_topology(&config);
        top.world.run_for(SimDuration::from_mins(3));
        assert_eq!(top.world.metrics().counter(names::AP_PEER_FETCHES), 0);
    }

    #[test]
    fn wicache_topology_tracks_multiple_holders() {
        let config = TopologyConfig::new(small_base(System::WiCache), 4).with_clients_per_ap(2);
        let mut top = build_topology(&config);
        let controller = top.controller.expect("WiCache deploys the controller");
        top.world.run_for(SimDuration::from_mins(3));
        let node = top.world.node::<WiCacheControllerNode>(controller);
        assert!(node.placement_count() > 0, "no placements registered");
        let mut result = collect_topology(System::WiCache, &mut top);
        assert!(result.summary().executions > 10);
    }
}
