//! The sharded engine's headline contract, enforced on the full Fig. 9
//! testbed: partitioning a run over any number of shards — under any
//! tie-perturbation key — changes **nothing**. Fingerprints (clock, event
//! count, metric digest, trace digest), merged metric registries, and the
//! byte-for-byte merged trace stream must all be identical to the
//! single-shard run.
//!
//! A companion test proves the oracle is not vacuous: a world whose
//! lookahead is deliberately overclaimed produces a genuine cross-shard
//! interleaving bug, and `enable_shard_oracle` catches it.

use ape_appdag::DummyAppConfig;
use ape_proto::names;
use ape_simnet::{Fingerprint, SimDuration, TraceConfig, TraceEvent};
use ape_workload::ScheduleConfig;
use apecache::{
    build_sharded, build_topology_sharded, synthetic_suite, System, TestbedConfig, TopologyConfig,
};

/// Distinct nonzero tie-perturbation keys; `None` first for the FIFO path.
const PERTURBATIONS: [Option<u64>; 4] = [
    None,
    Some(0x5EED_F00D_0000_0001),
    Some(0x9E37_79B9_7F4A_7C15),
    Some(0xDEAD_BEEF_CAFE_F00D),
];

fn config(system: System, perturbation: Option<u64>) -> TestbedConfig {
    let apps = synthetic_suite(4, &DummyAppConfig::default(), 7);
    let mut config = TestbedConfig::new(system, apps);
    config.schedule = ScheduleConfig {
        apps: 4,
        ..ScheduleConfig::default()
    };
    config.clients = 6;
    config.tie_perturbation = perturbation;
    // Large capacity so the ring never drops events: the merged stream
    // must be byte-comparable, not merely digest-comparable.
    config.trace = TraceConfig {
        enabled: true,
        capacity: 1 << 16,
        sample_every: 1,
    };
    config
}

/// Runs the full testbed at `shards` shards and returns everything the
/// invariance contract covers.
fn run_at(
    system: System,
    perturbation: Option<u64>,
    shards: u32,
) -> (Fingerprint, u64, u64, Vec<TraceEvent>) {
    let mut bed = build_sharded(&config(system, perturbation), shards);
    bed.world.enable_shard_oracle();
    bed.world.run_for(SimDuration::from_secs(90));
    let metrics = bed.world.metrics_merged();
    let fetches = metrics.counter(names::CLIENT_FETCHES);
    let net = metrics.counter(names::NET_MESSAGES);
    (
        bed.world.fingerprint(),
        fetches,
        net,
        bed.world.take_trace_events(),
    )
}

/// Tentpole acceptance: shard counts {1, 2, 4, 8} × 4 perturbation keys,
/// all bitwise identical — fingerprints, headline counters, and the full
/// merged trace artifact.
#[test]
fn full_testbed_is_invariant_across_shard_counts_and_perturbations() {
    for &perturbation in &PERTURBATIONS {
        let (fp1, fetches1, net1, trace1) = run_at(System::ApeCache, perturbation, 1);
        assert!(fetches1 > 0, "workload must actually run");
        assert!(!trace1.is_empty(), "tracing must capture spans");
        for shards in [2u32, 4, 8] {
            let (fp, fetches, net, trace) = run_at(System::ApeCache, perturbation, shards);
            assert_eq!(
                fp, fp1,
                "fingerprint diverged at {shards} shards (perturbation {perturbation:?})"
            );
            assert_eq!(fetches, fetches1);
            assert_eq!(net, net1);
            assert_eq!(
                trace, trace1,
                "merged trace stream diverged at {shards} shards"
            );
        }
    }
}

/// The Wi-Cache topology adds the controller (and its cross-shard client
/// links); the invariance contract must hold there too.
#[test]
fn wicache_testbed_is_invariant_across_shard_counts() {
    let (fp1, fetches1, _, _) = run_at(System::WiCache, None, 1);
    assert!(fetches1 > 0);
    for shards in [2u32, 4] {
        let (fp, fetches, _, _) = run_at(System::WiCache, None, shards);
        assert_eq!(fp, fp1, "Wi-Cache fingerprint diverged at {shards} shards");
        assert_eq!(fetches, fetches1);
    }
}

/// Thread count is a pure execution detail: a multi-threaded epoch executor
/// must reproduce the sequential results bit for bit.
#[test]
fn thread_count_does_not_change_results() {
    let base = run_at(System::ApeCache, None, 4);
    let mut bed = build_sharded(&config(System::ApeCache, None), 4);
    bed.world.enable_shard_oracle();
    bed.world.set_threads(4);
    bed.world.run_for(SimDuration::from_secs(90));
    assert_eq!(bed.world.fingerprint(), base.0);
    assert_eq!(bed.world.take_trace_events(), base.3);
}

/// A roaming, cooperating 16-AP grid for the multi-AP invariance pins:
/// clients walk between APs mid-run, APs gossip summaries and peer-fetch,
/// so cross-shard traffic covers every new message kind.
fn topology_config(system: System, perturbation: Option<u64>) -> TopologyConfig {
    let mut base = config(system, perturbation);
    base.schedule.duration = SimDuration::from_mins(2);
    TopologyConfig::new(base, 16)
        .with_clients_per_ap(2)
        .with_roam_rate(1.5)
}

/// Runs the 16-AP topology at `shards` shards (optionally with a worker
/// pool) and returns everything the invariance contract covers.
fn run_topology_at(
    system: System,
    perturbation: Option<u64>,
    shards: u32,
    threads: usize,
) -> (Fingerprint, u64, u64, u64, Vec<TraceEvent>) {
    let mut top = build_topology_sharded(&topology_config(system, perturbation), shards);
    top.world.enable_shard_oracle();
    if threads > 1 {
        top.world.set_threads(threads);
    }
    top.world.run_for(SimDuration::from_secs(75));
    let metrics = top.world.metrics_merged();
    let fetches = metrics.counter(names::CLIENT_FETCHES);
    let roams = metrics.counter(names::CLIENT_ROAMS);
    let net = metrics.counter(names::NET_MESSAGES);
    (
        top.world.fingerprint(),
        fetches,
        roams,
        net,
        top.world.take_trace_events(),
    )
}

/// The 16-AP topology — roaming clients, summary gossip, peer fetches —
/// under shard counts {1, 2, 4, 8} × every perturbation key: fingerprints,
/// merged counters, and the byte-level merged trace stream all identical.
#[test]
fn sixteen_ap_topology_is_invariant_across_shards_and_perturbations() {
    for &perturbation in &PERTURBATIONS {
        let (fp1, fetches1, roams1, net1, trace1) =
            run_topology_at(System::ApeCache, perturbation, 1, 1);
        assert!(fetches1 > 0, "workload must actually run");
        assert!(roams1 > 0, "clients must actually roam");
        assert!(!trace1.is_empty(), "tracing must capture spans");
        for shards in [2u32, 4, 8] {
            let (fp, fetches, roams, net, trace) =
                run_topology_at(System::ApeCache, perturbation, shards, 1);
            assert_eq!(
                fp, fp1,
                "topology fingerprint diverged at {shards} shards (perturbation {perturbation:?})"
            );
            assert_eq!(fetches, fetches1);
            assert_eq!(roams, roams1);
            assert_eq!(net, net1);
            assert_eq!(
                trace, trace1,
                "merged topology trace diverged at {shards} shards"
            );
        }
    }
}

/// The Wi-Cache 16-AP topology adds the multi-holder controller and its
/// cross-shard client links; same contract.
#[test]
fn sixteen_ap_wicache_topology_is_invariant_across_shards() {
    let (fp1, fetches1, roams1, net1, trace1) = run_topology_at(System::WiCache, None, 1, 1);
    assert!(fetches1 > 0);
    assert!(roams1 > 0);
    for shards in [2u32, 4, 8] {
        let (fp, fetches, roams, net, trace) = run_topology_at(System::WiCache, None, shards, 1);
        assert_eq!(
            fp, fp1,
            "Wi-Cache topology fingerprint diverged at {shards} shards"
        );
        assert_eq!(fetches, fetches1);
        assert_eq!(roams, roams1);
        assert_eq!(net, net1);
        assert_eq!(trace, trace1);
    }
}

/// Thread count stays a pure execution detail on the multi-AP topology,
/// for both cache systems.
#[test]
fn topology_thread_count_does_not_change_results() {
    for system in [System::ApeCache, System::WiCache] {
        let sequential = run_topology_at(system, None, 4, 1);
        let threaded = run_topology_at(system, None, 4, 4);
        assert_eq!(
            threaded.0, sequential.0,
            "{system:?} topology fingerprint diverged under 4 threads"
        );
        assert_eq!(threaded.4, sequential.4, "{system:?} trace diverged");
    }
}

/// Oracle sensitivity: overclaiming the lookahead makes cross-shard
/// messages arrive inside an epoch that already executed past them. The
/// oracle must detect the stale delivery instead of silently producing a
/// different (non-deterministic) run.
#[test]
#[should_panic(expected = "shard oracle")]
fn oracle_fires_on_overclaimed_lookahead() {
    let mut bed = build_sharded(&config(System::ApeCache, None), 4);
    bed.world.enable_shard_oracle();
    // The real WiFi links floor the lookahead at 1.5 ms; claiming 500 ms
    // lets client shards race far ahead of the spine's replies.
    bed.world.override_lookahead(SimDuration::from_millis(500));
    bed.world.run_for(SimDuration::from_secs(90));
}
