//! The `trace` artifact: a traced sweep over all four systems producing
//! per-request latency attribution, critical-path reports, and exportable
//! telemetry (JSONL span logs + Prometheus-style text metrics).
//!
//! Every string returned here is deterministic: runs execute through the
//! same [`apecache::ParallelRunner`] as the figure sweeps, results merge in
//! trial order, and all rendering iterates sorted maps — so the artifacts
//! are byte-identical across `--threads 1` and `--threads N` for the same
//! seed. The integration tests under `tests/` pin that property.

use ape_appdag::DummyAppConfig;
use ape_simnet::TraceConfig;
use apecache::{prometheus_snapshot, System, TestbedConfig};

use crate::experiments::{base_config, replica_jobs, ReproOptions};

/// Number of apps in the traced workload (matches the table sweeps).
const TRACE_APPS: usize = 30;

/// Span-ring capacity for traced repro runs; sized so a full-length run
/// never evicts (each request emits ~10 events).
const TRACE_CAPACITY: usize = 1 << 20;

/// The three exportable outputs of a traced sweep.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Human-readable report: per-system latency-attribution tables plus
    /// flamegraph-style critical-path breakdowns.
    pub report: String,
    /// One JSON object per span event, all systems concatenated
    /// (distinguished by the `"system"` field), followed by one
    /// `"histogram"` summary object per metric histogram carrying its
    /// sample count and `dropped_samples` — so release-mode sample
    /// corruption (non-finite observations) is visible in the artifact.
    pub jsonl: String,
    /// Prometheus text-format snapshot: per-stage latency summaries and
    /// the pooled simulation counters/histograms.
    pub prometheus: String,
}

/// The testbed configuration a traced run uses for `system`: the standard
/// sweep workload with tracing switched on at full sampling.
pub fn traced_config(system: System, opts: &ReproOptions) -> TestbedConfig {
    let mut config = base_config(system, opts, &DummyAppConfig::default(), TRACE_APPS);
    config.trace = TraceConfig {
        enabled: true,
        capacity: TRACE_CAPACITY,
        sample_every: 1,
    };
    config
}

/// Runs all four systems with tracing enabled (`opts.trials` replicas
/// each, pooled in trial order) and assembles the exportable artifacts.
pub fn trace_artifacts(opts: &ReproOptions) -> TraceArtifacts {
    let mut jobs = Vec::new();
    for &system in System::ALL.iter() {
        let config = traced_config(system, opts);
        jobs.extend(replica_jobs(&config, opts));
    }

    let trials = opts.trials.max(1);
    let mut results = opts.runner().run_many(&jobs).into_iter();

    let mut report = String::from(
        "Request tracing: latency attribution and critical paths\n\
         (deterministic span log; merged across trials in trial order)\n",
    );
    let mut jsonl = String::new();
    let mut prometheus = String::new();

    for &system in System::ALL.iter() {
        let mut merged = results.next().expect("one result per job");
        for _ in 1..trials {
            merged.merge(&results.next().expect("one result per job"));
        }
        let label = system.label();
        let log = merged
            .trace
            .as_ref()
            .expect("tracing was enabled in the config");

        let attribution = log.attribution(label);
        report.push('\n');
        report.push_str(&attribution.table());
        report.push('\n');
        report.push_str(&log.critical_path_report(label));

        jsonl.push_str(&log.to_jsonl(label));
        // Histogram-health summary lines: registry iteration is sorted, so
        // these stay byte-deterministic like the span lines above.
        let names: Vec<String> = merged
            .metrics
            .histogram_names()
            .map(str::to_owned)
            .collect();
        for name in names {
            let hist = merged.metrics.histogram(&name).expect("name from registry");
            jsonl.push_str(&format!(
                "{{\"system\":\"{label}\",\"histogram\":\"{name}\",\"count\":{},\"dropped_samples\":{}}}\n",
                hist.count(),
                hist.dropped_samples(),
            ));
        }

        prometheus.push_str(&attribution.prometheus());
        prometheus.push_str(&prometheus_snapshot(&mut merged.metrics, label));
    }

    TraceArtifacts {
        report,
        jsonl,
        prometheus,
    }
}
