//! `repro bench-shard` — sharded-world scale sweep.
//!
//! Sweeps client populations {10k, 100k, 1M} (quick mode keeps the small
//! cell for CI smoke), running the same fetch/think workload under two
//! client representations:
//!
//! * **fleet** — [`ape_nodes::FleetNode`] struct-of-arrays populations (8
//!   sub-fleets per cell) spread over {1, 2, 4, 8} shards of a
//!   [`ShardedWorld`], with the serving spine on shard 0,
//! * **boxed** — the classic one-node-per-client baseline
//!   ([`ape_nodes::BoxedClientNode`]) on a single shard.
//!
//! Per cell the sweep reports events processed, wall-clock, aggregate
//! events/sec, settled fetches/sec and the profiler's barrier-wait
//! fraction. Because the cell's node set is fixed at 8 sub-fleets
//! regardless of shard count, every fleet run of one population must
//! produce a bitwise-identical [`Fingerprint`]; the bench asserts this
//! before reporting any timing, so the throughput comparison is between
//! provably-identical simulations. Results go to `BENCH_shard.json` at the
//! repo root; `EXPERIMENTS.md` tracks the trajectory.
//!
//! The workload is deterministic in `--seed`; only wall-clock timings vary
//! run to run (the bench crate is the one place wall-clock is permitted).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ape_nodes::{BoxedClientNode, FleetConfig, FleetMsg, FleetNode, FleetOrigin, FleetResponder};
use ape_proto::names;
use ape_simnet::{Fingerprint, LinkSpec, ShardedWorld, SimDuration, SimTime};
use ape_workload::{ZipfConfig, ZipfMode, ZipfSampler};

use crate::ReproOptions;

/// Client populations swept in a full run.
const SWEEP_FULL: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Quick-mode subset (CI smoke: small population only).
const SWEEP_QUICK: [usize; 1] = [10_000];

/// Shard counts every fleet population is run at.
const SHARDS: [u32; 4] = [1, 2, 4, 8];

/// Sub-fleets per cell: fixed regardless of shard count so the node set —
/// and therefore the fingerprint — is invariant across the shard sweep.
const SUB_FLEETS: u32 = 8;

/// Mean think time between fetches. Denser than the paper's 20 s fleet
/// average so a few simulated seconds carry bench-grade traffic.
const THINK_MEAN: SimDuration = SimDuration::from_secs(2);

/// Simulated span per cell (full / quick).
const SIM_SECS_FULL: u64 = 4;
const SIM_SECS_QUICK: u64 = 2;

/// Catalog size and skew for the Zipf app popularity.
const APPS: usize = 64;
const ZIPF_EXPONENT: f64 = 1.0;

/// Responder cache model: share of the catalog considered cached.
const HIT_PCT: u8 = 60;

/// One `(representation, population, shards)` sweep cell.
struct Cell {
    repr: &'static str,
    clients: usize,
    shards: u32,
    /// Simulation events processed during the measured span.
    events: u64,
    /// Median wall-clock of the measured span.
    wall_ms: f64,
    /// Aggregate throughput implied by the median wall-clock.
    events_per_sec: u64,
    /// Fetches issued (CLIENT_FETCHES) during the span.
    fetches: u64,
    /// Fetch throughput implied by the median wall-clock.
    fetches_per_sec: u64,
    /// Host time spent waiting at epoch barriers, as a fraction of the
    /// measured execution time.
    barrier_wait_fraction: f64,
}

/// What one world run yields besides timings.
struct RunOutcome {
    fingerprint: Fingerprint,
    events: u64,
    fetches: u64,
    barrier_wait_fraction: f64,
    wall_ms: f64,
}

fn fleet_config(clients_per_fleet: usize) -> FleetConfig {
    FleetConfig {
        clients: clients_per_fleet,
        think_mean: THINK_MEAN,
        apps: APPS,
        zipf_exponent: ZIPF_EXPONENT,
        zipf: ZipfConfig {
            mode: ZipfMode::Alias,
        },
        timeout: SimDuration::from_secs(5),
        tick: SimDuration::from_millis(10),
    }
}

/// The WiFi-hop link every client population uses to reach the spine; its
/// 1.5 ms propagation floors the cross-shard lookahead.
fn link() -> LinkSpec {
    LinkSpec::new(2, SimDuration::from_micros(1_500))
}

/// Builds a fleet cell: spine on shard 0, `SUB_FLEETS` fleets round-robin
/// over the client shards.
fn build_fleet(clients: usize, shards: u32, seed: u64) -> ShardedWorld<FleetMsg> {
    let mut w: ShardedWorld<FleetMsg> = ShardedWorld::new(seed, shards);
    w.enable_profiler();
    let origin = w.add_node(0, "origin", FleetOrigin::new(SimDuration::from_micros(200)));
    let responder = w.add_node(
        0,
        "responder",
        FleetResponder::new(origin, HIT_PCT, SimDuration::from_micros(100), seed),
    );
    w.connect(responder, origin, link());
    let per_fleet = clients / SUB_FLEETS as usize;
    for f in 0..SUB_FLEETS {
        let shard = if shards == 1 { 0 } else { 1 + f % (shards - 1) };
        let fleet = w.add_node(
            shard,
            format!("fleet{f}"),
            FleetNode::new(fleet_config(per_fleet), responder, f),
        );
        w.connect(fleet, responder, link());
    }
    w
}

/// Builds the boxed baseline cell: the same spine, one node per client,
/// all on a single shard.
fn build_boxed(clients: usize, seed: u64) -> ShardedWorld<FleetMsg> {
    let mut w: ShardedWorld<FleetMsg> = ShardedWorld::new(seed, 1);
    w.enable_profiler();
    let origin = w.add_node(0, "origin", FleetOrigin::new(SimDuration::from_micros(200)));
    let responder = w.add_node(
        0,
        "responder",
        FleetResponder::new(origin, HIT_PCT, SimDuration::from_micros(100), seed),
    );
    w.connect(responder, origin, link());
    let zipf = Arc::new(ZipfSampler::with_config(
        APPS,
        ZIPF_EXPONENT,
        ZipfConfig {
            mode: ZipfMode::Alias,
        },
    ));
    for i in 0..clients as u32 {
        let c = w.add_node(
            0,
            format!("client{i}"),
            BoxedClientNode::new(
                responder,
                THINK_MEAN,
                SimDuration::from_secs(5),
                Arc::clone(&zipf),
                i,
            ),
        );
        w.connect(c, responder, link());
    }
    w
}

/// Runs one freshly built world for `sim` and collects its outcome. Only
/// the run itself is timed; construction is excluded.
fn run_world(mut w: ShardedWorld<FleetMsg>, sim: SimDuration) -> RunOutcome {
    let t = Instant::now();
    w.run_until(SimTime::ZERO + sim);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let fetches = w.metrics_merged().counter(names::CLIENT_FETCHES);
    RunOutcome {
        fingerprint: w.fingerprint(),
        events: w.events_processed(),
        fetches,
        barrier_wait_fraction: w.profile_report().barrier_wait_fraction(),
        wall_ms,
    }
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock is finite"));
    samples[samples.len() / 2]
}

/// Runs a cell `trials` times (plus a warm-up) and folds the outcomes into
/// a [`Cell`], returning the fingerprint for cross-shard-count asserts.
fn run_cell(
    repr: &'static str,
    clients: usize,
    shards: u32,
    trials: usize,
    sim: SimDuration,
    build: impl Fn() -> ShardedWorld<FleetMsg>,
) -> (Cell, Fingerprint) {
    // Warm-up pass: faults in code paths and grows allocator arenas.
    let warm = run_world(build(), sim);
    let mut walls = Vec::with_capacity(trials);
    let mut last = warm;
    for _ in 0..trials {
        let outcome = run_world(build(), sim);
        assert_eq!(
            outcome.fingerprint, last.fingerprint,
            "world must be deterministic across trials"
        );
        walls.push(outcome.wall_ms);
        last = outcome;
    }
    let wall_ms = median_ms(walls);
    let per_sec = |count: u64| (count as f64 / (wall_ms / 1e3)) as u64;
    let cell = Cell {
        repr,
        clients,
        shards,
        events: last.events,
        wall_ms,
        events_per_sec: per_sec(last.events),
        fetches: last.fetches,
        fetches_per_sec: per_sec(last.fetches),
        barrier_wait_fraction: last.barrier_wait_fraction,
    };
    (cell, last.fingerprint)
}

/// Events/sec of the cell matching `(repr, clients, shards)`.
fn rate_of(cells: &[Cell], repr: &str, clients: usize, shards: u32) -> Option<u64> {
    cells
        .iter()
        .find(|c| c.repr == repr && c.clients == clients && c.shards == shards)
        .map(|c| c.events_per_sec)
}

/// Headline ratio: the largest population's 8-shard fleet throughput over
/// its single-shard boxed baseline.
fn headline(cells: &[Cell], clients: usize) -> Option<f64> {
    let fleet = rate_of(cells, "fleet", clients, 8)?;
    let boxed = rate_of(cells, "boxed", clients, 1)?;
    Some(fleet as f64 / boxed as f64)
}

fn render_json(
    cells: &[Cell],
    sizes: &[usize],
    trials: usize,
    seed: u64,
    quick: bool,
    sim_secs: u64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ape-bench/shard/v1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"trials_per_cell\": {trials},");
    let _ = writeln!(out, "  \"sim_seconds\": {sim_secs},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"repr\": \"{}\", \"clients\": {}, \"shards\": {}, \"events\": {}, \
             \"wall_ms\": {:.2}, \"events_per_sec\": {}, \"fetches\": {}, \
             \"fetches_per_sec\": {}, \"barrier_wait_fraction\": {:.4}",
            c.repr,
            c.clients,
            c.shards,
            c.events,
            c.wall_ms,
            c.events_per_sec,
            c.fetches,
            c.fetches_per_sec,
            c.barrier_wait_fraction
        );
        out.push_str(if i + 1 < cells.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    let largest = *sizes.iter().max().expect("sweep is non-empty");
    let _ = writeln!(
        out,
        "  \"headline\": {{\"clients\": {}, \"fleet_8shard_events_per_sec\": {}, \
         \"boxed_baseline_events_per_sec\": {}, \"speedup\": {:.2}}},",
        largest,
        rate_of(cells, "fleet", largest, 8).unwrap_or(0),
        rate_of(cells, "boxed", largest, 1).unwrap_or(0),
        headline(cells, largest).unwrap_or(0.0)
    );
    out.push_str("  \"sizes\": [");
    for (i, s) in sizes.iter().enumerate() {
        let _ = write!(out, "{}{s}", if i > 0 { ", " } else { "" });
    }
    out.push_str("]\n}\n");
    out
}

/// Runs the sharded-world scale sweep, writes `BENCH_shard.json` at the
/// repo root, and returns a human-readable summary.
pub fn bench_shard(opts: &ReproOptions) -> String {
    let quick = opts.micro_trials < ReproOptions::default().micro_trials;
    let sizes: &[usize] = if quick { &SWEEP_QUICK } else { &SWEEP_FULL };
    let sim_secs = if quick { SIM_SECS_QUICK } else { SIM_SECS_FULL };
    let sim = SimDuration::from_secs(sim_secs);
    let base_trials = (opts.micro_trials / 33).clamp(1, 3);

    let mut cells = Vec::new();
    for &clients in sizes {
        // The largest population is run once: its span is long enough that
        // run-to-run wall-clock noise is far below the headline margin.
        let trials = if clients >= 1_000_000 { 1 } else { base_trials };
        let mut base_fp = None;
        for &shards in &SHARDS {
            let (cell, fp) = run_cell("fleet", clients, shards, trials, sim, || {
                build_fleet(clients, shards, opts.seed)
            });
            match &base_fp {
                None => base_fp = Some(fp),
                Some(base) => assert_eq!(
                    &fp, base,
                    "fleet fingerprint diverged at {shards} shards ({clients} clients)"
                ),
            }
            cells.push(cell);
        }
        let (cell, _) = run_cell("boxed", clients, 1, trials, sim, || {
            build_boxed(clients, opts.seed)
        });
        cells.push(cell);
    }

    let json = render_json(&cells, sizes, base_trials, opts.seed, quick, sim_secs);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(err) => format!("FAILED to write {}: {err}", path.display()),
    };

    let mut out = String::from(
        "Sharded-world scale sweep: SoA fleet vs boxed per-client baseline\n\
         (identical workload; fleet fingerprints asserted equal across shard counts)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>6} {:>11} {:>10} {:>13} {:>12} {:>9}",
        "repr", "clients", "shards", "events", "wall ms", "events/sec", "fetches/sec", "barrier"
    );
    for c in &cells {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>6} {:>11} {:>10.1} {:>13} {:>12} {:>8.1}%",
            c.repr,
            c.clients,
            c.shards,
            c.events,
            c.wall_ms,
            c.events_per_sec,
            c.fetches_per_sec,
            c.barrier_wait_fraction * 100.0,
        );
    }
    let largest = *sizes.iter().max().expect("sweep is non-empty");
    let _ = writeln!(
        out,
        "\nheadline: fleet@8shards vs boxed baseline at {largest} clients = {:.2}x events/sec",
        headline(&cells, largest).unwrap_or(0.0)
    );
    let _ = writeln!(out, "{note}");
    out
}
