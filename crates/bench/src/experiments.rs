//! Full-testbed experiments: the frequency/size/quantity sweeps behind
//! Fig. 11, Tables IV–VI, Figs. 12–14, plus the Fig. 2 feasibility replay.

use ape_appdag::DummyAppConfig;
use ape_proto::names;
use ape_simnet::SimDuration;
use ape_workload::{generate_trace, trace_stats, ScheduleConfig, TraceSpec};
use apecache::{
    paper_suite, replay_summary, replay_trace, ParallelRunner, RouterModel, RunJob, Summary,
    System, TestbedConfig,
};

/// Knobs shared by all repro experiments.
#[derive(Debug, Clone, Copy)]
pub struct ReproOptions {
    /// Simulated duration of each run, minutes (the paper runs one hour;
    /// 20 minutes reaches the same steady state far faster).
    pub minutes: u64,
    /// Replicated trials per sweep point (seeds `seed`, `seed + 1`, …);
    /// metrics are pooled in trial order before summarizing.
    pub trials: usize,
    /// Samples for the Table I / Fig. 11b micro-measurements.
    pub micro_trials: usize,
    /// Worker threads for the parallel runner; `0` = auto-detect.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            minutes: 20,
            trials: 1,
            micro_trials: 100,
            threads: 0,
            seed: 42,
        }
    }
}

impl ReproOptions {
    /// A faster configuration for smoke runs.
    pub fn quick() -> Self {
        ReproOptions {
            minutes: 6,
            trials: 1,
            micro_trials: 25,
            threads: 0,
            seed: 42,
        }
    }

    pub(crate) fn duration(&self) -> SimDuration {
        SimDuration::from_mins(self.minutes)
    }

    pub(crate) fn runner(&self) -> ParallelRunner {
        ParallelRunner::with_threads(self.threads)
    }

    /// The worker-pool size the runner will actually use (resolves `0`
    /// to the machine's available parallelism).
    pub fn resolved_threads(&self) -> usize {
        self.runner().threads()
    }
}

/// One sweep measurement (used by the figure/table builders and by the
/// integration tests that pin the qualitative shape).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sweep parameter rendered as text ("1–200 kb", "2.5", "15").
    pub param: String,
    /// Summaries per system, in [`System::ALL`] order (or a subset).
    pub summaries: Vec<(System, Summary)>,
}

pub(crate) fn base_config(
    system: System,
    opts: &ReproOptions,
    dummy: &DummyAppConfig,
    apps: usize,
) -> TestbedConfig {
    let mut suite = paper_suite(dummy, opts.seed);
    suite.truncate(apps.max(1));
    let mut config = TestbedConfig::new(system, suite);
    config.schedule = ScheduleConfig {
        apps,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: opts.duration(),
    };
    config.seed = opts.seed;
    config
}

fn point_config(
    system: System,
    opts: &ReproOptions,
    dummy: &DummyAppConfig,
    apps: usize,
    frequency: f64,
) -> TestbedConfig {
    let mut config = base_config(system, opts, dummy, apps);
    config.schedule.avg_per_minute = frequency;
    config
}

/// Expands one point configuration into `opts.trials` replica jobs with
/// consecutive seeds (mirroring the core runner's replication scheme).
pub(crate) fn replica_jobs(config: &TestbedConfig, opts: &ReproOptions) -> Vec<RunJob> {
    (0..opts.trials.max(1))
        .map(|trial| {
            let mut config = config.clone();
            config.seed = config.seed.wrapping_add(trial as u64);
            RunJob::new(config, opts.duration())
        })
        .collect()
}

/// Runs a batch of point configurations through the parallel runner —
/// `opts.trials` replicas each — and returns one pooled [`Summary`] per
/// configuration, in input order.
fn run_batch(opts: &ReproOptions, configs: &[TestbedConfig]) -> Vec<Summary> {
    let trials = opts.trials.max(1);
    let jobs: Vec<RunJob> = configs.iter().flat_map(|c| replica_jobs(c, opts)).collect();
    let mut results = opts.runner().run_many(&jobs).into_iter();
    configs
        .iter()
        .map(|_| {
            let mut merged = results.next().expect("one result per job");
            for _ in 1..trials {
                merged.merge(&results.next().expect("one result per job"));
            }
            merged.summary()
        })
        .collect()
}

/// Runs `systems` across `params`, producing one [`SweepRow`] per
/// parameter value. `configure` maps a parameter to (dummy config, app
/// count, frequency).
///
/// Every `(system × point × trial)` job goes through one
/// [`ParallelRunner::run_many`] call, so the whole sweep load-balances
/// across the thread pool while results stay in deterministic job order.
fn sweep<P: Copy>(
    opts: &ReproOptions,
    systems: &[System],
    params: &[(String, P)],
    configure: impl Fn(P) -> (DummyAppConfig, usize, f64),
) -> Vec<SweepRow> {
    let mut configs = Vec::with_capacity(params.len() * systems.len());
    for (_, p) in params {
        let (dummy, apps, freq) = configure(*p);
        for &system in systems {
            configs.push(point_config(system, opts, &dummy, apps, freq));
        }
    }
    let mut summaries = run_batch(opts, &configs).into_iter();
    params
        .iter()
        .map(|(label, _)| SweepRow {
            param: label.clone(),
            summaries: systems
                .iter()
                .map(|&system| (system, summaries.next().expect("one summary per point")))
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 11a/11c + §V-B object-level summary
// ---------------------------------------------------------------------

/// The frequency sweep shared by Fig. 11a and Fig. 11c.
pub fn frequency_sweep(opts: &ReproOptions, systems: &[System]) -> Vec<SweepRow> {
    let freqs = [1.0, 1.5, 2.0, 2.5, 3.0];
    let params: Vec<(String, f64)> = freqs.iter().map(|f| (format!("{f}"), *f)).collect();
    sweep(opts, systems, &params, |f| {
        (DummyAppConfig::default(), 30, f)
    })
}

const FIG11_SYSTEMS: [System; 3] = [System::ApeCache, System::WiCache, System::EdgeCache];

/// Fig. 11a: cache-lookup latency vs app usage frequency.
pub fn fig11a(opts: &ReproOptions) -> String {
    let rows = frequency_sweep(opts, &FIG11_SYSTEMS);
    render_sweep(
        "Fig. 11a: Cache Lookup Latency (ms) vs App Usage Frequency",
        "freq/min",
        &rows,
        |s| s.lookup_ms,
    )
}

/// Fig. 11c: cache-retrieval latency vs app usage frequency (hit-path for
/// AP-caching systems, edge path for the Edge Cache baseline — exactly what
/// the paper measures "during a hit").
pub fn fig11c(opts: &ReproOptions) -> String {
    let rows = frequency_sweep(opts, &FIG11_SYSTEMS);
    render_sweep(
        "Fig. 11c: Cache Retrieval Latency (ms) vs App Usage Frequency",
        "freq/min",
        &rows,
        retrieval_for,
    )
}

/// §V-B summary: overall single-object latency per system at defaults.
pub fn object_level(opts: &ReproOptions) -> String {
    let mut out =
        String::from("Object-level caching latency at default parameters (§V-B summary)\n\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>14} {:>12}\n",
        "System", "Lookup (ms)", "Retrieval (ms)", "Overall (ms)"
    ));
    let configs: Vec<TestbedConfig> = FIG11_SYSTEMS
        .iter()
        .map(|&system| point_config(system, opts, &DummyAppConfig::default(), 30, 3.0))
        .collect();
    let mut overall = Vec::new();
    for (&system, summary) in FIG11_SYSTEMS.iter().zip(run_batch(opts, &configs)) {
        let retrieval = retrieval_for(&summary);
        out.push_str(&format!(
            "{:<14} {:>12.2} {:>14.2} {:>12.2}\n",
            summary.system,
            summary.lookup_ms,
            retrieval,
            summary.lookup_ms + retrieval
        ));
        overall.push((system, summary.lookup_ms + retrieval));
    }
    let ape = overall[0].1;
    out.push_str(&format!(
        "\nAPE-CACHE reduction: {:.1}% vs Wi-Cache, {:.1}% vs Edge Cache\n\
         (paper: 51.7% and 74.5%)\n",
        100.0 * (1.0 - ape / overall[1].1),
        100.0 * (1.0 - ape / overall[2].1),
    ));
    out
}

fn retrieval_for(s: &Summary) -> f64 {
    if s.retrieval_hit_ms > 0.0 {
        s.retrieval_hit_ms
    } else {
        s.retrieval_edge_ms
    }
}

// ---------------------------------------------------------------------
// Tables IV–VI (hit ratios) and Fig. 13 (app-level latency sweeps)
// ---------------------------------------------------------------------

const HIT_SYSTEMS: [System; 2] = [System::ApeCache, System::ApeCacheLru];

fn size_params() -> Vec<(String, u64)> {
    [100, 200, 300, 400, 500]
        .iter()
        .map(|&kb| (format!("1~{kb} kb"), kb * 1_000))
        .collect()
}

/// The object-size sweep shared by Table IV and Fig. 13a.
pub fn size_sweep(opts: &ReproOptions, systems: &[System]) -> Vec<SweepRow> {
    sweep(opts, systems, &size_params(), |hi| {
        (
            DummyAppConfig::default().with_size_range(1_000, hi),
            30,
            3.0,
        )
    })
}

/// The app-quantity sweep shared by Table VI and Fig. 13c.
pub fn quantity_sweep(opts: &ReproOptions, systems: &[System]) -> Vec<SweepRow> {
    let params: Vec<(String, usize)> = [5usize, 10, 15, 20, 25, 30]
        .iter()
        .map(|&n| (format!("{n}"), n))
        .collect();
    sweep(opts, systems, &params, |n| {
        (DummyAppConfig::default(), n, 3.0)
    })
}

fn render_hit_table(title: &str, param_name: &str, rows: &[SweepRow]) -> String {
    let mut out = format!("{title}\n\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>18} {:>8}\n",
        param_name, "PACM-Avg", "PACM-High Priority", "LRU"
    ));
    for row in rows {
        let pacm = &row.summaries[0].1;
        let lru = &row.summaries[1].1;
        out.push_str(&format!(
            "{:<12} {:>10.3} {:>18.3} {:>8.3}\n",
            row.param, pacm.hit_ratio, pacm.high_priority_hit_ratio, lru.hit_ratio
        ));
    }
    out
}

/// Table IV: cache hit ratio vs data object size.
pub fn table4(opts: &ReproOptions) -> String {
    let rows = size_sweep(opts, &HIT_SYSTEMS);
    render_hit_table(
        "Table IV: Cache Hit Ratio vs Data Object Size",
        "size",
        &rows,
    )
}

/// Table V: cache hit ratio vs average app usage frequency.
pub fn table5(opts: &ReproOptions) -> String {
    let rows = frequency_sweep(opts, &HIT_SYSTEMS);
    render_hit_table(
        "Table V: Cache Hit Ratio vs Avg. App Usage Frequency",
        "freq/min",
        &rows,
    )
}

/// Table VI: cache hit ratio vs app quantity.
pub fn table6(opts: &ReproOptions) -> String {
    let rows = quantity_sweep(opts, &HIT_SYSTEMS);
    render_hit_table("Table VI: Cache Hit Ratio vs App Quantity", "apps", &rows)
}

fn render_sweep(
    title: &str,
    param_name: &str,
    rows: &[SweepRow],
    value: impl Fn(&Summary) -> f64,
) -> String {
    let mut out = format!("{title}\n\n");
    out.push_str(&format!("{param_name:<12}"));
    for (system, _) in &rows[0].summaries {
        out.push_str(&format!(" {:>14}", system.label()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<12}", row.param));
        for (_, summary) in &row.summaries {
            out.push_str(&format!(" {:>14.2}", value(summary)));
        }
        out.push('\n');
    }
    out
}

/// Fig. 13a: average app-level latency vs data object size (all systems).
pub fn fig13a(opts: &ReproOptions) -> String {
    let rows = size_sweep(opts, &System::ALL);
    render_sweep(
        "Fig. 13a: Avg App-Level Latency (ms) vs Data Object Size",
        "size",
        &rows,
        |s| s.app_latency_ms,
    )
}

/// Fig. 13b: average app-level latency vs app usage frequency.
pub fn fig13b(opts: &ReproOptions) -> String {
    let rows = frequency_sweep(opts, &System::ALL);
    render_sweep(
        "Fig. 13b: Avg App-Level Latency (ms) vs App Usage Frequency",
        "freq/min",
        &rows,
        |s| s.app_latency_ms,
    )
}

/// Fig. 13c: average app-level latency vs app quantity.
pub fn fig13c(opts: &ReproOptions) -> String {
    let rows = quantity_sweep(opts, &System::ALL);
    render_sweep(
        "Fig. 13c: Avg App-Level Latency (ms) vs App Quantity",
        "apps",
        &rows,
        |s| s.app_latency_ms,
    )
}

// ---------------------------------------------------------------------
// Fig. 12: real-app latency
// ---------------------------------------------------------------------

/// Fig. 12: average and tail (p95) latency of MovieTrailer and VirtualHome
/// under all four systems.
pub fn fig12(opts: &ReproOptions) -> String {
    let mut out = String::from("Fig. 12: Real-World Apps' Latency Performance (ms)\n\n");
    out.push_str(&format!(
        "{:<14} {:>16} {:>16} {:>16} {:>16}\n",
        "System", "MovieTrailer avg", "MovieTrailer p95", "VirtualHome avg", "VirtualHome p95"
    ));
    let configs: Vec<TestbedConfig> = System::ALL
        .iter()
        .map(|&system| point_config(system, opts, &DummyAppConfig::default(), 30, 3.0))
        .collect();
    for summary in run_batch(opts, &configs) {
        let movie = summary
            .per_app_latency_ms
            .get("MovieTrailer")
            .copied()
            .unwrap_or((0.0, 0.0));
        let home = summary
            .per_app_latency_ms
            .get("VirtualHome")
            .copied()
            .unwrap_or((0.0, 0.0));
        out.push_str(&format!(
            "{:<14} {:>16.1} {:>16.1} {:>16.1} {:>16.1}\n",
            summary.system, movie.0, movie.1, home.0, home.1
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Table II + Fig. 2: traffic traces and router headroom
// ---------------------------------------------------------------------

/// Table II: statistics of the (synthesized) public-WiFi traffic traces.
pub fn table2(opts: &ReproOptions) -> String {
    let mut out = String::from("Table II: Statistics of Public WiFi Traffic Datasets\n\n");
    out.push_str(&format!(
        "{:<22} {:>14} {:>16}\n",
        "", "Low Traffic", "High Traffic"
    ));
    let mut rng_low = ape_simnet::SimRng::seed_from(opts.seed);
    let mut rng_high = ape_simnet::SimRng::seed_from(opts.seed + 1);
    let low_spec = TraceSpec::low_rate();
    let high_spec = TraceSpec::high_rate();
    let low = trace_stats(&generate_trace(&low_spec, &mut rng_low));
    let high = trace_stats(&generate_trace(&high_spec, &mut rng_high));
    let rows: [(&str, String, String); 6] = [
        (
            "Size",
            format!("{:.1} MB", low.total_bytes as f64 / 1e6),
            format!("{:.0} MB", high.total_bytes as f64 / 1e6),
        ),
        ("Packets", low.packets.to_string(), high.packets.to_string()),
        ("Flows", low.flows.to_string(), high.flows.to_string()),
        (
            "Average packet size",
            format!("{:.0} bytes", low.avg_packet_size),
            format!("{:.0} bytes", high.avg_packet_size),
        ),
        (
            "Duration",
            format!("{:.1} minutes", low.duration.as_secs_f64() / 60.0),
            format!("{:.1} minutes", high.duration.as_secs_f64() / 60.0),
        ),
        (
            "Number of apps",
            low_spec.apps.to_string(),
            high_spec.apps.to_string(),
        ),
    ];
    for (name, l, h) in rows {
        out.push_str(&format!("{name:<22} {l:>14} {h:>16}\n"));
    }
    out
}

/// Fig. 2: router CPU/memory while replaying the two traces.
pub fn fig2(opts: &ReproOptions) -> String {
    let model = RouterModel::default();
    let mut out = String::from(
        "Fig. 2: CPU/Memory Usage of WiFi Router under Traffic Replay\n\
         (10-second samples; GL-MT1300-calibrated model)\n\n",
    );
    out.push_str(&format!(
        "{:>6} {:>10} {:>12} {:>11} {:>13}\n",
        "t (s)", "low CPU %", "low mem MB", "high CPU %", "high mem MB"
    ));
    let low = replay_trace(&TraceSpec::low_rate(), &model, opts.seed);
    let high = replay_trace(&TraceSpec::high_rate(), &model, opts.seed + 1);
    for i in (9..low.len()).step_by(30) {
        out.push_str(&format!(
            "{:>6.0} {:>10.1} {:>12.1} {:>11.1} {:>13.1}\n",
            low[i].at_secs,
            low[i].cpu * 100.0,
            low[i].mem_mb,
            high[i].cpu * 100.0,
            high[i].mem_mb
        ));
    }
    let (low_mean, low_max, low_mem) = replay_summary(&low);
    let (high_mean, high_max, high_mem) = replay_summary(&high);
    out.push_str(&format!(
        "\nlow:  mean CPU {:.1}%, max {:.1}%, final mem {:.1} MB\n\
         high: mean CPU {:.1}%, max {:.1}%, final mem {:.1} MB\n\
         (paper: high-rate CPU stays well below 50%, memory ~120 MB)\n",
        low_mean * 100.0,
        low_max * 100.0,
        low_mem,
        high_mean * 100.0,
        high_max * 100.0,
        high_mem
    ));
    out
}

// ---------------------------------------------------------------------
// Fig. 14: APE-CACHE overhead on the AP
// ---------------------------------------------------------------------

/// Fig. 14: AP CPU/memory with APE-CACHE-enabled apps vs regular apps.
///
/// The simulated AP charges CPU for the work APE-CACHE adds (DNS-Cache
/// handling, HTTP serving, PACM runs); baseline packet forwarding — which
/// both deployments perform identically — is estimated from each run's
/// carried bytes with the Fig. 2 router model and added to both columns.
pub fn fig14(opts: &ReproOptions) -> String {
    let model = RouterModel::default();
    let mut out = String::from("Fig. 14: CPU/Memory Usage on the WiFi AP\n\n");
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>12} {:>12}\n",
        "Deployment", "CPU avg %", "CPU max %", "mem avg MB", "mem max MB"
    ));
    let mut ape_extra_cpu = 0.0;
    let mut ape_extra_mem = 0.0;
    let deployments = [
        ("APE-CACHE-enabled", System::ApeCache),
        ("regular (edge only)", System::EdgeCache),
    ];
    let configs: Vec<TestbedConfig> = deployments
        .iter()
        .map(|&(_, system)| base_config(system, opts, &DummyAppConfig::default(), 30))
        .collect();
    let trials = opts.trials.max(1);
    let jobs: Vec<RunJob> = configs.iter().flat_map(|c| replica_jobs(c, opts)).collect();
    let mut results = opts.runner().run_many(&jobs).into_iter();
    for &(label, system) in &deployments {
        let mut result = results.next().expect("one result per job");
        for _ in 1..trials {
            result.merge(&results.next().expect("one result per job"));
        }
        let summary = result.summary();
        // Forwarding estimate shared by both deployments. Counters are
        // pooled over all trials, so normalize by the pooled duration.
        let bytes = result.metrics.counter(names::NET_BYTES) as f64;
        let msgs = result.metrics.counter(names::NET_MESSAGES) as f64;
        let secs = opts.duration().as_secs_f64() * trials as f64;
        let fwd = (bytes * model.per_byte_cpu_ns / 1e9 + msgs * model.per_packet_cpu.as_secs_f64())
            / (secs * model.cores as f64);
        let mem_series = result.metrics.time_series(names::AP_APE_MEM_MB).cloned();
        let (mem_avg, mem_max) = match (system, mem_series) {
            (System::ApeCache, Some(s)) => (s.time_weighted_mean(), s.max()),
            // The regular AP runs no APE components.
            _ => (0.0, 0.0),
        };
        let cpu_avg = summary.ap_cpu_mean + fwd;
        let cpu_max = summary.ap_cpu_max + fwd;
        if system == System::ApeCache {
            ape_extra_cpu = summary.ap_cpu_max;
            ape_extra_mem = mem_max;
        }
        out.push_str(&format!(
            "{:<22} {:>10.1} {:>10.1} {:>12.1} {:>12.1}\n",
            label,
            cpu_avg * 100.0,
            cpu_max * 100.0,
            62.0 + mem_avg,
            62.0 + mem_max
        ));
    }
    out.push_str(&format!(
        "\nAPE-CACHE overhead: +{:.1}% peak CPU, +{:.1} MB memory\n\
         (paper: at most +6% CPU and +13 MB)\n",
        ape_extra_cpu * 100.0,
        ape_extra_mem
    ));
    out
}

// ---------------------------------------------------------------------
// Design ablations (DESIGN.md §5)
// ---------------------------------------------------------------------

/// Ablations: PACM fairness repair and the DNS short-circuit/batching
/// accommodations, each toggled independently at default parameters.
pub fn ablations(opts: &ReproOptions) -> String {
    let mut out = String::from("Design ablations at default parameters\n\n");
    out.push_str(&format!(
        "{:<34} {:>10} {:>10} {:>12} {:>12}\n",
        "Variant", "hit", "high hit", "lookup ms", "app ms"
    ));
    type Variant<'a> = (&'a str, &'a dyn Fn(&mut TestbedConfig));
    let variants: [Variant<'_>; 6] = [
        ("APE-CACHE (all accommodations)", &|_| {}),
        ("  - fairness repair off", &|c| {
            c.ap.policy = ape_nodes::ApPolicy::PacmNoFairness;
        }),
        ("  - short-circuit off", &|c| {
            c.ap.short_circuit = false;
        }),
        ("  - per-domain batching off", &|c| {
            c.ap.batch_domain_flags = false;
        }),
        ("  - LRU instead of PACM", &|c| {
            c.ap.policy = ape_nodes::ApPolicy::Lru;
        }),
        ("  + dependency prefetching (ext.)", &|c| {
            c.prefetch_hints = true;
        }),
    ];
    let configs: Vec<TestbedConfig> = variants
        .iter()
        .map(|(_, mutate)| {
            let mut config = base_config(System::ApeCache, opts, &DummyAppConfig::default(), 30);
            mutate(&mut config);
            config
        })
        .collect();
    for ((label, _), s) in variants.iter().zip(run_batch(opts, &configs)) {
        out.push_str(&format!(
            "{:<34} {:>10.3} {:>10.3} {:>12.2} {:>12.2}\n",
            label, s.hit_ratio, s.high_priority_hit_ratio, s.lookup_ms, s.app_latency_ms
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Parallel-runner wall-clock speedup
// ---------------------------------------------------------------------

/// Times the Fig. 11 frequency sweep sequentially (`--threads 1`) and on
/// the configured pool, reports the wall-clock speedup, and verifies the
/// two passes produced bitwise-identical summaries.
pub fn speedup(opts: &ReproOptions) -> String {
    use std::time::Instant;

    let mut sequential_opts = *opts;
    sequential_opts.threads = 1;
    let threads = opts.runner().threads();

    let t0 = Instant::now();
    let sequential = frequency_sweep(&sequential_opts, &FIG11_SYSTEMS);
    let sequential_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = frequency_sweep(opts, &FIG11_SYSTEMS);
    let parallel_secs = t1.elapsed().as_secs_f64();

    let identical = sequential.len() == parallel.len()
        && sequential.iter().zip(&parallel).all(|(a, b)| {
            a.param == b.param
                && a.summaries.iter().zip(&b.summaries).all(|(x, y)| {
                    x.0 == y.0
                        && x.1.app_latency_ms.to_bits() == y.1.app_latency_ms.to_bits()
                        && x.1.lookup_ms.to_bits() == y.1.lookup_ms.to_bits()
                        && x.1.hit_ratio.to_bits() == y.1.hit_ratio.to_bits()
                })
        });

    format!(
        "Parallel experiment runner: wall-clock speedup on the Fig. 11 sweep\n\n\
         sequential (1 thread):  {sequential_secs:>7.2} s\n\
         parallel   ({threads} threads): {parallel_secs:>7.2} s\n\
         speedup: {:.2}x, results bitwise identical: {}\n",
        sequential_secs / parallel_secs.max(1e-9),
        if identical { "yes" } else { "NO (bug!)" },
    )
}
