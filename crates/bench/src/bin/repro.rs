//! `repro` — regenerate the APE-CACHE paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--minutes N] [--trials N] [--micro-trials N]
//!       [--threads N] [--seed N] [--trace-out DIR] <artifact>...
//!
//! artifacts:
//!   table1 table2 table4 table5 table6 table7
//!   fig2 fig11a fig11b fig11c fig12 fig13a fig13b fig13c fig14
//!   object-level ablations speedup trace profile
//!   bench-evict bench-simworld bench-metrics bench-shard bench-scale
//!   faults all
//! ```
//!
//! `--trials N` replicates every sweep point over N seeds (pooled before
//! summarizing); `--threads N` sizes the parallel runner's worker pool
//! (0 = auto). Results are bitwise identical for any `--threads` value.
//!
//! The `trace` artifact runs all four systems with span tracing enabled
//! and prints per-request latency attribution plus critical-path reports;
//! with `--trace-out DIR` it also writes `trace.jsonl` (one span event per
//! line), `metrics.prom` (Prometheus text format), and
//! `critical-paths.txt` to that directory.
//!
//! `bench-evict` is the eviction-cost microbench (writes `BENCH_evict.json`
//! at the repo root), `bench-simworld` the event-queue throughput sweep
//! (writes `BENCH_simworld.json`), `bench-metrics` the metric-registry
//! sketch-vs-exact sweep (writes `BENCH_metrics.json`), `bench-shard`
//! the sharded-world scale sweep — SoA client fleets over {1,2,4,8} shards
//! vs the boxed per-client baseline (writes `BENCH_shard.json`) — and
//! `bench-scale` the city-scale multi-AP topology sweep: hit ratio and
//! p99 latency vs AP count × roam rate × cooperation mode, every cell
//! fingerprint-asserted invariant across shard counts, worker threads and
//! tie-perturbation keys (writes `BENCH_scale.json`). `profile` runs the
//! testbed with the sim-loop self-profiler on and prints per-subsystem
//! host-time attribution. All six time wall-clock and are therefore *not*
//! part of `all`, whose output is bitwise deterministic.
//!
//! `faults` is the lossy-WiFi resilience sweep (loss rate × caching
//! strategy plus a composed fault-plan replay). Loss makes its RNG draws
//! diverge from the lossless baseline, so like `bench-evict` it is *not*
//! part of `all`.

use std::path::PathBuf;
use std::time::Instant;

use ape_bench::{
    ablations, bench_evict, bench_metrics, bench_scale, bench_shard, bench_simworld, faults,
    fig11a, fig11b, fig11c, fig12, fig13a, fig13b, fig13c, fig14, fig2, object_level, profile,
    speedup, table1, table2, table4, table5, table6, table7, trace_artifacts, ReproOptions,
    TraceArtifacts,
};

fn write_trace_files(dir: &std::path::Path, artifacts: &TraceArtifacts) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("trace.jsonl"), &artifacts.jsonl)?;
    std::fs::write(dir.join("metrics.prom"), &artifacts.prometheus)?;
    std::fs::write(dir.join("critical-paths.txt"), &artifacts.report)?;
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--minutes N] [--trials N] [--micro-trials N]\n\
         \u{20}            [--threads N] [--seed N] [--trace-out DIR] <artifact>...\n\
         artifacts: table1 table2 table4 table5 table6 table7 fig2 fig11a fig11b\n\
         \u{20}          fig11c fig12 fig13a fig13b fig13c fig14 object-level\n\
         \u{20}          ablations speedup trace profile bench-evict\n\
         \u{20}          bench-simworld bench-metrics bench-shard bench-scale\n\
         \u{20}          faults all"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = ReproOptions::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts = ReproOptions::quick(),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--minutes" => {
                opts.minutes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--micro-trials" => {
                opts.micro_trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => artifacts.push(other.to_owned()),
        }
    }
    if artifacts.is_empty() {
        usage();
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "table1",
            "table2",
            "fig2",
            "object-level",
            "fig11a",
            "fig11b",
            "fig11c",
            "table4",
            "table5",
            "table6",
            "fig12",
            "fig13a",
            "fig13b",
            "fig13c",
            "fig14",
            "table7",
            "ablations",
            "speedup",
            "trace",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let started = Instant::now();
    for artifact in &artifacts {
        let output = match artifact.as_str() {
            "table1" => table1(&opts),
            "table2" => table2(&opts),
            "table4" => table4(&opts),
            "table5" => table5(&opts),
            "table6" => table6(&opts),
            "table7" => table7(),
            "fig2" => fig2(&opts),
            "fig11a" => fig11a(&opts),
            "fig11b" => fig11b(&opts),
            "fig11c" => fig11c(&opts),
            "fig12" => fig12(&opts),
            "fig13a" => fig13a(&opts),
            "fig13b" => fig13b(&opts),
            "fig13c" => fig13c(&opts),
            "fig14" => fig14(&opts),
            "object-level" => object_level(&opts),
            "ablations" => ablations(&opts),
            "speedup" => speedup(&opts),
            "bench-evict" => bench_evict(&opts),
            "bench-simworld" => bench_simworld(&opts),
            "bench-shard" => bench_shard(&opts),
            "bench-scale" => bench_scale(&opts),
            "bench-metrics" => bench_metrics(&opts),
            "profile" => profile(&opts),
            "faults" => faults(&opts),
            "trace" => {
                let artifacts = trace_artifacts(&opts);
                if let Some(dir) = &trace_out {
                    if let Err(err) = write_trace_files(dir, &artifacts) {
                        eprintln!(
                            "failed to write trace artifacts to {}: {err}",
                            dir.display()
                        );
                        std::process::exit(1);
                    }
                }
                artifacts.report
            }
            other => {
                eprintln!("unknown artifact: {other}");
                usage();
            }
        };
        println!("{output}");
        println!("{}", "=".repeat(72));
    }
    println!(
        "total wall-clock: {:.2} s ({} artifacts, {} runner threads, {} trial(s)/point)",
        started.elapsed().as_secs_f64(),
        artifacts.len(),
        opts.resolved_threads(),
        opts.trials.max(1),
    );
}
