//! `repro` — regenerate the APE-CACHE paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--minutes N] [--trials N] [--micro-trials N]
//!       [--threads N] [--seed N] <artifact>...
//!
//! artifacts:
//!   table1 table2 table4 table5 table6 table7
//!   fig2 fig11a fig11b fig11c fig12 fig13a fig13b fig13c fig14
//!   object-level ablations speedup all
//! ```
//!
//! `--trials N` replicates every sweep point over N seeds (pooled before
//! summarizing); `--threads N` sizes the parallel runner's worker pool
//! (0 = auto). Results are bitwise identical for any `--threads` value.

use std::time::Instant;

use ape_bench::{
    ablations, fig11a, fig11b, fig11c, fig12, fig13a, fig13b, fig13c, fig14, fig2, object_level,
    speedup, table1, table2, table4, table5, table6, table7, ReproOptions,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--minutes N] [--trials N] [--micro-trials N]\n\
         \u{20}            [--threads N] [--seed N] <artifact>...\n\
         artifacts: table1 table2 table4 table5 table6 table7 fig2 fig11a fig11b\n\
         \u{20}          fig11c fig12 fig13a fig13b fig13c fig14 object-level\n\
         \u{20}          ablations speedup all"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = ReproOptions::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts = ReproOptions::quick(),
            "--minutes" => {
                opts.minutes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trials" => {
                opts.trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--micro-trials" => {
                opts.micro_trials = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => artifacts.push(other.to_owned()),
        }
    }
    if artifacts.is_empty() {
        usage();
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "table1",
            "table2",
            "fig2",
            "object-level",
            "fig11a",
            "fig11b",
            "fig11c",
            "table4",
            "table5",
            "table6",
            "fig12",
            "fig13a",
            "fig13b",
            "fig13c",
            "fig14",
            "table7",
            "ablations",
            "speedup",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let started = Instant::now();
    for artifact in &artifacts {
        let output = match artifact.as_str() {
            "table1" => table1(&opts),
            "table2" => table2(&opts),
            "table4" => table4(&opts),
            "table5" => table5(&opts),
            "table6" => table6(&opts),
            "table7" => table7(),
            "fig2" => fig2(&opts),
            "fig11a" => fig11a(&opts),
            "fig11b" => fig11b(&opts),
            "fig11c" => fig11c(&opts),
            "fig12" => fig12(&opts),
            "fig13a" => fig13a(&opts),
            "fig13b" => fig13b(&opts),
            "fig13c" => fig13c(&opts),
            "fig14" => fig14(&opts),
            "object-level" => object_level(&opts),
            "ablations" => ablations(&opts),
            "speedup" => speedup(&opts),
            other => {
                eprintln!("unknown artifact: {other}");
                usage();
            }
        };
        println!("{output}");
        println!("{}", "=".repeat(72));
    }
    println!(
        "total wall-clock: {:.2} s ({} artifacts, {} runner threads, {} trial(s)/point)",
        started.elapsed().as_secs_f64(),
        artifacts.len(),
        opts.resolved_threads(),
        opts.trials.max(1),
    );
}
