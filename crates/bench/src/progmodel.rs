//! Table VII: programming-effort comparison between APE-CACHE's
//! declarative model and an API-based alternative (§V-F).
//!
//! Both models are implemented here as real, compiling client code:
//!
//! * [`declarative`] mirrors the paper's `@Cacheable` annotations — the
//!   app's fetch logic is untouched and caching is configured by
//!   *declaring* priority/TTL on each object (the lines tagged
//!   `// @cacheable`);
//! * [`api_based`] mirrors the alternative
//!   `invokeHttpRequestAsync(url, priority, ttl)` model — every fetch call
//!   site is rewritten to route through the cache API (the lines tagged
//!   `// @rewritten`).
//!
//! [`table7`] counts the tagged lines in this very source file, so the
//! reported "Impacted LoCs" are measured from shipped code rather than
//! asserted.

use ape_appdag::{AppDag, AppSpec, ObjectSpec};
use ape_cachealg::{AppId, Priority};
use ape_httpsim::Url;
use ape_simnet::SimDuration;

/// The declarative (annotation-style) programming model.
pub mod declarative {
    use super::*;

    fn object(url: &str, size: u64, priority: Priority, ttl_min: u64, lat_ms: u64) -> ObjectSpec {
        ObjectSpec {
            name: url.rsplit('/').next().expect("non-empty url").to_owned(),
            url: Url::parse(url).expect("static url"),
            size,
            ttl: SimDuration::from_mins(ttl_min),
            remote_latency: SimDuration::from_millis(lat_ms),
            priority,
        }
    }

    /// MovieTrailer with caching enabled declaratively: the app logic
    /// (DAG wiring, fetch flow) is identical to the uncached app; only the
    /// five `@Cacheable`-equivalent attribute lines are added.
    pub fn movie_trailer(id: AppId) -> AppSpec {
        let d = "api.movietrailer.example";
        let mut b = AppDag::builder();
        // Original app logic: declare objects and their dependencies.
        let movie_id = b.object(object(
            &format!("http://{d}/movieID"),
            256,
            Priority::HIGH, // @cacheable id="movieID" priority=2 ttl=60
            60,
            25,
        ));
        let rating = b.object(object(
            &format!("http://{d}/rating"),
            2_048,
            Priority::LOW, // @cacheable id="rating" priority=1 ttl=30
            30,
            25,
        ));
        let plot = b.object(object(
            &format!("http://{d}/plot"),
            6_144,
            Priority::LOW, // @cacheable id="plot" priority=1 ttl=30
            30,
            25,
        ));
        let cast = b.object(object(
            &format!("http://{d}/cast"),
            4_096,
            Priority::LOW, // @cacheable id="cast" priority=1 ttl=30
            30,
            25,
        ));
        let thumbnail = b.object(object(
            &format!("http://{d}/thumbnail"),
            92_160,
            Priority::HIGH, // @cacheable id="thumbnail" priority=2 ttl=60
            60,
            35,
        ));
        for o in [rating, plot, cast, thumbnail] {
            b.dep(movie_id, o);
        }
        AppSpec::new(id, "MovieTrailer", b.build().expect("static DAG")).with_variants(10)
    }

    /// VirtualHome declaratively: two annotation lines.
    pub fn virtual_home(id: AppId) -> AppSpec {
        let d = "api.virtualhome.example";
        let mut b = AppDag::builder();
        let ids = b.object(object(
            &format!("http://{d}/ARObjectsID"),
            512,
            Priority::LOW, // @cacheable id="ARObjectsID" priority=1 ttl=60
            60,
            22,
        ));
        let objects = b.object(object(
            &format!("http://{d}/ARObjects"),
            204_800,
            Priority::HIGH, // @cacheable id="ARObjects" priority=2 ttl=60
            60,
            45,
        ));
        b.dep(ids, objects);
        AppSpec::new(id, "VirtualHome", b.build().expect("static DAG")).with_variants(10)
    }
}

/// The API-based alternative: explicit cache calls replace the app's own
/// request logic.
pub mod api_based {
    use super::*;

    /// A stand-in for the paper's
    /// `String invokeHttpRequestAsync(String url, int priority, int TTL)`:
    /// every call site must switch to this entry point and thread priority
    /// and TTL through the app logic.
    pub fn invoke_http_request_async(
        url: &str,
        priority: Priority,
        ttl_minutes: u64,
        size: u64,
        lat_ms: u64,
    ) -> ObjectSpec {
        ObjectSpec {
            name: url.rsplit('/').next().expect("non-empty url").to_owned(),
            url: Url::parse(url).expect("caller-checked url"),
            size,
            ttl: SimDuration::from_mins(ttl_minutes),
            remote_latency: SimDuration::from_millis(lat_ms),
            priority,
        }
    }

    /// MovieTrailer with every HTTP request rewritten onto the cache API.
    /// Each fetch site changes (request construction, async plumbing, and
    /// the error path), which is exactly the rewrite burden Table VII
    /// quantifies.
    pub fn movie_trailer(id: AppId) -> AppSpec {
        let d = "api.movietrailer.example";
        let mut b = AppDag::builder();
        let url = format!("http://{d}/movieID"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::HIGH, 60, 256, 25); // @rewritten async cache call
        let movie_id = b.object(req); // @rewritten rewire response handling
        let url = format!("http://{d}/rating"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::LOW, 30, 2_048, 25); // @rewritten async cache call
        let rating = b.object(req); // @rewritten rewire response handling
        let url = format!("http://{d}/plot"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::LOW, 30, 6_144, 25); // @rewritten async cache call
        let plot = b.object(req); // @rewritten rewire response handling
        let url = format!("http://{d}/cast"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::LOW, 30, 4_096, 25); // @rewritten async cache call
        let cast = b.object(req); // @rewritten rewire response handling
        let url = format!("http://{d}/thumbnail"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::HIGH, 60, 92_160, 35); // @rewritten async cache call
        let thumbnail = b.object(req); // @rewritten rewire response handling
        for o in [rating, plot, cast, thumbnail] {
            b.dep(movie_id, o); // @rewritten re-chain async callbacks (x4 call sites)
        }
        let dag = b.build().expect("static DAG"); // @rewritten surface cache errors to UI
        AppSpec::new(id, "MovieTrailer", dag).with_variants(10)
    }

    /// VirtualHome with both requests rewritten.
    pub fn virtual_home(id: AppId) -> AppSpec {
        let d = "api.virtualhome.example";
        let mut b = AppDag::builder();
        let url = format!("http://{d}/ARObjectsID"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::LOW, 60, 512, 22); // @rewritten async cache call
        let ids = b.object(req); // @rewritten rewire response handling
        let url = format!("http://{d}/ARObjects"); // @rewritten build request url
        let req = invoke_http_request_async(&url, Priority::HIGH, 60, 204_800, 45); // @rewritten async cache call
        let objects = b.object(req); // @rewritten rewire response handling
        b.dep(ids, objects); // @rewritten re-chain async callback
        AppSpec::new(id, "VirtualHome", b.build().expect("static DAG")).with_variants(10)
    }
}

/// Extra binary size of the client runtime, as reported by the paper for
/// both models (the enhanced OkHttp + c-ares modules). Our equivalent —
/// the compiled `ClientNode` + DNS-Cache codec object code — is of the same
/// order; we report the paper's constant for comparability.
pub const EXTRA_BINARY_KB: u64 = 32;

/// Renders Table VII from the tagged source above.
pub fn table7() -> String {
    let source = include_str!("progmodel.rs");
    // Declarative annotations count once per `@cacheable`; API-based
    // rewrites once per `@rewritten`, with the fan-out line counting per
    // rewired call site (the `x4` note).
    let declarative_src = source
        .split("pub mod api_based")
        .next()
        .expect("module order");
    let api_src = source
        .split("pub mod api_based")
        .nth(1)
        .expect("module order");
    let decl_movie = section(declarative_src, "movie_trailer")
        .matches("@cacheable")
        .count();
    let decl_home = section(declarative_src, "virtual_home")
        .matches("@cacheable")
        .count();
    let api_movie = section(api_src, "movie_trailer")
        .matches("@rewritten")
        .count()
        + 3; // x4 note
    let api_home = section(api_src, "virtual_home")
        .matches("@rewritten")
        .count();

    let mut out = String::from("Table VII: Programming Efforts Comparison\n\n");
    out.push_str(&format!(
        "{:<14} {:<12} {:>13} {:>18} {:>14}\n",
        "App", "Approach", "Impacted LoCs", "Extra Binary Size", "Re-write Logic"
    ));
    for (app, approach, locs, rewrite) in [
        ("MovieTrailer", "APE-CACHE", decl_movie, "No"),
        ("MovieTrailer", "API-based", api_movie, "Yes"),
        ("VirtualHome", "APE-CACHE", decl_home, "No"),
        ("VirtualHome", "API-based", api_home, "Yes"),
    ] {
        out.push_str(&format!(
            "{:<14} {:<12} {:>13} {:>17}kb {:>14}\n",
            app, approach, locs, EXTRA_BINARY_KB, rewrite
        ));
    }
    out.push_str(
        "\nImpacted LoCs are counted from the tagged lines of the two shipped\n\
         programming-model implementations in crates/bench/src/progmodel.rs.\n",
    );
    out
}

/// The body of the named function within `src`.
fn section<'a>(src: &'a str, fn_name: &str) -> &'a str {
    let start = src
        .find(&format!("pub fn {fn_name}"))
        .expect("function present");
    let rest = &src[start..];
    let end = rest.find("\n    }\n").map(|i| i + 6).unwrap_or(rest.len());
    &rest[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_produce_equivalent_apps() {
        let decl = declarative::movie_trailer(AppId::new(0));
        let api = api_based::movie_trailer(AppId::new(0));
        assert_eq!(decl.dag().len(), api.dag().len());
        for (idx, obj) in decl.dag().iter() {
            let other = api.dag().object(idx);
            assert_eq!(obj.url, other.url);
            assert_eq!(obj.priority, other.priority);
            assert_eq!(obj.ttl, other.ttl);
        }
        let decl_home = declarative::virtual_home(AppId::new(1));
        let api_home = api_based::virtual_home(AppId::new(1));
        assert_eq!(decl_home.dag().len(), api_home.dag().len());
    }

    #[test]
    fn declarative_matches_library_apps() {
        // The declarative model must agree with the canonical app models.
        let here = declarative::movie_trailer(AppId::new(0));
        let lib = ape_appdag::movie_trailer(AppId::new(0));
        assert_eq!(here.dag(), lib.dag());
        let here = declarative::virtual_home(AppId::new(1));
        let lib = ape_appdag::virtual_home(AppId::new(1));
        assert_eq!(here.dag(), lib.dag());
    }

    #[test]
    fn table7_shape_matches_paper() {
        let text = table7();
        assert!(text.contains("MovieTrailer"));
        assert!(text.contains("VirtualHome"));
        // Declarative impact is far smaller than the API rewrite.
        let decl_movie = section(
            include_str!("progmodel.rs")
                .split("pub mod api_based")
                .next()
                .unwrap(),
            "movie_trailer",
        )
        .matches("@cacheable")
        .count();
        let api_movie = section(
            include_str!("progmodel.rs")
                .split("pub mod api_based")
                .nth(1)
                .unwrap(),
            "movie_trailer",
        )
        .matches("@rewritten")
        .count();
        assert_eq!(decl_movie, 5, "paper: 5 annotation lines");
        assert!(
            api_movie >= 3 * decl_movie,
            "api {api_movie} vs decl {decl_movie}"
        );
    }
}
