//! A tiny criterion-compatible micro-benchmark harness.
//!
//! The build environment has no registry access, so the real `criterion`
//! crate cannot be fetched. This module keeps the `benches/` files
//! structurally unchanged: it implements the narrow API they use
//! (`Criterion::bench_function`, groups, `BenchmarkId`, `iter`,
//! `iter_with_setup`) over `std::time::Instant`, printing one
//! mean-per-iteration line per benchmark instead of criterion's full
//! statistical report.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark; batches grow until they fill it.
const TARGET: Duration = Duration::from_millis(200);

/// Hard cap on measured iterations, for very cheap bodies.
const MAX_ITERS: u64 = 1 << 22;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group; names are prefixed `group/…`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; this harness sizes batches by
    /// wall-clock target instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a named benchmark with a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; reports are printed as benchmarks run).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function/parameter pair, rendered `function/parameter`.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Measures closures; reports the mean wall-clock time per iteration.
#[derive(Debug, Default)]
pub struct Bencher {
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly, growing the batch until it fills the
    /// measurement target.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= MAX_ITERS {
                self.mean = Some(elapsed / iters.max(1) as u32);
                self.iters = iters;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Measures `run` on fresh `setup` output each iteration; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> O,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < TARGET && iters < 1_000 {
            let input = setup();
            let start = Instant::now();
            black_box(run(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean = Some(total / iters.max(1) as u32);
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        match self.mean {
            Some(mean) => println!(
                "bench {name:<40} {:>12} /iter  ({} iters)",
                format_duration(mean),
                self.iters
            ),
            None => println!("bench {name:<40} (no measurement)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions under a group name, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_cheap_closures() {
        let mut b = Bencher::default();
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(b.mean.is_some());
        assert!(b.iters >= 1);
    }

    #[test]
    fn bencher_with_setup() {
        let mut b = Bencher::default();
        b.iter_with_setup(|| vec![1u8; 64], |v| v.len());
        assert!(b.mean.is_some());
    }

    #[test]
    fn ids_and_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("8x8").0, "8x8");
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
