//! Fig. 11b: the latency anatomy of the DNS-Cache design.
//!
//! Four query types measured against the same warm AP:
//!
//! 1. regular DNS query answered from the AP's dnsmasq cache (*hit*),
//! 2. regular DNS query needing upstream recursion (*miss*),
//! 3. a DNS-Cache query (piggybacked lookup) on the warm path,
//! 4. two standalone queries: a regular DNS query followed by a separate
//!    cache-status query.
//!
//! The paper reports (3) − (1) ≈ 0.02 ms and (4) − (3) ≈ 7 ms.

use ape_appdag::DummyAppConfig;
use ape_cachealg::{AppId, Priority};
use ape_dnswire::{DnsMessage, DomainName};
use ape_httpsim::{HttpRequest, Url};
use ape_proto::{CacheOp, ConnId, Msg, RequestId};
use ape_simnet::{Context, LinkSpec, Node, NodeId, SimDuration, SimTime};
use apecache::{build, paper_suite, System, TestbedConfig};

use crate::experiments::ReproOptions;

/// Probe recording DNS response arrival times.
#[derive(Debug, Default)]
struct Probe {
    dns_at: Option<SimTime>,
    http_at: Option<SimTime>,
}

impl Node<Msg> for Probe {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Dns(m) if m.header.response => self.dns_at = Some(ctx.now()),
            Msg::HttpRsp { .. } => self.http_at = Some(ctx.now()),
            _ => {}
        }
    }
}

/// Measured means for the query types, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct LookupOverhead {
    /// Regular DNS query, AP cache hit.
    pub regular_hit_ms: f64,
    /// Regular DNS query, AP cache miss (upstream recursion).
    pub regular_miss_ms: f64,
    /// DNS-Cache query answered from dnsmasq (no short-circuit) — the
    /// like-for-like comparison behind the paper's +0.02 ms.
    pub dns_cache_ms: f64,
    /// DNS-Cache query short-circuited with the dummy IP (all requested
    /// URLs cached).
    pub dns_cache_short_circuit_ms: f64,
    /// Regular DNS query + standalone cache query.
    pub standalone_pair_ms: f64,
}

/// Runs the Fig. 11b micro-measurement.
pub fn measure(opts: &ReproOptions) -> LookupOverhead {
    // An APE-CACHE testbed plus one probe client wired to the AP.
    let config = TestbedConfig::new(
        System::ApeCache,
        paper_suite(&DummyAppConfig::default(), opts.seed),
    );
    let mut bed = build(&config);
    let probe = bed.world.add_node("probe", Probe::default());
    bed.world.connect(
        probe,
        bed.ap,
        LinkSpec::from_rtt(1, SimDuration::from_millis(3)),
    );

    let domain: DomainName = "app2.dummy.example".parse().expect("suite domain");
    let url = Url::parse("http://app2.dummy.example/obj0?v=0").expect("suite url");

    // Prime: resolve + delegate so the AP caches both the DNS entry and
    // the object.
    bed.world.post(
        probe,
        bed.ap,
        Msg::dns(DnsMessage::dns_cache_request(
            9999,
            domain.clone(),
            &[url.hash()],
        )),
    );
    bed.world.run_for(SimDuration::from_secs(1));
    bed.world
        .post(probe, bed.ap, Msg::TcpSyn { conn: ConnId(1) });
    bed.world.run_for(SimDuration::from_secs(1));
    bed.world.post(
        probe,
        bed.ap,
        Msg::HttpReq {
            conn: ConnId(1),
            req: RequestId(1),
            request: Box::new(HttpRequest::get(url.clone())),
            cache_op: Some(CacheOp {
                ttl: SimDuration::from_mins(30),
                priority: Priority::HIGH,
                app: AppId::new(2),
            }),
        },
    );
    bed.world.run_for(SimDuration::from_secs(1));

    // Interleave all query types so every sample sees identical AP
    // conditions: idle past the record TTL, one warming query, then the
    // measured query.
    let uncached = Url::parse("http://app2.dummy.example/obj0?v=77").expect("suite url");
    let mut totals = [0.0f64; 5];
    // One discarded warm-up pass (trial 0) settles post-priming state.
    for trial in 0..=opts.micro_trials as u16 {
        let queries: [DnsMessage; 5] = [
            // regular (hit)
            DnsMessage::query(trial, domain.clone()),
            // DNS-Cache, not short-circuitable (one unknown URL)
            DnsMessage::dns_cache_request(trial, domain.clone(), &[url.hash(), uncached.hash()]),
            // DNS-Cache, short-circuited (all requested URLs cached)
            DnsMessage::dns_cache_request(trial, domain.clone(), &[url.hash()]),
            // standalone pair, first half (regular)
            DnsMessage::query(trial, domain.clone()),
            // standalone pair, second half (cache status)
            DnsMessage::dns_cache_request(trial, domain.clone(), &[url.hash(), uncached.hash()]),
        ];
        for (slot, query) in queries.into_iter().enumerate() {
            let idle = bed.world.now() + SimDuration::from_secs(61);
            bed.world.run_until(idle);
            bed.world.post(
                probe,
                bed.ap,
                Msg::dns(DnsMessage::query(60_000 + trial, domain.clone())),
            );
            bed.world.run_for(SimDuration::from_secs(1));
            let start = bed.world.now();
            bed.world.post(probe, bed.ap, Msg::dns(query));
            bed.world.run_for(SimDuration::from_secs(2));
            let done = bed.world.node::<Probe>(probe).dns_at.expect("dns answered");
            if trial > 0 {
                totals[slot] += (done - start).as_millis_f64();
            }
        }
    }
    let mean = |slot: usize| totals[slot] / opts.micro_trials as f64;
    let regular_hit_ms = mean(0);
    let dns_cache_ms = mean(1);
    let dns_cache_short_circuit_ms = mean(2);
    let standalone_pair_ms = mean(3) + mean(4);

    // Misses: fresh subdomains force upstream recursion each trial.
    let mut total = 0.0;
    for trial in 0..opts.micro_trials {
        let fresh: DomainName = format!("m{trial}.app2.dummy.example")
            .parse()
            .expect("fresh subdomain");
        let start = bed.world.now();
        bed.world.post(
            probe,
            bed.ap,
            Msg::dns(DnsMessage::query(30_000 + trial as u16, fresh)),
        );
        bed.world.run_for(SimDuration::from_secs(2));
        let done = bed.world.node::<Probe>(probe).dns_at.expect("answered");
        total += (done - start).as_millis_f64();
    }
    let regular_miss_ms = total / opts.micro_trials as f64;

    LookupOverhead {
        regular_hit_ms,
        regular_miss_ms,
        dns_cache_ms,
        dns_cache_short_circuit_ms,
        standalone_pair_ms,
    }
}

/// Fig. 11b rendered as text.
pub fn fig11b(opts: &ReproOptions) -> String {
    let m = measure(opts);
    format!(
        "Fig. 11b: Lookup Latency Overhead of DNS-Cache Queries\n\n\
         {:<44} {:>10}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\
         {:<44} {:>10.3}\n\n\
         DNS-Cache overhead vs regular DNS (hit): {:+.3} ms (paper: +0.02 ms)\n\
         standalone pair vs piggybacked:          {:+.3} ms (paper: +7.02 ms)\n",
        "query type",
        "mean (ms)",
        "regular DNS query (AP cache hit)",
        m.regular_hit_ms,
        "regular DNS query (miss, recursive)",
        m.regular_miss_ms,
        "DNS-Cache query (piggybacked)",
        m.dns_cache_ms,
        "DNS-Cache query (short-circuited)",
        m.dns_cache_short_circuit_ms,
        "two standalone queries (DNS + cache)",
        m.standalone_pair_ms,
        m.dns_cache_ms - m.regular_hit_ms,
        m.standalone_pair_ms - m.dns_cache_ms,
    )
}
