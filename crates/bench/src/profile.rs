//! `repro profile` — where the host CPU goes when the simulator runs.
//!
//! Runs the standard sweep workload for all four systems with the sim-loop
//! self-profiler on ([`World::enable_profiler`]
//! (ape_simnet::World::enable_profiler)) and renders each system's
//! host-time attribution table: queue pops, node dispatch, link/fault
//! resolution, trace recording, metric recording and cache eviction, with
//! the node callbacks' own logic computed by subtraction. This is the
//! ROADMAP item-2 instrument: before making the loop faster, see which
//! subsystem is actually paying for each simulated minute.
//!
//! A final section runs the default testbed through the sharded engine
//! (`DESIGN.md` §16) so the two coordination categories — `shard.barrier`
//! (idle wait at epoch barriers) and `mailbox.drain` (cross-shard
//! delivery) — carry real attribution, alongside the headline
//! barrier-wait fraction `repro bench-shard` tracks per cell.
//!
//! Simulation outputs are identical with the profiler on or off (the
//! `profiler_does_not_change_fingerprints` test in `ape-simnet` pins it);
//! only the wall-clock attribution varies run to run, like every number in
//! this crate's benches.

use std::fmt::Write as _;

use ape_appdag::DummyAppConfig;
use apecache::{run_system_sharded, System};

use crate::experiments::{base_config, replica_jobs, ReproOptions};

/// Number of apps in the profiled workload (matches the table sweeps).
const PROFILE_APPS: usize = 30;

/// Runs all four systems with the self-profiler enabled (`opts.trials`
/// replicas each, attribution merged across trials) and renders the
/// per-system host-time tables.
pub fn profile(opts: &ReproOptions) -> String {
    let mut jobs = Vec::new();
    for &system in System::ALL.iter() {
        let mut config = base_config(system, opts, &DummyAppConfig::default(), PROFILE_APPS);
        config.profiler = true;
        jobs.extend(replica_jobs(&config, opts));
    }

    let trials = opts.trials.max(1);
    let mut results = opts.runner().run_many(&jobs).into_iter();

    let mut out = String::from(
        "Sim-loop self-profile: host time by simulator subsystem\n\
         (wall-clock attribution only; simulation outputs are unchanged)\n",
    );
    for &system in System::ALL.iter() {
        let mut merged = results.next().expect("one result per job");
        for _ in 1..trials {
            merged.merge(&results.next().expect("one result per job"));
        }
        let report = &merged.profile;
        let events: u64 = report.calls(ape_simnet::ProfCategory::Dispatch);
        let _ = writeln!(
            out,
            "\n=== {} ({} dispatches, {:.1} ms host loop time) ===",
            system.label(),
            events,
            report.loop_nanos() as f64 / 1e6,
        );
        out.push_str(&report.to_string());
    }

    // Sharded-engine attribution: the same workload partitioned over four
    // shards, so the epoch-coordination categories (shard.barrier,
    // mailbox.drain) show their cost next to the dispatch subsystems.
    let mut config = base_config(
        System::ApeCache,
        opts,
        &DummyAppConfig::default(),
        PROFILE_APPS,
    );
    config.profiler = true;
    let sharded = run_system_sharded(&config, 4, opts.duration());
    let report = &sharded.profile;
    let _ = writeln!(
        out,
        "\n=== {}, sharded x4 ({} dispatches, {:.1} ms host loop time, \
         {:.1} ms coordination, barrier-wait {:.1}%) ===",
        System::ApeCache.label(),
        report.calls(ape_simnet::ProfCategory::Dispatch),
        report.loop_nanos() as f64 / 1e6,
        report.coordination_nanos() as f64 / 1e6,
        report.barrier_wait_fraction() * 100.0,
    );
    out.push_str(&report.to_string());
    out
}
