//! # ape-bench — regenerating every table and figure of the APE-CACHE paper
//!
//! Each public `table*`/`fig*` function reproduces one artifact of the
//! paper's evaluation (§V) and returns it as formatted text; the `repro`
//! binary dispatches on artifact names. The experiment index in
//! `DESIGN.md` maps each artifact to the modules it exercises.
//!
//! None of these functions assert paper-exact numbers — the substrate is a
//! simulator, not the authors' testbed — but the integration tests under
//! `tests/` pin the qualitative shape (who wins, by roughly what factor).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evict_bench;
mod experiments;
mod faults;
mod lookup_overhead;
mod metrics_bench;
pub mod microbench;
mod profile;
pub mod progmodel;
mod scale_bench;
mod shard_bench;
mod simworld_bench;
mod tracing;

pub use evict_bench::bench_evict;
pub use experiments::{
    ablations, fig11a, fig11c, fig12, fig13a, fig13b, fig13c, fig14, fig2, object_level, speedup,
    table2, table4, table5, table6, ReproOptions, SweepRow,
};
pub use faults::faults;
pub use lookup_overhead::fig11b;
pub use metrics_bench::bench_metrics;
pub use profile::profile;
pub use scale_bench::bench_scale;
pub use shard_bench::bench_shard;
pub use simworld_bench::bench_simworld;
pub use tracing::{trace_artifacts, traced_config, TraceArtifacts};

use apecache::measure_table1;

/// Regenerates Table I (Akamai-style CDN measurement from three vantage
/// points) by running DNS resolutions and TCP handshakes through the
/// calibrated mini-Internet.
pub fn table1(opts: &ReproOptions) -> String {
    let mut out = String::from(
        "Table I: Performance Measurement of CDN-style Edge Caching\n\
         (simulated mini-Internet calibrated to the paper's paths)\n\n",
    );
    out.push_str(&format!(
        "{:<20} {:<10} {:>14} {:>10} {:>6}\n",
        "Location", "Site", "DNS res. (ms)", "RTT (ms)", "Hops"
    ));
    for cell in measure_table1(opts.micro_trials, opts.seed) {
        out.push_str(&format!(
            "{:<20} {:<10} {:>14.1} {:>10.1} {:>6}\n",
            cell.region, cell.site, cell.dns_resolution_ms, cell.rtt_ms, cell.hops
        ));
    }
    out
}

/// Regenerates Table VII (programming-effort comparison) from the two
/// shipped programming-model implementations.
pub fn table7() -> String {
    progmodel::table7()
}
