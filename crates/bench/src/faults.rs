//! `repro faults`: resilience of the caching strategies on a lossy WiFi hop.
//!
//! Two sections:
//!
//! 1. a sweep of steady-state radio loss × caching strategy, reporting per
//!    point the completion rate, tail latency, the retry/give-up counters
//!    of the recovery machinery, and whether every pending-state map
//!    drained once traffic stopped;
//! 2. a replay of a scheduled [`FaultPlan`] — a client partition, an
//!    uplink loss burst, and a WAN delay spike composed over one run — to
//!    show composed disturbances also terminate fully drained.
//!
//! Excluded from `repro all`: with loss enabled the RNG draws diverge from
//! the lossless baseline, so this artifact would break the bitwise
//! reproducibility contract `all` is held to.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use ape_appdag::DummyAppConfig;
use ape_nodes::{ApNode, ClientNode, LdnsNode};
use ape_proto::names;
use ape_simnet::{FaultPlan, SimDuration, SimTime};
use apecache::{build, collect, System, Testbed};

use crate::experiments::{base_config, ReproOptions};

/// Extra simulated time after the schedule ends, so every retry chain
/// (client HTTP backoff up to 4+8+16 s, DNS give-ups, AP reapers) can run
/// to completion before the drain check.
const GRACE: SimDuration = SimDuration::from_secs(300);

/// Loss rates swept (fraction of packets dropped per WiFi traversal).
const LOSS_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

const SYSTEMS: [System; 3] = [System::ApeCache, System::WiCache, System::EdgeCache];

/// App-suite size for the sweep (smaller than the paper artifacts: this is
/// a resilience demonstration, not a latency reproduction).
const APPS: usize = 15;

struct FaultRow {
    loss: f64,
    system: System,
    scheduled: u64,
    done: u64,
    failed: u64,
    p99_ms: f64,
    retries: u64,
    give_ups: u64,
    dropped: u64,
    fault_dropped: u64,
    undrained: Vec<String>,
}

/// Pending-state entries that survived the drain grace period, labelled
/// `node:map=count`. Empty means every map drained.
fn undrained(bed: &mut Testbed) -> Vec<String> {
    let mut out = Vec::new();
    for &client in &bed.clients {
        let name = bed.world.node_name(client).to_owned();
        for (map, n) in bed.world.node::<ClientNode>(client).pending_counts() {
            if n > 0 {
                out.push(format!("{name}:{map}={n}"));
            }
        }
    }
    for (map, n) in bed.world.node::<ApNode>(bed.ap).pending_counts() {
        if n > 0 {
            out.push(format!("ap:{map}={n}"));
        }
    }
    let n = bed.world.node::<LdnsNode>(bed.ldns).pending_count();
    if n > 0 {
        out.push(format!("ldns:pending={n}"));
    }
    out
}

fn extract_row(loss: f64, system: System, bed: &mut Testbed) -> FaultRow {
    let scheduled = bed.schedule.len() as u64;
    let drain_leftovers = undrained(bed);
    let mut result = collect(system, bed);
    let summary = result.summary();
    let m = &result.metrics;
    FaultRow {
        loss,
        system,
        scheduled,
        done: summary.executions,
        failed: m.counter(names::CLIENT_FAILED_EXECUTIONS),
        p99_ms: summary.app_latency_p99_ms,
        retries: m.counter(names::CLIENT_DNS_RETRIES)
            + m.counter(names::CLIENT_HTTP_RETRIES)
            + m.counter(names::AP_DNS_UPSTREAM_RETRIES)
            + m.counter(names::AP_DELEGATION_RETRIES),
        give_ups: m.counter(names::CLIENT_DNS_GIVE_UPS)
            + m.counter(names::CLIENT_HTTP_GIVE_UPS)
            + m.counter(names::AP_DNS_UPSTREAM_GIVE_UPS)
            + m.counter(names::AP_DELEGATION_REAPS),
        dropped: m.counter(names::NET_DROPPED),
        fault_dropped: m.counter(names::NET_FAULT_DROPPED),
        undrained: drain_leftovers,
    }
}

fn run_sweep_point(opts: &ReproOptions, system: System, loss: f64) -> FaultRow {
    let mut config = base_config(system, opts, &DummyAppConfig::default(), APPS);
    config.wifi_loss = loss;
    let mut bed = build(&config);
    bed.world.run_for(opts.duration() + GRACE);
    extract_row(loss, system, &mut bed)
}

/// Runs `n` independent points across a thread pool, returning results in
/// index order (each point owns a fresh seeded world, so the output is
/// bitwise independent of the pool size — the same contract as
/// `ParallelRunner::run_many`).
fn parallel_points<T: Send>(n: usize, threads: usize, point: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = if threads == 0 {
        thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
    .min(n)
    .max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    local.push((idx, point(idx)));
                }
                local
            }));
        }
        for handle in handles {
            for (idx, row) in handle.join().expect("fault sweep worker panicked") {
                slots[idx] = Some(row);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every point produces a row"))
        .collect()
}

fn render_rows(out: &mut String, rows: &[FaultRow]) {
    out.push_str(&format!(
        "{:<7} {:<11} {:>6} {:>6} {:>7} {:>7} {:>9} {:>8} {:>9} {:>8} {:>10} {:>8}\n",
        "loss",
        "system",
        "sched",
        "done",
        "failed",
        "rate%",
        "p99 ms",
        "retries",
        "give-ups",
        "dropped",
        "fault-drop",
        "drained"
    ));
    for row in rows {
        let ok = row.done.saturating_sub(row.failed);
        let rate = 100.0 * ok as f64 / row.scheduled.max(1) as f64;
        out.push_str(&format!(
            "{:<7} {:<11} {:>6} {:>6} {:>7} {:>7.1} {:>9.1} {:>8} {:>9} {:>8} {:>10} {:>8}\n",
            format!("{:.0}%", row.loss * 100.0),
            row.system.label(),
            row.scheduled,
            row.done,
            row.failed,
            rate,
            row.p99_ms,
            row.retries,
            row.give_ups,
            row.dropped,
            row.fault_dropped,
            if row.undrained.is_empty() {
                "yes"
            } else {
                "NO"
            }
        ));
    }
    for row in rows {
        if !row.undrained.is_empty() {
            out.push_str(&format!(
                "  !! {} {:.0}% leftover pending state: {}\n",
                row.system.label(),
                row.loss * 100.0,
                row.undrained.join(", ")
            ));
        }
    }
}

/// The `repro faults` artifact: loss sweep plus composed fault-plan replay.
pub fn faults(opts: &ReproOptions) -> String {
    let mut out = String::from(
        "Resilience under a lossy WiFi hop (loss rate x caching strategy)\n\
         (each point runs the schedule plus a drain grace period; `drained`\n\
         means every pending-state map on clients, AP and LDNS emptied)\n\n",
    );
    let points: Vec<(f64, System)> = LOSS_RATES
        .iter()
        .flat_map(|&loss| SYSTEMS.iter().map(move |&system| (loss, system)))
        .collect();
    let rows = parallel_points(points.len(), opts.threads, |idx| {
        let (loss, system) = points[idx];
        run_sweep_point(opts, system, loss)
    });
    render_rows(&mut out, &rows);

    // --- Composed fault-plan replay ------------------------------------
    out.push_str(
        "\nScheduled fault-plan replay (APE-CACHE, 1% radio loss, composed\n\
         disturbances: client0<->AP partition 60-75s, AP<->LDNS 30% loss\n\
         burst 120-180s, AP<->edge +40ms delay spike 200-240s)\n\n",
    );
    let mut config = base_config(System::ApeCache, opts, &DummyAppConfig::default(), APPS);
    config.wifi_loss = 0.01;
    let mut bed = build(&config);
    let plan = FaultPlan::new()
        .link_down(
            bed.clients[0],
            bed.ap,
            SimTime::from_secs(60),
            SimTime::from_secs(75),
        )
        .loss_burst(
            bed.ap,
            bed.ldns,
            SimTime::from_secs(120),
            SimTime::from_secs(180),
            0.30,
        )
        .delay_spike(
            bed.ap,
            bed.edge,
            SimTime::from_secs(200),
            SimTime::from_secs(240),
            SimDuration::from_millis(40),
        );
    bed.world.set_fault_plan(plan);
    bed.world.run_for(opts.duration() + GRACE);
    let replay = extract_row(0.01, System::ApeCache, &mut bed);
    render_rows(&mut out, &[replay]);
    out
}
