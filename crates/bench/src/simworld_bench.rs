//! `repro bench-simworld` — event-queue throughput sweep.
//!
//! Sweeps queue populations {1k, 10k, 100k, 1M} (quick mode keeps the two
//! small cells for CI smoke), timing a fill-then-drain of a synthetic but
//! simulation-shaped schedule — µs-scale inter-event spacing with tie
//! bursts and occasional far-future timers — through the timing wheel
//! ([`ape_simnet::TimerWheel`]) and through the frozen pre-wheel binary
//! heap ([`ape_simnet::reference::ReferenceEventQueue`]). Both engines see
//! the identical schedule; before any timing, their full pop sequences are
//! asserted equal, so the reported speedup is against the code that
//! actually shipped and on a workload it provably agrees on.
//!
//! Per cell the sweep reports push and pop cost per event, pop throughput,
//! peak queue depth and approximate buffer bytes per queued event. The
//! top-level `deliver_event_bytes` field tracks the in-queue footprint of
//! one testbed deliver event ([`ape_simnet::event_footprint`] of
//! [`ape_proto::Msg`]), so a payload regression shows up in the artifact
//! diff. Results go to `BENCH_simworld.json` at the repo root, next to
//! `BENCH_evict.json` (PR 4's eviction sweep); `EXPERIMENTS.md` tracks the
//! trajectory.
//!
//! The schedule is deterministic in `--seed`; only wall-clock timings vary
//! run to run (the bench crate is the one place wall-clock is permitted).

use std::fmt::Write as _;
use std::time::Instant;

use ape_simnet::reference::ReferenceEventQueue;
use ape_simnet::{SimRng, SimTime, TimerWheel};

use crate::ReproOptions;

/// Queue populations swept in a full run.
const SWEEP_FULL: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Quick-mode subset (CI smoke: small sizes only).
const SWEEP_QUICK: [usize; 2] = [1_000, 10_000];

/// Mean inter-event spacing of the synthetic schedule in nanoseconds.
/// µs-scale link delays dominate simulated traffic (the default testbed's
/// WiFi hop alone is ~800 µs RTT across many in-flight exchanges).
const MEAN_SPACING_NS: u64 = 4_096;

/// One `(engine, population)` sweep cell.
struct Cell {
    engine: &'static str,
    events: usize,
    /// Median per-event cost of the fill phase.
    push_ns_per_event: u64,
    /// Median per-event cost of the drain phase.
    pop_ns_per_event: u64,
    /// Drain throughput implied by the median pop cost.
    pops_per_sec: u64,
    /// High-water mark of queue length (equals `events` here).
    peak_depth: usize,
    /// Approximate queue buffer bytes per queued event at peak.
    bytes_per_event: u64,
}

/// Builds the synthetic schedule for a cell: `(timestamp, seq)` pairs.
///
/// One event in 64 re-uses the previous timestamp (a tie burst: fan-out
/// scheduled at one instant), one in 64 is a seconds-out timer (TTL expiry
/// and reap-tick territory, which crosses wheel levels), and the rest land
/// uniformly in a window sized for `MEAN_SPACING_NS` average spacing.
fn schedule(n: usize, seed: u64) -> Vec<(SimTime, u64)> {
    let mut rng = SimRng::seed_from(seed ^ n as u64);
    let window = n as u64 * MEAN_SPACING_NS;
    let mut prev = 0u64;
    (0..n)
        .map(|i| {
            let at = match i % 64 {
                0 => prev,
                1 => rng.uniform_u64(1_000_000_000, 5_000_000_000),
                _ => rng.uniform_u64(0, window),
            };
            prev = at;
            (SimTime::from_nanos(at), i as u64)
        })
        .collect()
}

/// Timings of one fill-then-drain pass.
struct Pass {
    push_ns: u64,
    pop_ns: u64,
    bytes_at_peak: usize,
    peak_depth: usize,
}

fn run_wheel_pass(sched: &[(SimTime, u64)]) -> Pass {
    let mut q = TimerWheel::new();
    let t = Instant::now();
    for &(at, seq) in sched {
        q.push(at, seq, seq);
    }
    let push_ns = t.elapsed().as_nanos() as u64;
    let bytes_at_peak = q.approx_bytes();
    let peak_depth = q.peak_len();
    let t = Instant::now();
    while let Some(e) = q.pop() {
        std::hint::black_box(e);
    }
    let pop_ns = t.elapsed().as_nanos() as u64;
    Pass {
        push_ns,
        pop_ns,
        bytes_at_peak,
        peak_depth,
    }
}

fn run_heap_pass(sched: &[(SimTime, u64)]) -> Pass {
    let mut q = ReferenceEventQueue::new();
    let t = Instant::now();
    for &(at, seq) in sched {
        q.push(at, seq, seq);
    }
    let push_ns = t.elapsed().as_nanos() as u64;
    let bytes_at_peak = q.approx_bytes();
    let peak_depth = q.peak_len();
    let t = Instant::now();
    while let Some(e) = q.pop() {
        std::hint::black_box(e);
    }
    let pop_ns = t.elapsed().as_nanos() as u64;
    Pass {
        push_ns,
        pop_ns,
        bytes_at_peak,
        peak_depth,
    }
}

/// Asserts both engines pop the cell's schedule identically (untimed).
fn assert_engines_agree(sched: &[(SimTime, u64)]) {
    let mut wheel = TimerWheel::new();
    let mut heap = ReferenceEventQueue::new();
    for &(at, seq) in sched {
        wheel.push(at, seq, seq);
        heap.push(at, seq, seq);
    }
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h, "timing wheel diverged from the reference heap");
        if w.is_none() {
            break;
        }
    }
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_cell(
    engine: &'static str,
    sched: &[(SimTime, u64)],
    trials: usize,
    pass: fn(&[(SimTime, u64)]) -> Pass,
) -> Cell {
    // Warm-up pass: faults in the schedule and grows allocator arenas.
    std::hint::black_box(pass(sched));
    let mut pushes = Vec::with_capacity(trials);
    let mut pops = Vec::with_capacity(trials);
    let mut bytes_at_peak = 0;
    let mut peak_depth = 0;
    for _ in 0..trials {
        let p = pass(sched);
        pushes.push(p.push_ns);
        pops.push(p.pop_ns);
        bytes_at_peak = p.bytes_at_peak;
        peak_depth = p.peak_depth;
    }
    let n = sched.len() as u64;
    let pop_ns_per_event = (median(pops) / n).max(1);
    Cell {
        engine,
        events: sched.len(),
        push_ns_per_event: (median(pushes) / n).max(1),
        pop_ns_per_event,
        pops_per_sec: 1_000_000_000 / pop_ns_per_event,
        peak_depth,
        bytes_per_event: bytes_at_peak as u64 / n,
    }
}

/// Pop-cost ratio of the heap cell over the wheel cell of the same size.
fn speedup(cells: &[Cell], events: usize) -> Option<f64> {
    let of = |engine| {
        cells
            .iter()
            .find(|c| c.engine == engine && c.events == events)
            .map(|c| c.pop_ns_per_event as f64)
    };
    Some(of("heap")? / of("wheel")?)
}

fn render_json(cells: &[Cell], sizes: &[usize], trials: usize, seed: u64, quick: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ape-bench/simworld/v1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"trials_per_cell\": {trials},");
    let _ = writeln!(
        out,
        "  \"deliver_event_bytes\": {},",
        ape_simnet::event_footprint::<ape_proto::Msg>()
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"engine\": \"{}\", \"events\": {}, \"push_ns_per_event\": {}, \
             \"pop_ns_per_event\": {}, \"pops_per_sec\": {}, \"peak_depth\": {}, \
             \"bytes_per_event\": {}",
            c.engine,
            c.events,
            c.push_ns_per_event,
            c.pop_ns_per_event,
            c.pops_per_sec,
            c.peak_depth,
            c.bytes_per_event
        );
        if c.engine == "wheel" {
            let _ = write!(
                out,
                ", \"pop_speedup_vs_heap\": {:.2}",
                speedup(cells, c.events).unwrap_or(0.0)
            );
        } else {
            out.push_str(", \"pop_speedup_vs_heap\": null");
        }
        out.push_str(if i + 1 < cells.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sizes\": [");
    for (i, s) in sizes.iter().enumerate() {
        let _ = write!(out, "{}{s}", if i > 0 { ", " } else { "" });
    }
    out.push_str("]\n}\n");
    out
}

/// Runs the event-queue throughput sweep, writes `BENCH_simworld.json` at
/// the repo root, and returns a human-readable summary.
pub fn bench_simworld(opts: &ReproOptions) -> String {
    let quick = opts.micro_trials < ReproOptions::default().micro_trials;
    let sizes: &[usize] = if quick { &SWEEP_QUICK } else { &SWEEP_FULL };
    let trials = (opts.micro_trials / 8).clamp(3, 25);

    let mut cells = Vec::new();
    for &n in sizes {
        let sched = schedule(n, opts.seed);
        assert_engines_agree(&sched);
        cells.push(run_cell("wheel", &sched, trials, run_wheel_pass));
        cells.push(run_cell("heap", &sched, trials, run_heap_pass));
    }

    let json = render_json(&cells, sizes, trials, opts.seed, quick);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_simworld.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(err) => format!("FAILED to write {}: {err}", path.display()),
    };

    let mut out = String::from(
        "Simulator event-queue throughput: timing wheel vs frozen heap\n\
         (fill-then-drain of an identical schedule; medians over trials)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<7} {:>9} {:>10} {:>9} {:>13} {:>10} {:>9} {:>9}",
        "engine", "events", "push ns/e", "pop ns/e", "pops/sec", "peak", "bytes/e", "speedup"
    );
    for c in &cells {
        let _ = writeln!(
            out,
            "{:<7} {:>9} {:>10} {:>9} {:>13} {:>10} {:>9} {:>9}",
            c.engine,
            c.events,
            c.push_ns_per_event,
            c.pop_ns_per_event,
            c.pops_per_sec,
            c.peak_depth,
            c.bytes_per_event,
            if c.engine == "wheel" {
                speedup(&cells, c.events)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into())
            } else {
                "-".into()
            },
        );
    }
    let _ = writeln!(out, "\n{note}");
    out
}
