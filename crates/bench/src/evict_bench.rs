//! `repro bench-evict` — the eviction-cost microbench sweep.
//!
//! Sweeps store populations {256, 1024, 4096, 16384} × eviction policies
//! {pacm, pacm-nofair, lru}, timing `select_victims` against a full store.
//! The two PACM cells are also timed against the frozen seed engine
//! (`ape_cachealg::reference`), so the reported speedup is measured against
//! the code that actually shipped, not a reconstruction. Results are
//! written to `BENCH_evict.json` at the repo root; this file is the first
//! point of the eviction-path performance trajectory and later PRs append
//! to the story by regenerating it.
//!
//! The workload is deterministic in `--seed`: per-object sizes/apps/TTLs
//! come from `SimRng`, the store is built exactly full, and the probe
//! admission is fixed. Only the wall-clock timings vary run to run (the
//! bench crate is the one place wall-clock time is permitted). One in
//! sixteen objects is already expired at decision time — modelling the gap
//! between TTL sweep ticks — so the sweep exercises all three solver
//! paths: the small cells run the DP (expired bytes < probe size), the
//! 4096-object cell hits the expired-only fast path, and the 16384-object
//! cell falls back to greedy on both engines.

use std::fmt::Write as _;
use std::time::Instant;

use ape_cachealg::reference::ReferencePacm;
use ape_cachealg::{
    AppId, CacheStore, EvictStats, EvictionPolicy, LruPolicy, ObjectMeta, PacmConfig, PacmPolicy,
    Priority,
};
use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimRng, SimTime};

use crate::ReproOptions;

/// Store populations swept (object counts).
const SWEEP_OBJECTS: [usize; 4] = [256, 1024, 4096, 16384];

/// The eviction decision happens at t = 61 s, one second after the
/// frequency window rolls.
const NOW_SECS: u64 = 61;

/// Probe admission size: above the expired bytes of the small cells (the
/// DP must run) and below those of the 4096-object cell (the expired-only
/// fast path triggers).
const INCOMING_SIZE: u64 = 300_000;

/// One measured sweep cell.
struct Cell {
    policy: &'static str,
    objects: usize,
    store_bytes: u64,
    victims: usize,
    median_ns: u64,
    /// Seed-engine median; `None` for LRU (unchanged by the optimization).
    baseline_median_ns: Option<u64>,
    /// Workspace buffer growths during the timed window (expected 0).
    workspace_allocations: Option<u64>,
    /// Per-call solver counters; `None` for LRU.
    solver: Option<EvictStats>,
}

/// Builds an exactly-full store of `objects` cached objects.
///
/// App 0 hoards every fourth object while receiving almost no requests, so
/// its storage efficiency is far above its share and the fairness-repair
/// loop has real work to do. Every sixteenth object is already expired at
/// `NOW_SECS`.
fn build_store(objects: usize, seed: u64) -> CacheStore {
    let mut rng = SimRng::seed_from(seed ^ objects as u64);
    let sizes: Vec<u64> = (0..objects).map(|_| rng.uniform_u64(800, 6_000)).collect();
    let capacity: u64 = sizes.iter().sum();
    let mut store = CacheStore::new(capacity, 500_000);
    for (i, &size) in sizes.iter().enumerate() {
        let app = if i % 4 == 0 { 0 } else { 1 + (i % 29) as u32 };
        let expires_at = if i % 16 == 0 {
            SimTime::from_secs(30)
        } else {
            SimTime::from_secs(rng.uniform_u64(120, 3_600))
        };
        store.insert(
            ObjectMeta {
                key: UrlHash::of(&format!("http://bench-evict/{i}")),
                app: AppId::new(app),
                size,
                priority: if rng.chance(0.4) {
                    Priority::HIGH
                } else {
                    Priority::LOW
                },
                expires_at,
                fetch_latency: SimDuration::from_millis(rng.uniform_u64(5, 95)),
            },
            SimTime::ZERO,
        );
    }
    store
}

fn incoming() -> ObjectMeta {
    ObjectMeta {
        key: UrlHash::of("http://bench-evict/incoming"),
        app: AppId::new(3),
        size: INCOMING_SIZE,
        priority: Priority::HIGH,
        expires_at: SimTime::from_secs(1_800),
        fetch_latency: SimDuration::from_millis(35),
    }
}

/// Feeds a skewed request mix (app 0 nearly idle, apps 1..29 active);
/// callers roll the window at t = 60 s afterwards.
fn train(mut note: impl FnMut(AppId)) {
    for app in 1..30u32 {
        for _ in 0..(5 + app % 7) {
            note(AppId::new(app));
        }
    }
    note(AppId::new(0));
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn stats_delta(after: EvictStats, before: EvictStats, iters: u64) -> EvictStats {
    // Every timed call sees identical inputs, so the per-call counters are
    // exact integer quotients.
    EvictStats {
        solver_runs: (after.solver_runs - before.solver_runs) / iters,
        items_considered: (after.items_considered - before.items_considered) / iters,
        dp_runs: (after.dp_runs - before.dp_runs) / iters,
        greedy_runs: (after.greedy_runs - before.greedy_runs) / iters,
        short_circuits: (after.short_circuits - before.short_circuits) / iters,
        forced_victims: (after.forced_victims - before.forced_victims) / iters,
        repair_evictions: (after.repair_evictions - before.repair_evictions) / iters,
    }
}

fn run_pacm_cell(objects: usize, fairness: bool, iters: usize, seed: u64) -> Cell {
    let store = build_store(objects, seed);
    let probe = incoming();
    let now = SimTime::from_secs(NOW_SECS);

    let mut policy = PacmPolicy::new(PacmConfig::default());
    let mut baseline = ReferencePacm::new(PacmConfig::default());
    if !fairness {
        policy = policy.without_fairness();
        baseline = baseline.without_fairness();
    }
    train(|app| policy.note_request(app));
    policy.roll_window(SimTime::from_secs(60));
    train(|app| baseline.note_request(app));
    baseline.roll_window(SimTime::from_secs(60));

    // A speedup is only worth reporting if both engines agree on this
    // input (the property suite proves equivalence in general).
    let victims = policy.select_victims(&store, &probe, now);
    assert_eq!(
        victims,
        baseline.select_victims(&store, &probe, now),
        "optimized engine diverged from the seed on the benched store"
    );

    // Warm-up: grows the workspace to its steady-state footprint.
    for _ in 0..2 {
        std::hint::black_box(policy.select_victims(&store, &probe, now));
        std::hint::black_box(baseline.select_victims(&store, &probe, now));
    }

    let stats_before = policy.stats();
    let allocs_before = policy.workspace_allocations();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(policy.select_victims(&store, &probe, now));
        samples.push(t.elapsed().as_nanos() as u64);
    }
    let solver = stats_delta(policy.stats(), stats_before, iters as u64);
    let workspace_allocations = policy.workspace_allocations() - allocs_before;

    let mut base_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(baseline.select_victims(&store, &probe, now));
        base_samples.push(t.elapsed().as_nanos() as u64);
    }

    Cell {
        policy: if fairness { "pacm" } else { "pacm-nofair" },
        objects,
        store_bytes: store.capacity(),
        victims: victims.len(),
        median_ns: median(samples),
        baseline_median_ns: Some(median(base_samples)),
        workspace_allocations: Some(workspace_allocations),
        solver: Some(solver),
    }
}

fn run_lru_cell(objects: usize, iters: usize, seed: u64) -> Cell {
    let store = build_store(objects, seed);
    let probe = incoming();
    let now = SimTime::from_secs(NOW_SECS);
    let mut policy = LruPolicy::new();

    let victims = policy.select_victims(&store, &probe, now);
    for _ in 0..2 {
        std::hint::black_box(policy.select_victims(&store, &probe, now));
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(policy.select_victims(&store, &probe, now));
        samples.push(t.elapsed().as_nanos() as u64);
    }

    Cell {
        policy: "lru",
        objects,
        store_bytes: store.capacity(),
        victims: victims.len(),
        median_ns: median(samples),
        baseline_median_ns: None,
        workspace_allocations: None,
        solver: None,
    }
}

fn speedup(cell: &Cell) -> Option<f64> {
    cell.baseline_median_ns
        .map(|base| base as f64 / cell.median_ns.max(1) as f64)
}

fn render_json(cells: &[Cell], iters: usize, seed: u64, quick: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ape-bench/evict/v1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"iters_per_cell\": {iters},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"policy\": \"{}\", \"objects\": {}, \"store_bytes\": {}, \
             \"victims\": {}, \"median_ns\": {}",
            c.policy, c.objects, c.store_bytes, c.victims, c.median_ns
        );
        match c.baseline_median_ns {
            Some(base) => {
                let _ = write!(
                    out,
                    ", \"baseline_median_ns\": {}, \"speedup\": {:.2}",
                    base,
                    speedup(c).unwrap_or(0.0)
                );
            }
            None => out.push_str(", \"baseline_median_ns\": null, \"speedup\": null"),
        }
        match c.workspace_allocations {
            Some(a) => {
                let _ = write!(out, ", \"workspace_allocations\": {a}");
            }
            None => out.push_str(", \"workspace_allocations\": null"),
        }
        match &c.solver {
            Some(s) => {
                let _ = write!(
                    out,
                    ", \"solver\": {{\"runs\": {}, \"items\": {}, \"dp\": {}, \
                     \"greedy\": {}, \"short_circuits\": {}, \"forced\": {}, \
                     \"repair\": {}}}",
                    s.solver_runs,
                    s.items_considered,
                    s.dp_runs,
                    s.greedy_runs,
                    s.short_circuits,
                    s.forced_victims,
                    s.repair_evictions
                );
            }
            None => out.push_str(", \"solver\": null"),
        }
        out.push_str(if i + 1 < cells.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn solver_path(c: &Cell) -> &'static str {
    match &c.solver {
        None => "-",
        Some(s) if s.short_circuits > 0 => "short-circuit",
        Some(s) if s.dp_runs > 0 => "dp",
        Some(s) if s.greedy_runs > 0 => "greedy",
        Some(_) => "expired-only",
    }
}

/// Runs the eviction microbench sweep, writes `BENCH_evict.json` at the
/// repo root, and returns a human-readable summary.
pub fn bench_evict(opts: &ReproOptions) -> String {
    let iters = (opts.micro_trials / 4).max(5);
    let quick = opts.micro_trials < ReproOptions::default().micro_trials;
    let mut cells = Vec::new();
    for &objects in &SWEEP_OBJECTS {
        cells.push(run_pacm_cell(objects, true, iters, opts.seed));
        cells.push(run_pacm_cell(objects, false, iters, opts.seed));
        cells.push(run_lru_cell(objects, iters, opts.seed));
    }

    let json = render_json(&cells, iters, opts.seed, quick);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_evict.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(err) => format!("FAILED to write {}: {err}", path.display()),
    };

    let mut out = String::from(
        "Eviction microbench: select_victims cost, optimized vs seed engine\n\
         (medians over identical repeated decisions; LRU has no seed delta)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>14} {:>9} {:>8} {:>15}",
        "policy", "objects", "median (us)", "seed (us)", "speedup", "victims", "solver path"
    );
    for c in &cells {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12.1} {:>14} {:>9} {:>8} {:>15}",
            c.policy,
            c.objects,
            c.median_ns as f64 / 1_000.0,
            c.baseline_median_ns
                .map(|b| format!("{:.1}", b as f64 / 1_000.0))
                .unwrap_or_else(|| "-".into()),
            speedup(c)
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
            c.victims,
            solver_path(c),
        );
    }
    let _ = writeln!(out, "\n{note}");
    out
}
