//! `repro bench-metrics` — metric-registry throughput and memory sweep.
//!
//! Sweeps observation counts {10k, 100k, 1M} (quick mode keeps the two
//! small cells for CI smoke), recording a simulation-shaped latency
//! distribution — a sub-millisecond WiFi-hit mode, a ~15 ms edge mode and
//! an exponential heavy tail — through the registry's two histogram
//! engines: the fixed-memory sketch ([`ape_simnet::Histogram`] in
//! [`HistogramMode::Sketch`](ape_simnet::HistogramMode)) and the frozen
//! sample-hoarding seed ([`ape_simnet::reference::ExactHistogram`], the
//! code that actually shipped). Observations fan out over eight interned
//! metric ids through the full [`Metrics::observe_id`] hot path, the way
//! the testbed nodes record.
//!
//! Two per-sample costs are timed. `observe_ns_per_sample` is the bare
//! recording loop. `live_ns_per_sample` is the same loop with a p99 probe
//! every 4096 samples — the live-telemetry shape of the AP's periodic
//! stats report — which is where the exact engine's lazy re-sort hurts and
//! the sweep's headline `observes_per_sec`/speedup numbers come from.
//! Before any timing, the sketch's quantiles are checked against the exact
//! oracle on the identical stream (`max_quantile_rel_err` in the output),
//! so the reported speedup is against ground truth the sketch provably
//! tracks. Results go to `BENCH_metrics.json` at the repo root, next to
//! `BENCH_evict.json` and `BENCH_simworld.json`; `EXPERIMENTS.md` tracks
//! the trajectory.
//!
//! The sample stream is deterministic in `--seed`; only wall-clock timings
//! vary run to run (the bench crate is the one place wall-clock is
//! permitted).

use std::fmt::Write as _;
use std::time::Instant;

use ape_proto::names;
use ape_simnet::reference::ExactHistogram;
use ape_simnet::{Histogram, HistogramMode, MetricId, Metrics, MetricsConfig, SimRng};

use crate::ReproOptions;

/// Observation counts swept in a full run.
const SWEEP_FULL: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Quick-mode subset (CI smoke: small sizes only).
const SWEEP_QUICK: [usize; 2] = [10_000, 50_000];

/// Histogram ids the observations fan out over (the registry names the
/// testbed's latency histograms actually use).
const IDS: [MetricId; 8] = [
    names::id::AP_DELEGATION_FETCH_MS,
    names::id::CLIENT_LOOKUP_QUERY_MS,
    names::id::CLIENT_LOOKUP_OP_MS,
    names::id::CLIENT_RETRIEVAL_MS,
    names::id::CLIENT_RETRIEVAL_HIT_MS,
    names::id::CLIENT_RETRIEVAL_DELEGATION_MS,
    names::id::CLIENT_RETRIEVAL_EDGE_MS,
    names::id::CLIENT_APP_LATENCY_MS,
];

/// Samples between p99 probes in the live-telemetry loop.
const QUERY_EVERY: usize = 4_096;

/// Quantiles checked against the exact oracle.
const CHECK_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// One `(mode, samples)` sweep cell.
struct Cell {
    mode: &'static str,
    samples: usize,
    /// Median per-sample cost of the bare recording loop.
    observe_ns_per_sample: u64,
    /// Median per-sample cost with a p99 probe every [`QUERY_EVERY`].
    live_ns_per_sample: u64,
    /// Live-loop throughput implied by the median cost.
    observes_per_sec: u64,
    /// Registry heap footprint after the fill.
    resident_bytes: u64,
    /// Largest relative quantile error vs the exact oracle (sketch cells).
    max_quantile_rel_err: f64,
}

/// Generates the simulation-shaped latency stream, milliseconds.
///
/// 60% sub-millisecond (AP cache hits over the WiFi hop), 30% around the
/// 15 ms edge RTT, 10% exponential with a 120 ms mean (origin fetches and
/// retry tails) — the three regimes the paper's Fig. 11 latencies live in.
fn sample_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed ^ 0x4D45_5452_1C5B_0007);
    (0..n)
        .map(|_| match rng.uniform_u64(0, 10) {
            0..=5 => rng.uniform_f64(0.05, 0.9),
            6..=8 => rng.normal(15.0, 2.5).abs(),
            _ => rng.exponential(120.0),
        })
        .collect()
}

/// Asserts the sketch's quantiles track the exact oracle on `stream` and
/// returns the largest relative error observed (untimed).
fn check_accuracy(stream: &[f64]) -> f64 {
    let mut sketch = Histogram::new_sketch(false);
    let mut exact = ExactHistogram::new();
    for &v in stream {
        sketch.record(v);
        exact.record(v);
    }
    let mut worst = 0.0f64;
    for q in CHECK_QUANTILES {
        let s = sketch.quantile(q);
        let e = exact.quantile(q);
        let rel = (s - e).abs() / e.abs().max(1.0 / 1024.0);
        assert!(
            rel <= 0.01 + 1e-9,
            "sketch p{q} = {s} drifted {rel:.4} from exact {e}"
        );
        worst = worst.max(rel);
    }
    worst
}

/// Timings of one fill pass through the full registry path.
struct Pass {
    observe_ns: u64,
    live_ns: u64,
    resident_bytes: usize,
}

fn run_pass(mode: HistogramMode, stream: &[f64]) -> Pass {
    let fresh = || {
        let mut m = Metrics::new();
        m.set_config(MetricsConfig {
            histogram_mode: mode,
            ..MetricsConfig::default()
        });
        m
    };

    // Bare recording loop.
    let mut m = fresh();
    let t = Instant::now();
    for (i, &v) in stream.iter().enumerate() {
        m.observe_id(IDS[i % IDS.len()], v);
    }
    let observe_ns = t.elapsed().as_nanos() as u64;
    let resident_bytes = m.approx_bytes();

    // Live-telemetry loop: recording with periodic p99 probes.
    let mut m = fresh();
    let probe = names::CLIENT_APP_LATENCY_MS;
    let t = Instant::now();
    for (i, &v) in stream.iter().enumerate() {
        m.observe_id(IDS[i % IDS.len()], v);
        if i % QUERY_EVERY == QUERY_EVERY - 1 {
            std::hint::black_box(m.quantile(probe, 0.99));
        }
    }
    let live_ns = t.elapsed().as_nanos() as u64;

    Pass {
        observe_ns,
        live_ns,
        resident_bytes,
    }
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_cell(mode: HistogramMode, stream: &[f64], trials: usize, max_quantile_rel_err: f64) -> Cell {
    // Warm-up pass: faults in the stream and grows allocator arenas.
    std::hint::black_box(run_pass(mode, stream));
    let mut observes = Vec::with_capacity(trials);
    let mut lives = Vec::with_capacity(trials);
    let mut resident_bytes = 0;
    for _ in 0..trials {
        let p = run_pass(mode, stream);
        observes.push(p.observe_ns);
        lives.push(p.live_ns);
        resident_bytes = p.resident_bytes;
    }
    let n = stream.len() as u64;
    let live_ns_per_sample = (median(lives) / n).max(1);
    Cell {
        mode: match mode {
            HistogramMode::ExactCompat => "exact",
            HistogramMode::Sketch => "sketch",
        },
        samples: stream.len(),
        observe_ns_per_sample: (median(observes) / n).max(1),
        live_ns_per_sample,
        observes_per_sec: 1_000_000_000 / live_ns_per_sample,
        resident_bytes: resident_bytes as u64,
        max_quantile_rel_err,
    }
}

/// `exact` over `sketch` for the given extractor at one cell size.
fn ratio(cells: &[Cell], samples: usize, of: impl Fn(&Cell) -> f64) -> Option<f64> {
    let get = |mode| {
        cells
            .iter()
            .find(|c| c.mode == mode && c.samples == samples)
            .map(&of)
    };
    Some(get("exact")? / get("sketch")?)
}

fn render_json(cells: &[Cell], sizes: &[usize], trials: usize, seed: u64, quick: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ape-bench/metrics/v1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"trials_per_cell\": {trials},");
    let _ = writeln!(out, "  \"histograms\": {},", IDS.len());
    let _ = writeln!(out, "  \"probe_every\": {QUERY_EVERY},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"samples\": {}, \"observe_ns_per_sample\": {}, \
             \"live_ns_per_sample\": {}, \"observes_per_sec\": {}, \"resident_bytes\": {}, \
             \"max_quantile_rel_err\": {:.6}",
            c.mode,
            c.samples,
            c.observe_ns_per_sample,
            c.live_ns_per_sample,
            c.observes_per_sec,
            c.resident_bytes,
            c.max_quantile_rel_err,
        );
        if c.mode == "sketch" {
            let _ = write!(
                out,
                ", \"throughput_speedup_vs_exact\": {:.2}, \"memory_ratio_vs_exact\": {:.2}",
                ratio(cells, c.samples, |c| c.live_ns_per_sample as f64).unwrap_or(0.0),
                ratio(cells, c.samples, |c| c.resident_bytes as f64).unwrap_or(0.0),
            );
        } else {
            out.push_str(
                ", \"throughput_speedup_vs_exact\": null, \"memory_ratio_vs_exact\": null",
            );
        }
        out.push_str(if i + 1 < cells.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sizes\": [");
    for (i, s) in sizes.iter().enumerate() {
        let _ = write!(out, "{}{s}", if i > 0 { ", " } else { "" });
    }
    out.push_str("]\n}\n");
    out
}

/// Runs the metric-registry sweep, writes `BENCH_metrics.json` at the repo
/// root, and returns a human-readable summary.
pub fn bench_metrics(opts: &ReproOptions) -> String {
    let quick = opts.micro_trials < ReproOptions::default().micro_trials;
    let sizes: &[usize] = if quick { &SWEEP_QUICK } else { &SWEEP_FULL };
    let trials = (opts.micro_trials / 8).clamp(3, 15);

    let mut cells = Vec::new();
    for &n in sizes {
        let stream = sample_stream(n, opts.seed);
        let worst = check_accuracy(&stream);
        cells.push(run_cell(HistogramMode::ExactCompat, &stream, trials, 0.0));
        cells.push(run_cell(HistogramMode::Sketch, &stream, trials, worst));
    }

    let json = render_json(&cells, sizes, trials, opts.seed, quick);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_metrics.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(err) => format!("FAILED to write {}: {err}", path.display()),
    };

    let mut out = String::from(
        "Metric registry: fixed-memory sketch vs frozen exact histograms\n\
         (identical streams over 8 interned ids; live loop probes p99 every \
         4096 samples; medians over trials)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<7} {:>9} {:>10} {:>9} {:>13} {:>11} {:>8} {:>8} {:>9}",
        "mode",
        "samples",
        "obs ns/s",
        "live ns",
        "obs/sec",
        "resident",
        "q-err",
        "mem-x",
        "speedup"
    );
    for c in &cells {
        let (mem_x, speedup) = if c.mode == "sketch" {
            (
                ratio(&cells, c.samples, |c| c.resident_bytes as f64)
                    .map(|r| format!("{r:.1}x"))
                    .unwrap_or_else(|| "-".into()),
                ratio(&cells, c.samples, |c| c.live_ns_per_sample as f64)
                    .map(|r| format!("{r:.1}x"))
                    .unwrap_or_else(|| "-".into()),
            )
        } else {
            ("-".into(), "-".into())
        };
        let _ = writeln!(
            out,
            "{:<7} {:>9} {:>10} {:>9} {:>13} {:>11} {:>8} {:>8} {:>9}",
            c.mode,
            c.samples,
            c.observe_ns_per_sample,
            c.live_ns_per_sample,
            c.observes_per_sec,
            c.resident_bytes,
            format!("{:.4}", c.max_quantile_rel_err),
            mem_x,
            speedup,
        );
    }
    let _ = writeln!(out, "\n{note}");
    out
}
