//! `repro bench-scale` — city-scale multi-AP topology sweep.
//!
//! Sweeps AP grids {1, 16, 64, 256} (quick mode keeps {1, 16} for CI
//! smoke) × client roam rates {none, low, high} × {cooperative, isolated}
//! caching, reporting per cell the client-observed hit ratio, the
//! AP-layer aggregate hit ratio (home hits plus peer hits over all
//! cacheable demand — the fraction of traffic the AP tier absorbs before
//! the edge), and p99 app latency.
//!
//! Every cell is run four ways — 1 shard, 4 shards, 4 shards × 4 worker
//! threads, and 1 shard under a tie-break-perturbation key — and the
//! bench asserts all four [`Fingerprint`]s identical before reporting
//! anything: the quality comparison is between provably-identical
//! simulations. At 64+ APs the cooperative grid must beat the isolated
//! one on AP-layer hit ratio, or the bench panics.
//!
//! Results go to `BENCH_scale.json` at the repo root; `EXPERIMENTS.md`
//! tracks the trajectory. The sweep itself is deterministic in `--seed`;
//! only the informational wall-clock column varies run to run.

use std::fmt::Write as _;
use std::time::Instant;

use ape_appdag::DummyAppConfig;
use ape_proto::names;
use ape_simnet::{Fingerprint, SimDuration};
use ape_workload::ScheduleConfig;
use apecache::{
    build_topology_sharded, collect_topology_sharded, synthetic_suite, System, TestbedConfig,
    TopologyConfig,
};

use crate::ReproOptions;

/// AP-grid sizes swept in a full run.
const AP_SWEEP_FULL: [usize; 4] = [1, 16, 64, 256];

/// Quick-mode subset (CI smoke: the grids stay small).
const AP_SWEEP_QUICK: [usize; 2] = [1, 16];

/// Roam rates swept (label, roams per client per minute).
const ROAM_FULL: [(&str, f64); 3] = [("none", 0.0), ("low", 1.0), ("high", 6.0)];
const ROAM_QUICK: [(&str, f64); 2] = [("none", 0.0), ("high", 6.0)];

/// Clients homed at each AP.
const CLIENTS_PER_AP: usize = 2;

/// Simulated span (full / quick): at least two 60 s summary windows, so
/// neighbor gossip has rolled and peer fetches carry real traffic.
const SIM_SECS_FULL: u64 = 180;
const SIM_SECS_QUICK: u64 = 150;

/// An AP cache far below the suite's working set: misses — and therefore
/// cooperation — stay relevant for the whole run instead of vanishing
/// once every AP has absorbed the hot set.
const AP_CACHE_CAPACITY: u64 = 400_000;

/// Tie-break-perturbation key for the per-cell invariance assert.
const TIE_KEY: u64 = 0x9E37_79B9_7F4A_7C15;

/// One `(aps, roam rate, cooperation mode)` sweep cell.
struct Cell {
    aps: usize,
    roam: &'static str,
    roam_per_minute: f64,
    cooperative: bool,
    /// Client-observed AP cache hit ratio (DNS-Cache flagged hits).
    hit_ratio: f64,
    /// (home hits + peer hits) / (home hits + delegations): the share of
    /// cacheable demand the AP tier absorbs before the edge.
    ap_layer_hit_ratio: f64,
    /// p99 app latency in milliseconds.
    p99_ms: f64,
    fetches: u64,
    roams: u64,
    peer_hits: u64,
    /// Wall-clock of the measured 1-shard run (informational only).
    wall_ms: f64,
}

fn cell_config(aps: usize, roam_per_minute: f64, cooperative: bool, seed: u64) -> TopologyConfig {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), seed);
    let mut base = TestbedConfig::new(System::ApeCache, suite);
    base.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 10.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_secs(SIM_SECS_FULL),
    };
    base.seed = seed;
    base.ap.cache_capacity = AP_CACHE_CAPACITY;
    let config = TopologyConfig::new(base, aps)
        .with_clients_per_ap(CLIENTS_PER_AP)
        .with_roam_rate(roam_per_minute);
    if cooperative {
        config
    } else {
        config.isolated()
    }
}

/// Runs one cell configuration and returns its fingerprint (plus the
/// wall-clock of the run itself, excluding construction).
fn run_once(
    mut config: TopologyConfig,
    sim: SimDuration,
    shards: u32,
    threads: usize,
    key: Option<u64>,
) -> (Fingerprint, u64, f64) {
    config.base.tie_perturbation = key;
    let mut top = build_topology_sharded(&config, shards);
    if threads > 1 {
        top.world.set_threads(threads);
    }
    let t = Instant::now();
    top.world.run_for(sim);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let fetches = top.world.metrics_merged().counter(names::CLIENT_FETCHES);
    (top.world.fingerprint(), fetches, wall_ms)
}

/// Runs a cell's measured pass plus the three invariance passes (shard
/// count, worker threads, tie-perturbation key), asserting all four
/// fingerprints identical, and folds the metrics into a [`Cell`].
fn run_cell(
    aps: usize,
    roam: (&'static str, f64),
    cooperative: bool,
    sim: SimDuration,
    seed: u64,
) -> Cell {
    let config = cell_config(aps, roam.1, cooperative, seed);

    let mut top = build_topology_sharded(&config, 1);
    let t = Instant::now();
    top.world.run_for(sim);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let base_fp = top.world.fingerprint();

    let label = format!(
        "{aps} APs, roam {}, {}",
        roam.0,
        if cooperative { "coop" } else { "iso" }
    );
    for (case, shards, threads, key) in [
        ("4 shards", 4, 1, None),
        ("4 shards x 4 threads", 4, 4, None),
        ("tie perturbation", 1, 1, Some(TIE_KEY)),
    ] {
        let (fp, _, _) = run_once(config.clone(), sim, shards, threads, key);
        assert_eq!(fp, base_fp, "{label}: fingerprint diverged under {case}");
    }

    let mut result = collect_topology_sharded(config.base.system, &mut top);
    let home_hits = result.metrics.counter(names::AP_CACHE_HITS);
    let peer_hits = result.metrics.counter(names::AP_PEER_HITS);
    let delegations = result.metrics.counter(names::AP_DELEGATIONS);
    let roams = result.metrics.counter(names::CLIENT_ROAMS);
    let demand = home_hits + delegations;
    let summary = result.summary();
    assert!(
        summary.executions > 0,
        "{label}: workload must actually run"
    );
    // A single-AP grid has no neighbor to roam to, so its walk is empty.
    assert_eq!(
        roams > 0,
        roam.1 > 0.0 && aps > 1,
        "{label}: roams happen exactly when the rate is nonzero and a neighbor exists"
    );
    Cell {
        aps,
        roam: roam.0,
        roam_per_minute: roam.1,
        cooperative,
        hit_ratio: summary.hit_ratio,
        ap_layer_hit_ratio: if demand > 0 {
            (home_hits + peer_hits) as f64 / demand as f64
        } else {
            0.0
        },
        p99_ms: summary.app_latency_p99_ms,
        fetches: result.metrics.counter(names::CLIENT_FETCHES),
        roams,
        peer_hits,
        wall_ms,
    }
}

fn find<'a>(cells: &'a [Cell], aps: usize, roam: &str, cooperative: bool) -> Option<&'a Cell> {
    cells
        .iter()
        .find(|c| c.aps == aps && c.roam == roam && c.cooperative == cooperative)
}

fn render_json(cells: &[Cell], seed: u64, quick: bool, sim_secs: u64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ape-bench/scale/v1\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"sim_seconds\": {sim_secs},");
    let _ = writeln!(out, "  \"clients_per_ap\": {CLIENTS_PER_AP},");
    let _ = writeln!(
        out,
        "  \"invariance\": \"each cell fingerprint-asserted identical across \
         1/4 shards, 4 worker threads, and tie-perturbation key {TIE_KEY:#x}\","
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"aps\": {}, \"roam\": \"{}\", \"roam_per_minute\": {}, \
             \"cooperative\": {}, \"hit_ratio\": {:.4}, \"ap_layer_hit_ratio\": {:.4}, \
             \"p99_ms\": {:.3}, \"fetches\": {}, \"roams\": {}, \"peer_hits\": {}, \
             \"wall_ms\": {:.1}",
            c.aps,
            c.roam,
            c.roam_per_minute,
            c.cooperative,
            c.hit_ratio,
            c.ap_layer_hit_ratio,
            c.p99_ms,
            c.fetches,
            c.roams,
            c.peer_hits,
            c.wall_ms
        );
        out.push_str(if i + 1 < cells.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the city-scale multi-AP sweep, writes `BENCH_scale.json` at the
/// repo root, and returns a human-readable summary.
pub fn bench_scale(opts: &ReproOptions) -> String {
    let quick = opts.micro_trials < ReproOptions::default().micro_trials;
    let ap_sweep: &[usize] = if quick {
        &AP_SWEEP_QUICK
    } else {
        &AP_SWEEP_FULL
    };
    let roam_sweep: &[(&'static str, f64)] = if quick { &ROAM_QUICK } else { &ROAM_FULL };
    let sim_secs = if quick { SIM_SECS_QUICK } else { SIM_SECS_FULL };
    let sim = SimDuration::from_secs(sim_secs);

    let mut cells = Vec::new();
    for &aps in ap_sweep {
        for &roam in roam_sweep {
            for cooperative in [true, false] {
                cells.push(run_cell(aps, roam, cooperative, sim, opts.seed));
            }
        }
    }

    // The whole point of cooperation: at city scale the AP tier must
    // absorb strictly more demand than the same grid with gossip and
    // peer fetches turned off.
    for &aps in ap_sweep.iter().filter(|&&a| a >= 64) {
        for &(roam, _) in roam_sweep {
            let coop = find(&cells, aps, roam, true).expect("cell swept");
            let iso = find(&cells, aps, roam, false).expect("cell swept");
            assert!(
                coop.ap_layer_hit_ratio > iso.ap_layer_hit_ratio,
                "cooperative caching must beat isolated at {aps} APs (roam {roam}): \
                 {:.4} vs {:.4}",
                coop.ap_layer_hit_ratio,
                iso.ap_layer_hit_ratio
            );
        }
    }

    let json = render_json(&cells, opts.seed, quick, sim_secs);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    let note = match std::fs::write(&path, &json) {
        Ok(()) => format!("wrote {}", path.display()),
        Err(err) => format!("FAILED to write {}: {err}", path.display()),
    };

    let mut out = String::from(
        "City-scale multi-AP sweep: hit ratio and p99 latency vs AP count x roam rate\n\
         (each cell fingerprint-asserted invariant across shards, threads, tie keys)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<5} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10} {:>9}",
        "aps",
        "roam",
        "mode",
        "hit",
        "ap-layer",
        "p99 ms",
        "fetches",
        "roams",
        "peer hits",
        "wall ms"
    );
    for c in &cells {
        let _ = writeln!(
            out,
            "{:<5} {:>5} {:>5} {:>8.1}% {:>8.1}% {:>9.2} {:>9} {:>7} {:>10} {:>9.1}",
            c.aps,
            c.roam,
            if c.cooperative { "coop" } else { "iso" },
            c.hit_ratio * 100.0,
            c.ap_layer_hit_ratio * 100.0,
            c.p99_ms,
            c.fetches,
            c.roams,
            c.peer_hits,
            c.wall_ms,
        );
    }
    let _ = writeln!(out, "{note}");
    out
}
