//! Micro-benchmarks of PACM's eviction machinery — including the
//! knapsack-DP vs greedy ablation called out in `DESIGN.md`.
//!
//! Context: on the paper's router (MT7621A @ 880 MHz) an eviction decision
//! must complete in low milliseconds to stay off the data path. These
//! benches establish that the exact DP at 5 MB / 1 KiB granularity with
//! hundreds of objects is comfortably within that envelope on commodity
//! hardware (and the greedy is an order of magnitude cheaper).

use ape_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ape_cachealg::{
    solve_exact, solve_greedy, AppId, CacheStore, EvictionPolicy, KnapsackItem, LruPolicy,
    ObjectMeta, PacmConfig, PacmPolicy, Priority,
};
use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimRng, SimTime};

fn items(n: usize, seed: u64) -> Vec<KnapsackItem> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| KnapsackItem {
            weight: rng.uniform_u64(1_000, 100_000),
            value: rng.uniform_f64(0.0, 10.0),
        })
        .collect()
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack");
    for &n in &[50usize, 200, 800] {
        let input = items(n, 7);
        group.bench_with_input(BenchmarkId::new("exact_dp", n), &input, |b, input| {
            b.iter(|| solve_exact(input, 5_000_000, 1_024));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &input, |b, input| {
            b.iter(|| solve_greedy(input, 5_000_000));
        });
    }
    group.finish();
}

fn populated_store(objects: usize, seed: u64) -> CacheStore {
    let mut rng = SimRng::seed_from(seed);
    let mut store = CacheStore::new(5_000_000, 500_000);
    let mut used = 0u64;
    for i in 0..objects {
        let size = rng.uniform_u64(1_000, 60_000);
        if used + size > store.capacity() {
            break;
        }
        used += size;
        store.insert(
            ObjectMeta {
                key: UrlHash::of(&format!("http://bench/{i}")),
                app: AppId::new((i % 30) as u32),
                size,
                priority: if rng.chance(0.4) {
                    Priority::HIGH
                } else {
                    Priority::LOW
                },
                expires_at: SimTime::from_secs(rng.uniform_u64(60, 3600)),
                fetch_latency: SimDuration::from_millis(rng.uniform_u64(20, 50)),
            },
            SimTime::ZERO,
        );
    }
    store
}

fn incoming() -> ObjectMeta {
    ObjectMeta {
        key: UrlHash::of("http://bench/incoming"),
        app: AppId::new(1),
        size: 80_000,
        priority: Priority::HIGH,
        expires_at: SimTime::from_secs(1800),
        fetch_latency: SimDuration::from_millis(35),
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_victims");
    let store = populated_store(400, 11);
    let new_obj = incoming();
    group.bench_function("pacm_full_cache", |b| {
        let mut policy = PacmPolicy::new(PacmConfig::default());
        for app in 0..30 {
            policy.note_request(AppId::new(app));
        }
        policy.roll_window(SimTime::from_secs(60));
        b.iter(|| policy.select_victims(&store, &new_obj, SimTime::from_secs(61)));
    });
    group.bench_function("pacm_no_fairness", |b| {
        let mut policy = PacmPolicy::new(PacmConfig::default()).without_fairness();
        b.iter(|| policy.select_victims(&store, &new_obj, SimTime::from_secs(61)));
    });
    group.bench_function("lru_full_cache", |b| {
        let mut policy = LruPolicy::new();
        b.iter(|| policy.select_victims(&store, &new_obj, SimTime::from_secs(61)));
    });
    group.finish();
}

criterion_group!(benches, bench_knapsack, bench_policies);
criterion_main!(benches);
