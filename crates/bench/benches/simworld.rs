//! Simulator-substrate benchmarks: raw event throughput and the cost of a
//! full testbed-minute, which bounds how fast the repro harness can sweep.

use std::time::{Duration, Instant};

use ape_appdag::DummyAppConfig;
use ape_bench::microbench::{criterion_group, criterion_main, Criterion};
use ape_simnet::{Context, LinkSpec, Message, Node, NodeId, SimDuration, TraceConfig, World};
use ape_workload::ScheduleConfig;
use apecache::{build, synthetic_suite, System, TestbedConfig};

#[derive(Debug)]
struct Token(u32);
impl Message for Token {
    fn wire_size(&self) -> usize {
        16
    }
}

struct Bouncer;
impl Node<Token> for Bouncer {
    fn on_message(&mut self, ctx: &mut Context<'_, Token>, from: NodeId, msg: Token) {
        if msg.0 > 0 {
            ctx.send(from, Token(msg.0 - 1));
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    c.bench_function("world_10k_events", |b| {
        b.iter_with_setup(
            || {
                let mut world = World::new(1);
                let a = world.add_node("a", Bouncer);
                let z = world.add_node("b", Bouncer);
                world.connect(a, z, LinkSpec::new(1, SimDuration::from_micros(100)));
                world.post(a, z, Token(10_000));
                world
            },
            |mut world| {
                world.run_to_idle();
            },
        )
    });
}

fn bench_testbed_minute(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed");
    group.sample_size(10);
    group.bench_function("ape_cache_one_sim_minute", |b| {
        b.iter_with_setup(
            || {
                let apps = synthetic_suite(10, &DummyAppConfig::default(), 3);
                let mut config = TestbedConfig::new(System::ApeCache, apps);
                config.schedule = ScheduleConfig {
                    apps: 10,
                    duration: SimDuration::from_mins(1),
                    ..ScheduleConfig::default()
                };
                build(&config)
            },
            |mut bed| {
                bed.world.run_for(SimDuration::from_mins(1));
            },
        )
    });
    group.finish();
}

/// Guard: span tracing is pay-for-what-you-use. With tracing off (the
/// default), a testbed minute must be no slower than the same run with
/// tracing fully on, within measurement noise — min-of-trials on both
/// sides, interleaved to cancel machine drift.
fn bench_trace_overhead(_c: &mut Criterion) {
    fn run_minute(trace: TraceConfig) -> Duration {
        let apps = synthetic_suite(10, &DummyAppConfig::default(), 3);
        let mut config = TestbedConfig::new(System::ApeCache, apps);
        config.schedule = ScheduleConfig {
            apps: 10,
            duration: SimDuration::from_mins(1),
            ..ScheduleConfig::default()
        };
        config.trace = trace;
        let mut bed = build(&config);
        let start = Instant::now();
        bed.world.run_for(SimDuration::from_mins(1));
        start.elapsed()
    }

    const TRIALS: usize = 5;
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..TRIALS {
        off = off.min(run_minute(TraceConfig::default()));
        on = on.min(run_minute(TraceConfig::enabled()));
    }
    println!(
        "bench testbed/minute_trace_off {:>26} min-of-{TRIALS}",
        format!("{off:?}")
    );
    println!(
        "bench testbed/minute_trace_on  {:>26} min-of-{TRIALS}",
        format!("{on:?}")
    );
    let budget = on.mul_f64(1.05) + Duration::from_millis(10);
    assert!(
        off <= budget,
        "tracing-off run ({off:?}) exceeds traced run + 5% + 10ms ({budget:?}) — \
         the disabled-tracing fast path regressed"
    );
}

/// Guard: the self-profiler is zero-cost when off. With the profiler off
/// (the default), a testbed minute must be no slower than the same run
/// with profiling fully on, within measurement noise — min-of-trials on
/// both sides, interleaved to cancel machine drift (the PR 2 trace-guard
/// recipe).
fn bench_profiler_overhead(_c: &mut Criterion) {
    fn run_minute(profiler: bool) -> Duration {
        let apps = synthetic_suite(10, &DummyAppConfig::default(), 3);
        let mut config = TestbedConfig::new(System::ApeCache, apps);
        config.schedule = ScheduleConfig {
            apps: 10,
            duration: SimDuration::from_mins(1),
            ..ScheduleConfig::default()
        };
        config.profiler = profiler;
        let mut bed = build(&config);
        let start = Instant::now();
        bed.world.run_for(SimDuration::from_mins(1));
        start.elapsed()
    }

    const TRIALS: usize = 5;
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..TRIALS {
        off = off.min(run_minute(false));
        on = on.min(run_minute(true));
    }
    println!(
        "bench testbed/minute_profiler_off {:>23} min-of-{TRIALS}",
        format!("{off:?}")
    );
    println!(
        "bench testbed/minute_profiler_on  {:>23} min-of-{TRIALS}",
        format!("{on:?}")
    );
    let budget = on.mul_f64(1.05) + Duration::from_millis(10);
    assert!(
        off <= budget,
        "profiler-off run ({off:?}) exceeds profiled run + 5% + 10ms ({budget:?}) — \
         the disabled-profiler fast path regressed"
    );
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_testbed_minute,
    bench_trace_overhead,
    bench_profiler_overhead
);
criterion_main!(benches);
