//! DNS wire-codec benchmarks: the encode/decode cost a router-class CPU
//! pays per DNS-Cache message (the paper measured +0.02 ms per query on
//! an 880 MHz MIPS core; the codec must be far below that).

use ape_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ape_dnswire::{CacheFlag, CacheTuple, DnsMessage, DomainName, UrlHash};

fn request(tuples: usize) -> DnsMessage {
    let name: DomainName = "api.movietrailer.example".parse().expect("static");
    let hashes: Vec<UrlHash> = (0..tuples)
        .map(|i| UrlHash::of(&format!("http://api.movietrailer.example/obj{i}")))
        .collect();
    DnsMessage::dns_cache_request(42, name, &hashes)
}

fn response(tuples: usize) -> DnsMessage {
    let query = request(1);
    let list: Vec<CacheTuple> = (0..tuples)
        .map(|i| {
            CacheTuple::new(
                UrlHash::of(&format!("http://api.movietrailer.example/obj{i}")),
                match i % 3 {
                    0 => CacheFlag::Hit,
                    1 => CacheFlag::Miss,
                    _ => CacheFlag::Delegation,
                },
            )
        })
        .collect();
    DnsMessage::dns_cache_response(&query, std::net::Ipv4Addr::new(10, 0, 0, 2), 60, list)
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_encode");
    for &n in &[1usize, 8, 64] {
        let req = request(n);
        group.bench_with_input(BenchmarkId::new("request", n), &req, |b, m| {
            b.iter(|| m.encode());
        });
        let rsp = response(n);
        group.bench_with_input(BenchmarkId::new("response", n), &rsp, |b, m| {
            b.iter(|| m.encode());
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_decode");
    for &n in &[1usize, 8, 64] {
        let wire = request(n).encode();
        group.bench_with_input(BenchmarkId::new("request", n), &wire, |b, w| {
            b.iter(|| DnsMessage::decode(w).expect("valid"));
        });
        let wire = response(n).encode();
        group.bench_with_input(BenchmarkId::new("response", n), &wire, |b, w| {
            b.iter(|| DnsMessage::decode(w).expect("valid"));
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let url = "http://api.movietrailer.example/thumbnail?name=the-long-movie-title&sz=big";
    c.bench_function("url_hash", |b| b.iter(|| UrlHash::of(url)));
}

criterion_group!(benches, bench_encode, bench_decode, bench_hashing);
criterion_main!(benches);
