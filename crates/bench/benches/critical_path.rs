//! App-model benchmarks: DAG construction, critical-path analysis and
//! priority derivation — the compile-time side of the programming model.

use ape_appdag::{generate_app, movie_trailer, AppDag, AppId, DummyAppConfig, ObjectSpec};
use ape_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ape_cachealg::Priority;
use ape_httpsim::Url;
use ape_simnet::{SimDuration, SimRng};

/// A wide layered DAG with `layers` stages of `width` objects each.
fn layered_dag(layers: usize, width: usize) -> AppDag {
    let mut b = AppDag::builder();
    let mut previous = Vec::new();
    for layer in 0..layers {
        let mut current = Vec::new();
        for w in 0..width {
            let idx = b.object(ObjectSpec {
                name: format!("o{layer}_{w}"),
                url: Url::parse(&format!("http://bench.example/o{layer}x{w}")).expect("static"),
                size: 10_000 + (w as u64) * 1_000,
                ttl: SimDuration::from_mins(30),
                remote_latency: SimDuration::from_millis(20 + (w as u64 % 30)),
                priority: Priority::LOW,
            });
            for &p in &previous {
                b.dep(p, idx);
            }
            current.push(idx);
        }
        previous = current;
    }
    b.build().expect("layered DAG is acyclic")
}

fn bench_critical_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_path");
    for &(layers, width) in &[(3usize, 4usize), (6, 8), (10, 16)] {
        let dag = layered_dag(layers, width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}x{width}")),
            &dag,
            |b, dag| b.iter(|| dag.critical_path()),
        );
    }
    group.finish();
}

fn bench_derive_priorities(c: &mut Criterion) {
    let dag = layered_dag(6, 8);
    c.bench_function("derive_priorities_6x8", |b| {
        b.iter_with_setup(|| dag.clone(), |mut d| d.derive_priorities())
    });
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate_dummy_app", |b| {
        let config = DummyAppConfig::default();
        let mut rng = SimRng::seed_from(5);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            generate_app(AppId::new(i), &config, &mut rng)
        })
    });
    c.bench_function("movie_trailer_model", |b| {
        b.iter(|| movie_trailer(AppId::new(0)))
    });
}

criterion_group!(
    benches,
    bench_critical_path,
    bench_derive_priorities,
    bench_generation
);
criterion_main!(benches);
