//! Cache-store and PACM-support primitive benchmarks: the per-request
//! costs on the AP's data path (lookup, admit) and the per-window costs
//! (EWMA roll, Gini).

use ape_bench::microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ape_cachealg::{
    gini, AdmitOutcome, AppId, CacheManager, CacheStore, FrequencyTracker, ObjectMeta, PacmConfig,
    PacmPolicy, Priority,
};
use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimRng, SimTime};

fn meta(i: usize, size: u64) -> ObjectMeta {
    ObjectMeta {
        key: UrlHash::of(&format!("http://bench/{i}")),
        app: AppId::new((i % 30) as u32),
        size,
        priority: if i.is_multiple_of(3) {
            Priority::HIGH
        } else {
            Priority::LOW
        },
        expires_at: SimTime::from_secs(3600),
        fetch_latency: SimDuration::from_millis(30),
    }
}

fn bench_store(c: &mut Criterion) {
    let mut store = CacheStore::new(5_000_000, 500_000);
    for i in 0..100 {
        store.insert(meta(i, 40_000), SimTime::ZERO);
    }
    let hot = UrlHash::of("http://bench/50");
    let cold = UrlHash::of("http://bench/99999");
    c.bench_function("store_lookup_hit", |b| {
        b.iter(|| store.lookup(hot, SimTime::from_secs(1)))
    });
    c.bench_function("store_lookup_absent", |b| {
        b.iter(|| store.lookup(cold, SimTime::from_secs(1)))
    });
    c.bench_function("store_peek", |b| {
        b.iter(|| store.peek(hot, SimTime::from_secs(1)))
    });
}

fn bench_admit_under_pressure(c: &mut Criterion) {
    c.bench_function("pacm_admit_evicting", |b| {
        b.iter_with_setup(
            || {
                let mut manager = CacheManager::new(
                    CacheStore::new(5_000_000, 500_000),
                    PacmPolicy::new(PacmConfig::default()),
                );
                for i in 0..120 {
                    let out = manager.admit(meta(i, 40_000), SimTime::ZERO);
                    if matches!(out, AdmitOutcome::Blocked) {
                        unreachable!("bench objects are under the threshold");
                    }
                }
                manager
            },
            |mut manager| {
                manager.admit(meta(9_999, 80_000), SimTime::from_secs(1));
            },
        )
    });
}

fn bench_frequency_tracker(c: &mut Criterion) {
    c.bench_function("ewma_record_and_roll", |b| {
        let mut tracker = FrequencyTracker::new(0.7);
        let mut tick = 0u64;
        b.iter(|| {
            for app in 0..30 {
                tracker.record(AppId::new(app));
            }
            tick += 60;
            tracker.roll(SimTime::from_secs(tick));
        })
    });
}

fn bench_gini(c: &mut Criterion) {
    let mut group = c.benchmark_group("gini");
    let mut rng = SimRng::seed_from(3);
    for &n in &[10usize, 100, 1000] {
        let shares: Vec<f64> = (0..n).map(|_| rng.uniform_f64(0.0, 100.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &shares, |b, s| {
            b.iter(|| gini(s))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_store,
    bench_admit_under_pressure,
    bench_frequency_tracker,
    bench_gini
);
criterion_main!(benches);
