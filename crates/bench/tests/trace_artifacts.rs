//! Integration pins for the `trace` artifact: the exported telemetry is
//! well-formed, covers every system, and is byte-identical across runner
//! thread counts for the same seed.

use ape_bench::{trace_artifacts, ReproOptions};

const SYSTEM_LABELS: [&str; 4] = ["APE-CACHE", "APE-CACHE-LRU", "Wi-Cache", "Edge Cache"];

fn opts(threads: usize) -> ReproOptions {
    ReproOptions {
        minutes: 2,
        trials: 2,
        micro_trials: 1,
        threads,
        seed: 42,
    }
}

/// A structural check for one JSONL line — the schema the docs promise,
/// without a JSON parser dependency.
fn check_jsonl_line(line: &str) {
    assert!(
        line.starts_with("{\"system\":\"") && line.ends_with('}'),
        "malformed JSONL line: {line}"
    );
    if line.contains("\"histogram\":\"") {
        // Histogram-health summary line, not a span event.
        for key in ["\"count\":", "\"dropped_samples\":"] {
            assert!(line.contains(key), "line missing {key}: {line}");
        }
        let dropped = line
            .rsplit_once("\"dropped_samples\":")
            .map(|(_, rest)| rest.trim_end_matches('}'))
            .expect("dropped_samples field");
        dropped
            .parse::<u64>()
            .expect("dropped_samples is an integer");
        return;
    }
    for key in [
        "\"run\":",
        "\"trace\":",
        "\"span\":",
        "\"parent\":",
        "\"node\":\"",
        "\"kind\":\"",
        "\"phase\":\"",
        "\"at_ns\":",
    ] {
        assert!(line.contains(key), "line missing {key}: {line}");
    }
    let at = line
        .rsplit_once("\"at_ns\":")
        .map(|(_, rest)| rest.trim_end_matches('}'))
        .expect("at_ns field");
    at.parse::<u64>().expect("at_ns is an integer");
}

#[test]
fn trace_artifacts_are_complete_and_deterministic_across_threads() {
    let sequential = trace_artifacts(&opts(1));
    let parallel = trace_artifacts(&opts(4));

    // Byte-identical telemetry regardless of worker-pool size.
    assert_eq!(sequential.report, parallel.report);
    assert_eq!(sequential.jsonl, parallel.jsonl);
    assert_eq!(sequential.prometheus, parallel.prometheus);

    // Every system appears in every artifact.
    for label in SYSTEM_LABELS {
        assert!(
            sequential
                .report
                .contains(&format!("latency attribution — {label}")),
            "report missing attribution table for {label}"
        );
        assert!(
            sequential
                .report
                .contains(&format!("critical paths — {label}")),
            "report missing critical paths for {label}"
        );
        assert!(
            sequential
                .jsonl
                .contains(&format!("{{\"system\":\"{label}\"")),
            "jsonl missing events for {label}"
        );
    }

    // The span log is non-trivial and every line is well-formed.
    let lines: Vec<&str> = sequential.jsonl.lines().collect();
    assert!(lines.len() > 100, "only {} span events", lines.len());
    for line in &lines {
        check_jsonl_line(line);
    }
    // Both trials contributed events.
    assert!(sequential.jsonl.contains("\"run\":0,"));
    assert!(sequential.jsonl.contains("\"run\":1,"));
    // Histogram-health summaries rode along, with zero drops on a clean run.
    assert!(
        sequential
            .jsonl
            .contains("\"histogram\":\"client.app_latency_ms\""),
        "jsonl missing histogram summaries"
    );
    assert!(sequential.jsonl.contains("\"dropped_samples\":0}"));

    // Prometheus snapshot exports the stage summaries and run counters.
    for needle in [
        "apecache_trace_stage_latency_ms",
        "apecache_trace_traces_total",
        "apecache_client_fetches_total",
    ] {
        assert!(
            sequential.prometheus.contains(needle),
            "prometheus output missing {needle}"
        );
    }
}
