//! The canonical metric-name registry.
//!
//! Every metric key used by the testbed nodes and harnesses lives here (the
//! three `net.*` keys are owned by `ape_simnet`, which records them, and are
//! re-exported so this module is the single import point). Using constants
//! instead of inline string literals means a typo fails to compile instead
//! of silently reporting zero.

pub use ape_simnet::keys::{NET_BYTES, NET_DROPPED, NET_FAULT_DROPPED, NET_MESSAGES};

// --- AP (access point) --------------------------------------------------

/// DNS queries of any kind arriving at the AP.
pub const AP_DNS_QUERIES: &str = "ap.dns_queries";
/// DNS-Cache (piggybacked) queries arriving at the AP.
pub const AP_DNS_CACHE_QUERIES: &str = "ap.dns_cache_queries";
/// DNS queries answered from the AP's dnsmasq record cache (no upstream).
pub const AP_DNS_CACHE_HITS: &str = "ap.dns_cache_hits";
/// DNS-Cache queries answered with a dummy IP, all requested URLs cached.
pub const AP_SHORT_CIRCUITS: &str = "ap.short_circuits";
/// DNS queries forwarded to the upstream resolver.
pub const AP_DNS_FORWARDS: &str = "ap.dns_forwards";
/// Objects served straight from the AP cache.
pub const AP_CACHE_HITS: &str = "ap.cache_hits";
/// Data (HTTP) requests arriving at the AP.
pub const AP_DATA_REQUESTS: &str = "ap.data_requests";
/// Requests the AP served by fetching without caching (block-listed).
pub const AP_BLOCKED_SERVES: &str = "ap.blocked_serves";
/// Delegated fetches the AP started on behalf of clients.
pub const AP_DELEGATIONS: &str = "ap.delegations";
/// Delegations abandoned because upstream DNS resolution failed.
pub const AP_DELEGATION_DNS_FAILURES: &str = "ap.delegation_dns_failures";
/// Upstream fetch time of delegated objects, milliseconds (histogram).
pub const AP_DELEGATION_FETCH_MS: &str = "ap.delegation_fetch_ms";
/// Objects admitted into the AP cache.
pub const AP_ADMISSIONS: &str = "ap.admissions";
/// Objects evicted from the AP cache.
pub const AP_EVICTIONS: &str = "ap.evictions";
/// Objects the admission policy declined to cache.
pub const AP_ADMIT_DECLINED: &str = "ap.admit_declined";
/// Objects added to the block list (too large to cache).
pub const AP_BLOCK_LISTED: &str = "ap.block_listed";
/// Cache entries purged by TTL expiry sweeps.
pub const AP_TTL_PURGES: &str = "ap.ttl_purges";
/// Eviction-solver invocations (PACM `select_victims` calls).
pub const AP_EVICT_SOLVER_RUNS: &str = "ap.evict_solver_runs";
/// Cached objects examined by the eviction solver.
pub const AP_EVICT_ITEMS: &str = "ap.evict_items";
/// Eviction decisions resolved by the knapsack DP.
pub const AP_EVICT_DP_RUNS: &str = "ap.evict_dp_runs";
/// Eviction decisions resolved by the greedy fallback.
pub const AP_EVICT_GREEDY_RUNS: &str = "ap.evict_greedy_runs";
/// Eviction decisions short-circuited (survivors fit; DP skipped).
pub const AP_EVICT_SHORT_CIRCUITS: &str = "ap.evict_short_circuits";
/// Objects evicted outright by pre-solver reductions (expired/oversized).
pub const AP_EVICT_FORCED: &str = "ap.evict_forced";
/// Objects evicted by the fairness-repair loop.
pub const AP_EVICT_REPAIRS: &str = "ap.evict_repairs";
/// Prefetch delegations started from client hints.
pub const AP_PREFETCHES: &str = "ap.prefetches";
/// Upstream DNS forwards retransmitted by the pending-forward reaper.
pub const AP_DNS_UPSTREAM_RETRIES: &str = "ap.dns_upstream_retries";
/// Pending forwards abandoned (client answered SERVFAIL) after the retry.
pub const AP_DNS_UPSTREAM_GIVE_UPS: &str = "ap.dns_upstream_give_ups";
/// Stuck delegated fetches restarted by the delegation reaper.
pub const AP_DELEGATION_RETRIES: &str = "ap.delegation_retries";
/// Delegations abandoned (waiters answered 504) after the retry.
pub const AP_DELEGATION_REAPS: &str = "ap.delegation_reaps";
/// AP CPU utilization samples, 0..1 (time series).
pub const AP_CPU: &str = "ap.cpu";
/// APE-CACHE memory on the AP, MB (time series).
pub const AP_APE_MEM_MB: &str = "ap.ape_mem_mb";
/// Total AP memory in use, MB (time series).
pub const AP_TOTAL_MEM_MB: &str = "ap.total_mem_mb";

// --- Client -------------------------------------------------------------

/// Object fetches started.
pub const CLIENT_FETCHES: &str = "client.fetches";
/// Fetches that failed (DNS give-up, HTTP error…).
pub const CLIENT_FETCH_FAILURES: &str = "client.fetch_failures";
/// App executions abandoned because a fetch failed.
pub const CLIENT_FAILED_EXECUTIONS: &str = "client.failed_executions";
/// DNS queries sent.
pub const CLIENT_DNS_QUERIES: &str = "client.dns_queries";
/// DNS retransmissions after timeout.
pub const CLIENT_DNS_RETRIES: &str = "client.dns_retries";
/// DNS queries abandoned after the retry budget.
pub const CLIENT_DNS_GIVE_UPS: &str = "client.dns_give_ups";
/// HTTP/lookup requests re-issued after a response timeout.
pub const CLIENT_HTTP_RETRIES: &str = "client.http_retries";
/// Fetches abandoned after the HTTP retry budget.
pub const CLIENT_HTTP_GIVE_UPS: &str = "client.http_give_ups";
/// Wi-Cache controller lookups sent.
pub const CLIENT_WICACHE_LOOKUPS: &str = "client.wicache_lookups";
/// Fetches answered from the AP cache (client-observed).
pub const CLIENT_CACHE_HITS: &str = "client.cache_hits";
/// Prefetch-hint messages sent to the AP.
pub const CLIENT_PREFETCH_HINTS: &str = "client.prefetch_hints";
/// Cache-lookup latency over actual lookup operations, ms (histogram).
pub const CLIENT_LOOKUP_QUERY_MS: &str = "client.lookup_query_ms";
/// Lookup-stage latency over all fetches (0 when skipped), ms (histogram).
pub const CLIENT_LOOKUP_OP_MS: &str = "client.lookup_op_ms";
/// Retrieval latency over all fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_MS: &str = "client.retrieval_ms";
/// Retrieval latency of AP cache hits, ms (histogram).
pub const CLIENT_RETRIEVAL_HIT_MS: &str = "client.retrieval_hit_ms";
/// Retrieval latency of delegated fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_DELEGATION_MS: &str = "client.retrieval_delegation_ms";
/// Retrieval latency of edge fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_EDGE_MS: &str = "client.retrieval_edge_ms";
/// Whole-object latency (lookup + retrieval), ms (histogram).
pub const CLIENT_OBJECT_TOTAL_MS: &str = "client.object_total_ms";
/// App-level latency across all apps, ms (histogram).
pub const CLIENT_APP_LATENCY_MS: &str = "client.app_latency_ms";
/// Prefix of the per-app latency histograms (`client.app_latency_ms.<app>`).
pub const CLIENT_APP_LATENCY_MS_PREFIX: &str = "client.app_latency_ms.";

/// Per-app latency histogram key for `app`.
pub fn client_app_latency_ms(app: &str) -> String {
    format!("{CLIENT_APP_LATENCY_MS_PREFIX}{app}")
}

// --- Edge ---------------------------------------------------------------

/// Edge cache misses filled from the origin.
pub const EDGE_ORIGIN_FETCHES: &str = "edge.origin_fetches";

// --- Multi-AP cooperation & roaming -------------------------------------

/// Advertisements the Wi-Cache controller dropped (unregistered AP).
pub const WICACHE_ADVERT_DROPPED: &str = "wicache.advert_dropped";
/// Peer fetches the AP sent to neighbor APs before going upstream.
pub const AP_PEER_FETCHES: &str = "ap.peer_fetches";
/// Peer fetches answered from a neighbor AP's cache.
pub const AP_PEER_HITS: &str = "ap.peer_hits";
/// Peer fetches the neighbor missed (fell back to the edge/origin path).
pub const AP_PEER_MISSES: &str = "ap.peer_misses";
/// Roam notices received (a homed client re-homed to a neighbor AP).
pub const AP_ROAM_DEPARTURES: &str = "ap.roam_departures";
/// Pending DNS forwards cancelled because their client roamed away.
pub const AP_ROAM_CANCELLED_FORWARDS: &str = "ap.roam_cancelled_forwards";
/// Delegation waiters cancelled because their client roamed away.
pub const AP_ROAM_CANCELLED_WAITERS: &str = "ap.roam_cancelled_waiters";
/// Roams a client executed (re-homed to a neighbor AP).
pub const CLIENT_ROAMS: &str = "client.roams";

// --- Machine-readable registry -------------------------------------------

/// Every static metric-name constant in this module as `(ident, value)`
/// pairs, `net.*` re-exports included.
///
/// This is the export `ape-lint`'s metric-registry rule resolves against:
/// a string literal at an `incr`/`observe`/`record_point` call site must
/// match one of these values (or a [`DYNAMIC_PREFIXES`] prefix), and an
/// `incr_id`/`observe_id` argument must name one of these idents. Keeping
/// the table here — next to the constants — means adding a metric is one
/// edit, and the drift tests below keep it in lockstep with [`id::ALL`].
pub const REGISTRY: &[(&str, &str)] = &[
    ("NET_MESSAGES", NET_MESSAGES),
    ("NET_BYTES", NET_BYTES),
    ("NET_DROPPED", NET_DROPPED),
    ("NET_FAULT_DROPPED", NET_FAULT_DROPPED),
    ("AP_DNS_QUERIES", AP_DNS_QUERIES),
    ("AP_DNS_CACHE_QUERIES", AP_DNS_CACHE_QUERIES),
    ("AP_DNS_CACHE_HITS", AP_DNS_CACHE_HITS),
    ("AP_SHORT_CIRCUITS", AP_SHORT_CIRCUITS),
    ("AP_DNS_FORWARDS", AP_DNS_FORWARDS),
    ("AP_CACHE_HITS", AP_CACHE_HITS),
    ("AP_DATA_REQUESTS", AP_DATA_REQUESTS),
    ("AP_BLOCKED_SERVES", AP_BLOCKED_SERVES),
    ("AP_DELEGATIONS", AP_DELEGATIONS),
    ("AP_DELEGATION_DNS_FAILURES", AP_DELEGATION_DNS_FAILURES),
    ("AP_DELEGATION_FETCH_MS", AP_DELEGATION_FETCH_MS),
    ("AP_ADMISSIONS", AP_ADMISSIONS),
    ("AP_EVICTIONS", AP_EVICTIONS),
    ("AP_ADMIT_DECLINED", AP_ADMIT_DECLINED),
    ("AP_BLOCK_LISTED", AP_BLOCK_LISTED),
    ("AP_TTL_PURGES", AP_TTL_PURGES),
    ("AP_EVICT_SOLVER_RUNS", AP_EVICT_SOLVER_RUNS),
    ("AP_EVICT_ITEMS", AP_EVICT_ITEMS),
    ("AP_EVICT_DP_RUNS", AP_EVICT_DP_RUNS),
    ("AP_EVICT_GREEDY_RUNS", AP_EVICT_GREEDY_RUNS),
    ("AP_EVICT_SHORT_CIRCUITS", AP_EVICT_SHORT_CIRCUITS),
    ("AP_EVICT_FORCED", AP_EVICT_FORCED),
    ("AP_EVICT_REPAIRS", AP_EVICT_REPAIRS),
    ("AP_PREFETCHES", AP_PREFETCHES),
    ("AP_DNS_UPSTREAM_RETRIES", AP_DNS_UPSTREAM_RETRIES),
    ("AP_DNS_UPSTREAM_GIVE_UPS", AP_DNS_UPSTREAM_GIVE_UPS),
    ("AP_DELEGATION_RETRIES", AP_DELEGATION_RETRIES),
    ("AP_DELEGATION_REAPS", AP_DELEGATION_REAPS),
    ("AP_CPU", AP_CPU),
    ("AP_APE_MEM_MB", AP_APE_MEM_MB),
    ("AP_TOTAL_MEM_MB", AP_TOTAL_MEM_MB),
    ("CLIENT_FETCHES", CLIENT_FETCHES),
    ("CLIENT_FETCH_FAILURES", CLIENT_FETCH_FAILURES),
    ("CLIENT_FAILED_EXECUTIONS", CLIENT_FAILED_EXECUTIONS),
    ("CLIENT_DNS_QUERIES", CLIENT_DNS_QUERIES),
    ("CLIENT_DNS_RETRIES", CLIENT_DNS_RETRIES),
    ("CLIENT_DNS_GIVE_UPS", CLIENT_DNS_GIVE_UPS),
    ("CLIENT_HTTP_RETRIES", CLIENT_HTTP_RETRIES),
    ("CLIENT_HTTP_GIVE_UPS", CLIENT_HTTP_GIVE_UPS),
    ("CLIENT_WICACHE_LOOKUPS", CLIENT_WICACHE_LOOKUPS),
    ("CLIENT_CACHE_HITS", CLIENT_CACHE_HITS),
    ("CLIENT_PREFETCH_HINTS", CLIENT_PREFETCH_HINTS),
    ("CLIENT_LOOKUP_QUERY_MS", CLIENT_LOOKUP_QUERY_MS),
    ("CLIENT_LOOKUP_OP_MS", CLIENT_LOOKUP_OP_MS),
    ("CLIENT_RETRIEVAL_MS", CLIENT_RETRIEVAL_MS),
    ("CLIENT_RETRIEVAL_HIT_MS", CLIENT_RETRIEVAL_HIT_MS),
    (
        "CLIENT_RETRIEVAL_DELEGATION_MS",
        CLIENT_RETRIEVAL_DELEGATION_MS,
    ),
    ("CLIENT_RETRIEVAL_EDGE_MS", CLIENT_RETRIEVAL_EDGE_MS),
    ("CLIENT_OBJECT_TOTAL_MS", CLIENT_OBJECT_TOTAL_MS),
    ("CLIENT_APP_LATENCY_MS", CLIENT_APP_LATENCY_MS),
    ("EDGE_ORIGIN_FETCHES", EDGE_ORIGIN_FETCHES),
    ("WICACHE_ADVERT_DROPPED", WICACHE_ADVERT_DROPPED),
    ("AP_PEER_FETCHES", AP_PEER_FETCHES),
    ("AP_PEER_HITS", AP_PEER_HITS),
    ("AP_PEER_MISSES", AP_PEER_MISSES),
    ("AP_ROAM_DEPARTURES", AP_ROAM_DEPARTURES),
    ("AP_ROAM_CANCELLED_FORWARDS", AP_ROAM_CANCELLED_FORWARDS),
    ("AP_ROAM_CANCELLED_WAITERS", AP_ROAM_CANCELLED_WAITERS),
    ("CLIENT_ROAMS", CLIENT_ROAMS),
];

/// Prefixes of dynamically-built metric names as `(ident, prefix)` pairs.
/// A name starting with one of these prefixes (with a non-empty suffix) is
/// registered even though the full key is not in [`REGISTRY`]; the helper
/// next to each prefix constant is the sanctioned way to build such keys.
pub const DYNAMIC_PREFIXES: &[(&str, &str)] =
    &[("CLIENT_APP_LATENCY_MS_PREFIX", CLIENT_APP_LATENCY_MS_PREFIX)];

/// Interned [`MetricId`](ape_simnet::MetricId)s for every static key above.
///
/// The hot recording paths (`incr_id`/`observe_id`/`record_point_id`) index
/// a slot table by these instead of hashing a string, so steady-state metric
/// recording does zero string work. Indices `0..FIRST_FREE_INDEX` belong to
/// `ape_simnet` (the `net.*` keys, re-exported here); the rest are allocated
/// densely in declaration order. Only static keys get ids — the dynamic
/// per-app histograms ([`client_app_latency_ms`]) stay on the string API.
pub mod id {
    use ape_simnet::keys::id::FIRST_FREE_INDEX;
    pub use ape_simnet::keys::id::{NET_BYTES, NET_DROPPED, NET_FAULT_DROPPED, NET_MESSAGES};
    use ape_simnet::MetricId;

    const BASE: u16 = FIRST_FREE_INDEX;

    /// Interned [`super::AP_DNS_QUERIES`].
    pub const AP_DNS_QUERIES: MetricId = MetricId::new(BASE, super::AP_DNS_QUERIES);
    /// Interned [`super::AP_DNS_CACHE_QUERIES`].
    pub const AP_DNS_CACHE_QUERIES: MetricId = MetricId::new(BASE + 1, super::AP_DNS_CACHE_QUERIES);
    /// Interned [`super::AP_DNS_CACHE_HITS`].
    pub const AP_DNS_CACHE_HITS: MetricId = MetricId::new(BASE + 2, super::AP_DNS_CACHE_HITS);
    /// Interned [`super::AP_SHORT_CIRCUITS`].
    pub const AP_SHORT_CIRCUITS: MetricId = MetricId::new(BASE + 3, super::AP_SHORT_CIRCUITS);
    /// Interned [`super::AP_DNS_FORWARDS`].
    pub const AP_DNS_FORWARDS: MetricId = MetricId::new(BASE + 4, super::AP_DNS_FORWARDS);
    /// Interned [`super::AP_CACHE_HITS`].
    pub const AP_CACHE_HITS: MetricId = MetricId::new(BASE + 5, super::AP_CACHE_HITS);
    /// Interned [`super::AP_DATA_REQUESTS`].
    pub const AP_DATA_REQUESTS: MetricId = MetricId::new(BASE + 6, super::AP_DATA_REQUESTS);
    /// Interned [`super::AP_BLOCKED_SERVES`].
    pub const AP_BLOCKED_SERVES: MetricId = MetricId::new(BASE + 7, super::AP_BLOCKED_SERVES);
    /// Interned [`super::AP_DELEGATIONS`].
    pub const AP_DELEGATIONS: MetricId = MetricId::new(BASE + 8, super::AP_DELEGATIONS);
    /// Interned [`super::AP_DELEGATION_DNS_FAILURES`].
    pub const AP_DELEGATION_DNS_FAILURES: MetricId =
        MetricId::new(BASE + 9, super::AP_DELEGATION_DNS_FAILURES);
    /// Interned [`super::AP_DELEGATION_FETCH_MS`].
    pub const AP_DELEGATION_FETCH_MS: MetricId =
        MetricId::new(BASE + 10, super::AP_DELEGATION_FETCH_MS);
    /// Interned [`super::AP_ADMISSIONS`].
    pub const AP_ADMISSIONS: MetricId = MetricId::new(BASE + 11, super::AP_ADMISSIONS);
    /// Interned [`super::AP_EVICTIONS`].
    pub const AP_EVICTIONS: MetricId = MetricId::new(BASE + 12, super::AP_EVICTIONS);
    /// Interned [`super::AP_ADMIT_DECLINED`].
    pub const AP_ADMIT_DECLINED: MetricId = MetricId::new(BASE + 13, super::AP_ADMIT_DECLINED);
    /// Interned [`super::AP_BLOCK_LISTED`].
    pub const AP_BLOCK_LISTED: MetricId = MetricId::new(BASE + 14, super::AP_BLOCK_LISTED);
    /// Interned [`super::AP_TTL_PURGES`].
    pub const AP_TTL_PURGES: MetricId = MetricId::new(BASE + 15, super::AP_TTL_PURGES);
    /// Interned [`super::AP_EVICT_SOLVER_RUNS`].
    pub const AP_EVICT_SOLVER_RUNS: MetricId =
        MetricId::new(BASE + 16, super::AP_EVICT_SOLVER_RUNS);
    /// Interned [`super::AP_EVICT_ITEMS`].
    pub const AP_EVICT_ITEMS: MetricId = MetricId::new(BASE + 17, super::AP_EVICT_ITEMS);
    /// Interned [`super::AP_EVICT_DP_RUNS`].
    pub const AP_EVICT_DP_RUNS: MetricId = MetricId::new(BASE + 18, super::AP_EVICT_DP_RUNS);
    /// Interned [`super::AP_EVICT_GREEDY_RUNS`].
    pub const AP_EVICT_GREEDY_RUNS: MetricId =
        MetricId::new(BASE + 19, super::AP_EVICT_GREEDY_RUNS);
    /// Interned [`super::AP_EVICT_SHORT_CIRCUITS`].
    pub const AP_EVICT_SHORT_CIRCUITS: MetricId =
        MetricId::new(BASE + 20, super::AP_EVICT_SHORT_CIRCUITS);
    /// Interned [`super::AP_EVICT_FORCED`].
    pub const AP_EVICT_FORCED: MetricId = MetricId::new(BASE + 21, super::AP_EVICT_FORCED);
    /// Interned [`super::AP_EVICT_REPAIRS`].
    pub const AP_EVICT_REPAIRS: MetricId = MetricId::new(BASE + 22, super::AP_EVICT_REPAIRS);
    /// Interned [`super::AP_PREFETCHES`].
    pub const AP_PREFETCHES: MetricId = MetricId::new(BASE + 23, super::AP_PREFETCHES);
    /// Interned [`super::AP_DNS_UPSTREAM_RETRIES`].
    pub const AP_DNS_UPSTREAM_RETRIES: MetricId =
        MetricId::new(BASE + 24, super::AP_DNS_UPSTREAM_RETRIES);
    /// Interned [`super::AP_DNS_UPSTREAM_GIVE_UPS`].
    pub const AP_DNS_UPSTREAM_GIVE_UPS: MetricId =
        MetricId::new(BASE + 25, super::AP_DNS_UPSTREAM_GIVE_UPS);
    /// Interned [`super::AP_DELEGATION_RETRIES`].
    pub const AP_DELEGATION_RETRIES: MetricId =
        MetricId::new(BASE + 26, super::AP_DELEGATION_RETRIES);
    /// Interned [`super::AP_DELEGATION_REAPS`].
    pub const AP_DELEGATION_REAPS: MetricId = MetricId::new(BASE + 27, super::AP_DELEGATION_REAPS);
    /// Interned [`super::AP_CPU`].
    pub const AP_CPU: MetricId = MetricId::new(BASE + 28, super::AP_CPU);
    /// Interned [`super::AP_APE_MEM_MB`].
    pub const AP_APE_MEM_MB: MetricId = MetricId::new(BASE + 29, super::AP_APE_MEM_MB);
    /// Interned [`super::AP_TOTAL_MEM_MB`].
    pub const AP_TOTAL_MEM_MB: MetricId = MetricId::new(BASE + 30, super::AP_TOTAL_MEM_MB);
    /// Interned [`super::CLIENT_FETCHES`].
    pub const CLIENT_FETCHES: MetricId = MetricId::new(BASE + 31, super::CLIENT_FETCHES);
    /// Interned [`super::CLIENT_FETCH_FAILURES`].
    pub const CLIENT_FETCH_FAILURES: MetricId =
        MetricId::new(BASE + 32, super::CLIENT_FETCH_FAILURES);
    /// Interned [`super::CLIENT_FAILED_EXECUTIONS`].
    pub const CLIENT_FAILED_EXECUTIONS: MetricId =
        MetricId::new(BASE + 33, super::CLIENT_FAILED_EXECUTIONS);
    /// Interned [`super::CLIENT_DNS_QUERIES`].
    pub const CLIENT_DNS_QUERIES: MetricId = MetricId::new(BASE + 34, super::CLIENT_DNS_QUERIES);
    /// Interned [`super::CLIENT_DNS_RETRIES`].
    pub const CLIENT_DNS_RETRIES: MetricId = MetricId::new(BASE + 35, super::CLIENT_DNS_RETRIES);
    /// Interned [`super::CLIENT_DNS_GIVE_UPS`].
    pub const CLIENT_DNS_GIVE_UPS: MetricId = MetricId::new(BASE + 36, super::CLIENT_DNS_GIVE_UPS);
    /// Interned [`super::CLIENT_HTTP_RETRIES`].
    pub const CLIENT_HTTP_RETRIES: MetricId = MetricId::new(BASE + 37, super::CLIENT_HTTP_RETRIES);
    /// Interned [`super::CLIENT_HTTP_GIVE_UPS`].
    pub const CLIENT_HTTP_GIVE_UPS: MetricId =
        MetricId::new(BASE + 38, super::CLIENT_HTTP_GIVE_UPS);
    /// Interned [`super::CLIENT_WICACHE_LOOKUPS`].
    pub const CLIENT_WICACHE_LOOKUPS: MetricId =
        MetricId::new(BASE + 39, super::CLIENT_WICACHE_LOOKUPS);
    /// Interned [`super::CLIENT_CACHE_HITS`].
    pub const CLIENT_CACHE_HITS: MetricId = MetricId::new(BASE + 40, super::CLIENT_CACHE_HITS);
    /// Interned [`super::CLIENT_PREFETCH_HINTS`].
    pub const CLIENT_PREFETCH_HINTS: MetricId =
        MetricId::new(BASE + 41, super::CLIENT_PREFETCH_HINTS);
    /// Interned [`super::CLIENT_LOOKUP_QUERY_MS`].
    pub const CLIENT_LOOKUP_QUERY_MS: MetricId =
        MetricId::new(BASE + 42, super::CLIENT_LOOKUP_QUERY_MS);
    /// Interned [`super::CLIENT_LOOKUP_OP_MS`].
    pub const CLIENT_LOOKUP_OP_MS: MetricId = MetricId::new(BASE + 43, super::CLIENT_LOOKUP_OP_MS);
    /// Interned [`super::CLIENT_RETRIEVAL_MS`].
    pub const CLIENT_RETRIEVAL_MS: MetricId = MetricId::new(BASE + 44, super::CLIENT_RETRIEVAL_MS);
    /// Interned [`super::CLIENT_RETRIEVAL_HIT_MS`].
    pub const CLIENT_RETRIEVAL_HIT_MS: MetricId =
        MetricId::new(BASE + 45, super::CLIENT_RETRIEVAL_HIT_MS);
    /// Interned [`super::CLIENT_RETRIEVAL_DELEGATION_MS`].
    pub const CLIENT_RETRIEVAL_DELEGATION_MS: MetricId =
        MetricId::new(BASE + 46, super::CLIENT_RETRIEVAL_DELEGATION_MS);
    /// Interned [`super::CLIENT_RETRIEVAL_EDGE_MS`].
    pub const CLIENT_RETRIEVAL_EDGE_MS: MetricId =
        MetricId::new(BASE + 47, super::CLIENT_RETRIEVAL_EDGE_MS);
    /// Interned [`super::CLIENT_OBJECT_TOTAL_MS`].
    pub const CLIENT_OBJECT_TOTAL_MS: MetricId =
        MetricId::new(BASE + 48, super::CLIENT_OBJECT_TOTAL_MS);
    /// Interned [`super::CLIENT_APP_LATENCY_MS`].
    pub const CLIENT_APP_LATENCY_MS: MetricId =
        MetricId::new(BASE + 49, super::CLIENT_APP_LATENCY_MS);
    /// Interned [`super::EDGE_ORIGIN_FETCHES`].
    pub const EDGE_ORIGIN_FETCHES: MetricId = MetricId::new(BASE + 50, super::EDGE_ORIGIN_FETCHES);
    /// Interned [`super::WICACHE_ADVERT_DROPPED`].
    pub const WICACHE_ADVERT_DROPPED: MetricId =
        MetricId::new(BASE + 51, super::WICACHE_ADVERT_DROPPED);
    /// Interned [`super::AP_PEER_FETCHES`].
    pub const AP_PEER_FETCHES: MetricId = MetricId::new(BASE + 52, super::AP_PEER_FETCHES);
    /// Interned [`super::AP_PEER_HITS`].
    pub const AP_PEER_HITS: MetricId = MetricId::new(BASE + 53, super::AP_PEER_HITS);
    /// Interned [`super::AP_PEER_MISSES`].
    pub const AP_PEER_MISSES: MetricId = MetricId::new(BASE + 54, super::AP_PEER_MISSES);
    /// Interned [`super::AP_ROAM_DEPARTURES`].
    pub const AP_ROAM_DEPARTURES: MetricId = MetricId::new(BASE + 55, super::AP_ROAM_DEPARTURES);
    /// Interned [`super::AP_ROAM_CANCELLED_FORWARDS`].
    pub const AP_ROAM_CANCELLED_FORWARDS: MetricId =
        MetricId::new(BASE + 56, super::AP_ROAM_CANCELLED_FORWARDS);
    /// Interned [`super::AP_ROAM_CANCELLED_WAITERS`].
    pub const AP_ROAM_CANCELLED_WAITERS: MetricId =
        MetricId::new(BASE + 57, super::AP_ROAM_CANCELLED_WAITERS);
    /// Interned [`super::CLIENT_ROAMS`].
    pub const CLIENT_ROAMS: MetricId = MetricId::new(BASE + 58, super::CLIENT_ROAMS);

    /// Every interned id, `net.*` keys included, indexed by
    /// [`MetricId::index`] — the registry the uniqueness test walks.
    pub const ALL: [MetricId; BASE as usize + 59] = [
        NET_MESSAGES,
        NET_BYTES,
        NET_DROPPED,
        NET_FAULT_DROPPED,
        AP_DNS_QUERIES,
        AP_DNS_CACHE_QUERIES,
        AP_DNS_CACHE_HITS,
        AP_SHORT_CIRCUITS,
        AP_DNS_FORWARDS,
        AP_CACHE_HITS,
        AP_DATA_REQUESTS,
        AP_BLOCKED_SERVES,
        AP_DELEGATIONS,
        AP_DELEGATION_DNS_FAILURES,
        AP_DELEGATION_FETCH_MS,
        AP_ADMISSIONS,
        AP_EVICTIONS,
        AP_ADMIT_DECLINED,
        AP_BLOCK_LISTED,
        AP_TTL_PURGES,
        AP_EVICT_SOLVER_RUNS,
        AP_EVICT_ITEMS,
        AP_EVICT_DP_RUNS,
        AP_EVICT_GREEDY_RUNS,
        AP_EVICT_SHORT_CIRCUITS,
        AP_EVICT_FORCED,
        AP_EVICT_REPAIRS,
        AP_PREFETCHES,
        AP_DNS_UPSTREAM_RETRIES,
        AP_DNS_UPSTREAM_GIVE_UPS,
        AP_DELEGATION_RETRIES,
        AP_DELEGATION_REAPS,
        AP_CPU,
        AP_APE_MEM_MB,
        AP_TOTAL_MEM_MB,
        CLIENT_FETCHES,
        CLIENT_FETCH_FAILURES,
        CLIENT_FAILED_EXECUTIONS,
        CLIENT_DNS_QUERIES,
        CLIENT_DNS_RETRIES,
        CLIENT_DNS_GIVE_UPS,
        CLIENT_HTTP_RETRIES,
        CLIENT_HTTP_GIVE_UPS,
        CLIENT_WICACHE_LOOKUPS,
        CLIENT_CACHE_HITS,
        CLIENT_PREFETCH_HINTS,
        CLIENT_LOOKUP_QUERY_MS,
        CLIENT_LOOKUP_OP_MS,
        CLIENT_RETRIEVAL_MS,
        CLIENT_RETRIEVAL_HIT_MS,
        CLIENT_RETRIEVAL_DELEGATION_MS,
        CLIENT_RETRIEVAL_EDGE_MS,
        CLIENT_OBJECT_TOTAL_MS,
        CLIENT_APP_LATENCY_MS,
        EDGE_ORIGIN_FETCHES,
        WICACHE_ADVERT_DROPPED,
        AP_PEER_FETCHES,
        AP_PEER_HITS,
        AP_PEER_MISSES,
        AP_ROAM_DEPARTURES,
        AP_ROAM_CANCELLED_FORWARDS,
        AP_ROAM_CANCELLED_WAITERS,
        CLIENT_ROAMS,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_ids_are_dense_unique_and_named() {
        for (i, id) in id::ALL.iter().enumerate() {
            assert_eq!(id.index(), i, "id {:?} out of registry order", id.name());
        }
        let mut names: Vec<&str> = id::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), id::ALL.len(), "duplicate metric name");
    }

    #[test]
    fn interned_ids_carry_their_string_names() {
        assert_eq!(id::AP_CACHE_HITS.name(), AP_CACHE_HITS);
        assert_eq!(id::CLIENT_APP_LATENCY_MS.name(), CLIENT_APP_LATENCY_MS);
        assert_eq!(id::EDGE_ORIGIN_FETCHES.name(), EDGE_ORIGIN_FETCHES);
        assert_eq!(id::NET_MESSAGES.name(), NET_MESSAGES);
    }

    #[test]
    fn per_app_key_round_trips_through_prefix() {
        let key = client_app_latency_ms("news");
        assert_eq!(key, "client.app_latency_ms.news");
        assert_eq!(key.strip_prefix(CLIENT_APP_LATENCY_MS_PREFIX), Some("news"));
    }

    #[test]
    fn registry_covers_every_interned_id() {
        use std::collections::BTreeSet;
        let values: BTreeSet<&str> = REGISTRY.iter().map(|(_, v)| *v).collect();
        for id in id::ALL.iter() {
            assert!(
                values.contains(id.name()),
                "interned id `{}` missing from REGISTRY",
                id.name()
            );
        }
        // Every static key is interned, so the two tables are the same set.
        assert_eq!(REGISTRY.len(), id::ALL.len(), "REGISTRY/id::ALL drift");
    }

    #[test]
    fn registry_entries_are_unique_and_well_formed() {
        use std::collections::BTreeSet;
        let mut idents = BTreeSet::new();
        let mut values = BTreeSet::new();
        for (ident, value) in REGISTRY {
            assert!(idents.insert(*ident), "duplicate REGISTRY ident {ident}");
            assert!(values.insert(*value), "duplicate REGISTRY value {value}");
            assert!(
                ident.chars().all(|c| c.is_ascii_uppercase() || c == '_'),
                "REGISTRY ident `{ident}` is not SCREAMING_SNAKE_CASE"
            );
            assert!(
                value
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "REGISTRY value `{value}` is not a dotted lowercase key"
            );
        }
        for (ident, prefix) in DYNAMIC_PREFIXES {
            assert!(ident.ends_with("_PREFIX"), "prefix ident `{ident}`");
            assert!(prefix.ends_with('.'), "prefix `{prefix}` must end in `.`");
            assert!(
                !values.contains(prefix),
                "prefix `{prefix}` collides with a static key"
            );
        }
    }

    #[test]
    fn net_keys_are_reexported() {
        assert_eq!(NET_MESSAGES, "net.messages");
        assert_eq!(NET_BYTES, "net.bytes");
        assert_eq!(NET_DROPPED, "net.dropped");
    }
}
