//! The canonical metric-name registry.
//!
//! Every metric key used by the testbed nodes and harnesses lives here (the
//! three `net.*` keys are owned by `ape_simnet`, which records them, and are
//! re-exported so this module is the single import point). Using constants
//! instead of inline string literals means a typo fails to compile instead
//! of silently reporting zero.

pub use ape_simnet::keys::{NET_BYTES, NET_DROPPED, NET_FAULT_DROPPED, NET_MESSAGES};

// --- AP (access point) --------------------------------------------------

/// DNS queries of any kind arriving at the AP.
pub const AP_DNS_QUERIES: &str = "ap.dns_queries";
/// DNS-Cache (piggybacked) queries arriving at the AP.
pub const AP_DNS_CACHE_QUERIES: &str = "ap.dns_cache_queries";
/// DNS queries answered from the AP's dnsmasq record cache (no upstream).
pub const AP_DNS_CACHE_HITS: &str = "ap.dns_cache_hits";
/// DNS-Cache queries answered with a dummy IP, all requested URLs cached.
pub const AP_SHORT_CIRCUITS: &str = "ap.short_circuits";
/// DNS queries forwarded to the upstream resolver.
pub const AP_DNS_FORWARDS: &str = "ap.dns_forwards";
/// Objects served straight from the AP cache.
pub const AP_CACHE_HITS: &str = "ap.cache_hits";
/// Data (HTTP) requests arriving at the AP.
pub const AP_DATA_REQUESTS: &str = "ap.data_requests";
/// Requests the AP served by fetching without caching (block-listed).
pub const AP_BLOCKED_SERVES: &str = "ap.blocked_serves";
/// Delegated fetches the AP started on behalf of clients.
pub const AP_DELEGATIONS: &str = "ap.delegations";
/// Delegations abandoned because upstream DNS resolution failed.
pub const AP_DELEGATION_DNS_FAILURES: &str = "ap.delegation_dns_failures";
/// Upstream fetch time of delegated objects, milliseconds (histogram).
pub const AP_DELEGATION_FETCH_MS: &str = "ap.delegation_fetch_ms";
/// Objects admitted into the AP cache.
pub const AP_ADMISSIONS: &str = "ap.admissions";
/// Objects evicted from the AP cache.
pub const AP_EVICTIONS: &str = "ap.evictions";
/// Objects the admission policy declined to cache.
pub const AP_ADMIT_DECLINED: &str = "ap.admit_declined";
/// Objects added to the block list (too large to cache).
pub const AP_BLOCK_LISTED: &str = "ap.block_listed";
/// Cache entries purged by TTL expiry sweeps.
pub const AP_TTL_PURGES: &str = "ap.ttl_purges";
/// Eviction-solver invocations (PACM `select_victims` calls).
pub const AP_EVICT_SOLVER_RUNS: &str = "ap.evict_solver_runs";
/// Cached objects examined by the eviction solver.
pub const AP_EVICT_ITEMS: &str = "ap.evict_items";
/// Eviction decisions resolved by the knapsack DP.
pub const AP_EVICT_DP_RUNS: &str = "ap.evict_dp_runs";
/// Eviction decisions resolved by the greedy fallback.
pub const AP_EVICT_GREEDY_RUNS: &str = "ap.evict_greedy_runs";
/// Eviction decisions short-circuited (survivors fit; DP skipped).
pub const AP_EVICT_SHORT_CIRCUITS: &str = "ap.evict_short_circuits";
/// Objects evicted outright by pre-solver reductions (expired/oversized).
pub const AP_EVICT_FORCED: &str = "ap.evict_forced";
/// Objects evicted by the fairness-repair loop.
pub const AP_EVICT_REPAIRS: &str = "ap.evict_repairs";
/// Prefetch delegations started from client hints.
pub const AP_PREFETCHES: &str = "ap.prefetches";
/// Upstream DNS forwards retransmitted by the pending-forward reaper.
pub const AP_DNS_UPSTREAM_RETRIES: &str = "ap.dns_upstream_retries";
/// Pending forwards abandoned (client answered SERVFAIL) after the retry.
pub const AP_DNS_UPSTREAM_GIVE_UPS: &str = "ap.dns_upstream_give_ups";
/// Stuck delegated fetches restarted by the delegation reaper.
pub const AP_DELEGATION_RETRIES: &str = "ap.delegation_retries";
/// Delegations abandoned (waiters answered 504) after the retry.
pub const AP_DELEGATION_REAPS: &str = "ap.delegation_reaps";
/// AP CPU utilization samples, 0..1 (time series).
pub const AP_CPU: &str = "ap.cpu";
/// APE-CACHE memory on the AP, MB (time series).
pub const AP_APE_MEM_MB: &str = "ap.ape_mem_mb";
/// Total AP memory in use, MB (time series).
pub const AP_TOTAL_MEM_MB: &str = "ap.total_mem_mb";

// --- Client -------------------------------------------------------------

/// Object fetches started.
pub const CLIENT_FETCHES: &str = "client.fetches";
/// Fetches that failed (DNS give-up, HTTP error…).
pub const CLIENT_FETCH_FAILURES: &str = "client.fetch_failures";
/// App executions abandoned because a fetch failed.
pub const CLIENT_FAILED_EXECUTIONS: &str = "client.failed_executions";
/// DNS queries sent.
pub const CLIENT_DNS_QUERIES: &str = "client.dns_queries";
/// DNS retransmissions after timeout.
pub const CLIENT_DNS_RETRIES: &str = "client.dns_retries";
/// DNS queries abandoned after the retry budget.
pub const CLIENT_DNS_GIVE_UPS: &str = "client.dns_give_ups";
/// HTTP/lookup requests re-issued after a response timeout.
pub const CLIENT_HTTP_RETRIES: &str = "client.http_retries";
/// Fetches abandoned after the HTTP retry budget.
pub const CLIENT_HTTP_GIVE_UPS: &str = "client.http_give_ups";
/// Wi-Cache controller lookups sent.
pub const CLIENT_WICACHE_LOOKUPS: &str = "client.wicache_lookups";
/// Fetches answered from the AP cache (client-observed).
pub const CLIENT_CACHE_HITS: &str = "client.cache_hits";
/// Prefetch-hint messages sent to the AP.
pub const CLIENT_PREFETCH_HINTS: &str = "client.prefetch_hints";
/// Cache-lookup latency over actual lookup operations, ms (histogram).
pub const CLIENT_LOOKUP_QUERY_MS: &str = "client.lookup_query_ms";
/// Lookup-stage latency over all fetches (0 when skipped), ms (histogram).
pub const CLIENT_LOOKUP_OP_MS: &str = "client.lookup_op_ms";
/// Retrieval latency over all fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_MS: &str = "client.retrieval_ms";
/// Retrieval latency of AP cache hits, ms (histogram).
pub const CLIENT_RETRIEVAL_HIT_MS: &str = "client.retrieval_hit_ms";
/// Retrieval latency of delegated fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_DELEGATION_MS: &str = "client.retrieval_delegation_ms";
/// Retrieval latency of edge fetches, ms (histogram).
pub const CLIENT_RETRIEVAL_EDGE_MS: &str = "client.retrieval_edge_ms";
/// Whole-object latency (lookup + retrieval), ms (histogram).
pub const CLIENT_OBJECT_TOTAL_MS: &str = "client.object_total_ms";
/// App-level latency across all apps, ms (histogram).
pub const CLIENT_APP_LATENCY_MS: &str = "client.app_latency_ms";
/// Prefix of the per-app latency histograms (`client.app_latency_ms.<app>`).
pub const CLIENT_APP_LATENCY_MS_PREFIX: &str = "client.app_latency_ms.";

/// Per-app latency histogram key for `app`.
pub fn client_app_latency_ms(app: &str) -> String {
    format!("{CLIENT_APP_LATENCY_MS_PREFIX}{app}")
}

// --- Edge ---------------------------------------------------------------

/// Edge cache misses filled from the origin.
pub const EDGE_ORIGIN_FETCHES: &str = "edge.origin_fetches";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_app_key_round_trips_through_prefix() {
        let key = client_app_latency_ms("news");
        assert_eq!(key, "client.app_latency_ms.news");
        assert_eq!(key.strip_prefix(CLIENT_APP_LATENCY_MS_PREFIX), Some("news"));
    }

    #[test]
    fn net_keys_are_reexported() {
        assert_eq!(NET_MESSAGES, "net.messages");
        assert_eq!(NET_BYTES, "net.bytes");
        assert_eq!(NET_DROPPED, "net.dropped");
    }
}
