//! The message enum and its identifiers.

use ape_cachealg::{AppId, Priority};
use ape_dnswire::{DnsMessage, UrlHash};
use ape_httpsim::{HttpRequest, HttpResponse};
use ape_simnet::{Message, NodeId, SimDuration};
use std::net::Ipv4Addr;

/// Identifies a TCP connection; unique per initiating node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Correlates a request with its response across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Delegation metadata a client attaches when asking the AP to fetch and
/// cache an object on its behalf (paper §IV-B2: "the client sends the raw
/// URL of the request, along with its TTL and priority level, to the AP").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOp {
    /// Developer TTL for the object.
    pub ttl: SimDuration,
    /// Developer priority.
    pub priority: Priority,
    /// App the object belongs to.
    pub app: AppId,
}

/// A single prefetch suggestion: an object the client expects to request
/// soon (a dependent of the object it just asked for), with the cache
/// metadata the AP needs to delegate it proactively.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchHint {
    /// Concrete URL the upcoming request will use.
    pub url: ape_httpsim::Url,
    /// Delegation metadata for the object.
    pub op: CacheOp,
}

/// Every message a node can receive in the APE-CACHE testbed.
///
/// The two bulky payloads — a full DNS packet and a full HTTP request —
/// are boxed: `Msg` rides inline in every scheduled event, so its size is
/// paid per *pending event slot* in the timing wheel, and the hot variants
/// (TCP control, HTTP responses with interned bodies) should not carry the
/// fattest variant's footprint. The compile-time guard below pins the
/// resulting event size.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// A UDP DNS packet (query or response, plain or DNS-Cache).
    Dns(Box<DnsMessage>),
    /// TCP connection request.
    TcpSyn {
        /// Connection being opened.
        conn: ConnId,
    },
    /// TCP connection accept.
    TcpSynAck {
        /// Connection being accepted.
        conn: ConnId,
    },
    /// An HTTP request on an established connection. `cache_op` is present
    /// when this is a delegation request to an APE-CACHE AP.
    HttpReq {
        /// Connection the request travels on.
        conn: ConnId,
        /// Request correlation id.
        req: RequestId,
        /// The request itself.
        request: Box<HttpRequest>,
        /// Delegation metadata (AP-bound requests only).
        cache_op: Option<CacheOp>,
    },
    /// An HTTP response.
    HttpRsp {
        /// Connection the response travels on.
        conn: ConnId,
        /// Correlation id of the request being answered.
        req: RequestId,
        /// The response itself.
        response: HttpResponse,
        /// True when the responder served the object from its local cache
        /// (drives the client-side hit-ratio accounting).
        from_cache: bool,
    },
    /// Wi-Cache: client asks the controller which AP holds an object.
    WiCacheLookup {
        /// Request correlation id.
        req: RequestId,
        /// Hash of the wanted URL.
        url_hash: UrlHash,
    },
    /// Wi-Cache: controller answer; `holder` is the AP's address when some
    /// AP caches the object.
    WiCacheResult {
        /// Correlation id of the lookup being answered.
        req: RequestId,
        /// Address of the caching AP, if any.
        holder: Option<Ipv4Addr>,
    },
    /// Wi-Cache: AP advertises cache contents changes to the controller.
    WiCacheAdvertise {
        /// Keys now cached on the advertising AP.
        added: Vec<UrlHash>,
        /// Keys no longer cached.
        removed: Vec<UrlHash>,
    },
    /// Extension (paper §VI): request-dependency information sent to the
    /// AP so it can prefetch the objects the app will ask for next.
    PrefetchHints {
        /// Upcoming objects, at most a handful per request.
        hints: Vec<PrefetchHint>,
    },
    /// Cooperation: an AP asks a neighbor AP for an object it believes the
    /// neighbor holds, before falling back to the edge/origin path.
    PeerFetch {
        /// Correlation id (the requester's delegation request id).
        req: RequestId,
        /// Hash of the wanted URL.
        key: UrlHash,
    },
    /// Cooperation: a neighbor AP's answer to a [`Msg::PeerFetch`]. A hit
    /// carries the cached response; either way the responder piggybacks a
    /// summary of its hottest cached keys on the delegation-protocol reply.
    PeerRsp {
        /// Correlation id of the peer fetch being answered.
        req: RequestId,
        /// The cached object on a hit, `None` on a miss.
        response: Option<Box<HttpResponse>>,
        /// Hot-object summary of the responder's cache.
        summary: Vec<UrlHash>,
    },
    /// Cooperation: an AP shares a summary of its hottest cached keys with
    /// a neighbor (periodic gossip, and the roam hand-off from a departing
    /// client's old AP to its new one).
    CacheSummary {
        /// Hot cached keys on the sending AP.
        keys: Vec<UrlHash>,
    },
    /// Roaming: a client informs its old AP that it has re-homed to a
    /// neighbor AP, so the old AP can cancel per-client pending state and
    /// hand hot-object summaries to the new AP.
    RoamNotice {
        /// The AP the client now associates with.
        new_ap: NodeId,
    },
}

impl Msg {
    /// Wraps a DNS packet into a message (the boxing is an implementation
    /// detail of the event-size budget, not a protocol property).
    pub fn dns(m: DnsMessage) -> Self {
        Msg::Dns(Box::new(m))
    }

    /// Builds an HTTP request message (boxed, see [`Msg::dns`]).
    pub fn http_req(
        conn: ConnId,
        req: RequestId,
        request: HttpRequest,
        cache_op: Option<CacheOp>,
    ) -> Self {
        Msg::HttpReq {
            conn,
            req,
            request: Box::new(request),
            cache_op,
        }
    }
}

/// `Msg` rides inline in every scheduled event, so its size is paid per
/// pending slot of the timing wheel. If a change fattens the event past
/// this bound, shrink or box the offending variant — don't bump the bound.
const _: () = assert!(ape_simnet::event_footprint::<Msg>() <= 104);

impl Message for Msg {
    fn wire_size(&self) -> usize {
        match self {
            // Real encoded packet length + UDP/IP headers.
            Msg::Dns(m) => m.wire_len() + 28,
            // TCP header (no payload) + IP header.
            Msg::TcpSyn { .. } | Msg::TcpSynAck { .. } => 40,
            Msg::HttpReq {
                request, cache_op, ..
            } => request.wire_size() + 40 + if cache_op.is_some() { 24 } else { 0 },
            Msg::HttpRsp { response, .. } => response.wire_size() + 40,
            Msg::WiCacheLookup { .. } => 28 + 16,
            Msg::WiCacheResult { .. } => 28 + 8,
            Msg::WiCacheAdvertise { added, removed } => 28 + 8 * (added.len() + removed.len()),
            Msg::PrefetchHints { hints } => {
                28 + hints
                    .iter()
                    .map(|h| h.url.to_string().len() + 24)
                    .sum::<usize>()
            }
            Msg::PeerFetch { .. } => 28 + 16,
            Msg::PeerRsp {
                response, summary, ..
            } => 40 + response.as_deref().map_or(0, |r| r.wire_size()) + 8 * summary.len(),
            Msg::CacheSummary { keys } => 28 + 8 * keys.len(),
            Msg::RoamNotice { .. } => 28 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_dnswire::DomainName;
    use ape_httpsim::{Body, Url};

    #[test]
    fn dns_wire_size_tracks_encoding() {
        let name = DomainName::parse("www.apple.com").unwrap();
        let m = Msg::dns(DnsMessage::query(1, name));
        let Msg::Dns(inner) = &m else { unreachable!() };
        assert_eq!(m.wire_size(), inner.wire_len() + 28);
    }

    #[test]
    fn handshake_messages_are_header_sized() {
        assert_eq!(Msg::TcpSyn { conn: ConnId(1) }.wire_size(), 40);
        assert_eq!(Msg::TcpSynAck { conn: ConnId(1) }.wire_size(), 40);
    }

    #[test]
    fn http_response_dominated_by_body() {
        let rsp = Msg::HttpRsp {
            conn: ConnId(1),
            req: RequestId(1),
            response: HttpResponse::ok(Body::synthetic(50_000)),
            from_cache: true,
        };
        assert!(rsp.wire_size() > 50_000);
    }

    #[test]
    fn delegation_request_carries_extra_bytes() {
        let url = Url::parse("http://a.b/c").unwrap();
        let plain = Msg::http_req(ConnId(1), RequestId(1), HttpRequest::get(url.clone()), None);
        let delegated = Msg::http_req(
            ConnId(1),
            RequestId(1),
            HttpRequest::get(url),
            Some(CacheOp {
                ttl: SimDuration::from_mins(10),
                priority: Priority::HIGH,
                app: AppId::new(1),
            }),
        );
        assert_eq!(delegated.wire_size() - plain.wire_size(), 24);
    }

    #[test]
    fn advertise_scales_with_keys() {
        let small = Msg::WiCacheAdvertise {
            added: vec![UrlHash(1)],
            removed: vec![],
        };
        let large = Msg::WiCacheAdvertise {
            added: vec![UrlHash(1); 10],
            removed: vec![UrlHash(2); 5],
        };
        assert!(large.wire_size() > small.wire_size());
    }

    #[test]
    fn peer_fetch_matches_controller_lookup_size() {
        let fetch = Msg::PeerFetch {
            req: RequestId(1),
            key: UrlHash(2),
        };
        let lookup = Msg::WiCacheLookup {
            req: RequestId(1),
            url_hash: UrlHash(2),
        };
        assert_eq!(fetch.wire_size(), lookup.wire_size());
    }

    #[test]
    fn peer_rsp_pays_for_body_and_summary() {
        let miss = Msg::PeerRsp {
            req: RequestId(1),
            response: None,
            summary: vec![UrlHash(9); 4],
        };
        assert_eq!(miss.wire_size(), 40 + 8 * 4);
        let hit = Msg::PeerRsp {
            req: RequestId(1),
            response: Some(Box::new(HttpResponse::ok(Body::synthetic(10_000)))),
            summary: vec![UrlHash(9); 4],
        };
        assert!(hit.wire_size() > 10_000 + miss.wire_size());
    }

    #[test]
    fn cache_summary_scales_with_keys() {
        let keys = |n: usize| Msg::CacheSummary {
            keys: vec![UrlHash(3); n],
        };
        assert_eq!(keys(8).wire_size() - keys(0).wire_size(), 64);
        assert_eq!(
            Msg::RoamNotice {
                new_ap: NodeId::from_raw(1)
            }
            .wire_size(),
            36
        );
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ConnId(1) < ConnId(2));
        assert!(RequestId(1) < RequestId(2));
    }
}
