//! Address assignment: simulated IPv4 addresses ↔ simulator node ids.
//!
//! DNS answers carry IPv4 addresses, but the simulator routes by
//! [`NodeId`]. The testbed builder assigns each server-ish node an address
//! from `10.0.0.0/8` and hands the map to clients and APs so a resolved IP
//! can be dialled.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ape_simnet::NodeId;

/// Bidirectional IPv4 ↔ node map.
///
/// # Examples
///
/// ```
/// use ape_proto::IpMap;
/// use ape_simnet::NodeId;
///
/// let mut map = IpMap::new();
/// let ip = map.assign(NodeId::from_raw(3));
/// assert_eq!(map.node_of(ip), Some(NodeId::from_raw(3)));
/// assert_eq!(map.ip_of(NodeId::from_raw(3)), Some(ip));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IpMap {
    ip_to_node: BTreeMap<Ipv4Addr, NodeId>,
    node_to_ip: BTreeMap<NodeId, Ipv4Addr>,
    next_host: u32,
}

impl IpMap {
    /// The dummy address APs return when short-circuiting DNS resolution
    /// (paper §IV-B3); it is never assigned to a node.
    pub const DUMMY: Ipv4Addr = Ipv4Addr::new(0, 0, 0, 0);

    /// Maximum number of distinct addresses the allocator can hand out
    /// (hosts `10.0.0.1` … `10.255.255.255`). Past this, `assign` would
    /// wrap octets back onto live addresses; debug builds assert instead.
    pub const CAPACITY: usize = (1 << 24) - 1;

    /// Creates an empty map.
    pub fn new() -> Self {
        IpMap::default()
    }

    /// Assigns the next free `10.x.y.z` address to `node`, or returns the
    /// existing assignment.
    pub fn assign(&mut self, node: NodeId) -> Ipv4Addr {
        if let Some(ip) = self.node_to_ip.get(&node) {
            return *ip;
        }
        self.next_host += 1;
        let h = self.next_host;
        debug_assert!(
            h < (1 << 24),
            "IpMap exhausted: 10.0.0.0/8 host space wraps past {} assignments",
            (1 << 24) - 1
        );
        let ip = Ipv4Addr::new(10, (h >> 16) as u8, (h >> 8) as u8, h as u8);
        let stale = self.ip_to_node.insert(ip, node);
        debug_assert!(
            stale.is_none(),
            "IpMap wrapped onto live address {ip} (held by {stale:?})"
        );
        self.node_to_ip.insert(node, ip);
        ip
    }

    /// The node behind an address.
    pub fn node_of(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.ip_to_node.get(&ip).copied()
    }

    /// The address of a node.
    pub fn ip_of(&self, node: NodeId) -> Option<Ipv4Addr> {
        self.node_to_ip.get(&node).copied()
    }

    /// Whether `ip` is the dummy short-circuit address.
    pub fn is_dummy(ip: Ipv4Addr) -> bool {
        ip == Self::DUMMY
    }

    /// Number of assigned addresses.
    pub fn len(&self) -> usize {
        self.node_to_ip.len()
    }

    /// Whether no addresses are assigned.
    pub fn is_empty(&self) -> bool {
        self.node_to_ip.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_is_idempotent() {
        let mut m = IpMap::new();
        let n = NodeId::from_raw(7);
        let a = m.assign(n);
        let b = m.assign(n);
        assert_eq!(a, b);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn distinct_nodes_get_distinct_ips() {
        let mut m = IpMap::new();
        let a = m.assign(NodeId::from_raw(1));
        let b = m.assign(NodeId::from_raw(2));
        assert_ne!(a, b);
        assert_eq!(m.node_of(a), Some(NodeId::from_raw(1)));
        assert_eq!(m.node_of(b), Some(NodeId::from_raw(2)));
    }

    #[test]
    fn dummy_is_never_assigned() {
        let mut m = IpMap::new();
        for i in 0..300 {
            let ip = m.assign(NodeId::from_raw(i));
            assert!(!IpMap::is_dummy(ip));
        }
        assert_eq!(m.node_of(IpMap::DUMMY), None);
    }

    #[test]
    fn unknown_lookups_are_none() {
        let m = IpMap::new();
        assert!(m.is_empty());
        assert_eq!(m.ip_of(NodeId::from_raw(9)), None);
        assert_eq!(m.node_of(Ipv4Addr::new(10, 0, 0, 1)), None);
    }

    /// Capacity contract: the allocator hands out hosts `10.0.0.1` through
    /// `10.255.255.255` — 2^24 − 1 distinct addresses — and (in debug
    /// builds) asserts instead of wrapping back onto live addresses. City
    /// topologies of thousands of APs are nowhere near the bound; this test
    /// documents where it is.
    #[test]
    fn capacity_is_two_to_the_24_minus_one() {
        assert_eq!(IpMap::CAPACITY, (1 << 24) - 1);
        // Spot-check the edges of the encoding without allocating 16M
        // entries: the first and a deep host land where the /8 math says.
        let mut m = IpMap::new();
        assert_eq!(m.assign(NodeId::from_raw(0)), Ipv4Addr::new(10, 0, 0, 1));
        m.next_host = IpMap::CAPACITY as u32 - 1;
        assert_eq!(
            m.assign(NodeId::from_raw(1)),
            Ipv4Addr::new(10, 255, 255, 255)
        );
    }

    #[test]
    #[should_panic(expected = "IpMap exhausted")]
    #[cfg(debug_assertions)]
    fn exhaustion_panics_instead_of_wrapping() {
        let mut m = IpMap::new();
        m.next_host = IpMap::CAPACITY as u32;
        m.assign(NodeId::from_raw(2));
    }

    #[test]
    fn addresses_roll_over_octets() {
        let mut m = IpMap::new();
        let mut last = Ipv4Addr::UNSPECIFIED;
        for i in 0..600 {
            last = m.assign(NodeId::from_raw(i));
        }
        assert_eq!(last, Ipv4Addr::new(10, 0, 2, 88));
        assert_eq!(m.len(), 600);
    }
}
