//! # ape-proto — the simulation wire protocol
//!
//! The single message enum ([`Msg`]) exchanged between every simulated node
//! in the APE-CACHE testbed, together with IP addressing helpers. Keeping
//! the protocol in one crate lets the client, AP, resolver, edge and
//! Wi-Cache node implementations live in `ape-nodes` without circular
//! dependencies.
//!
//! Three protocol families share the enum:
//!
//! * **UDP DNS** — [`Msg::Dns`] carries full `ape-dnswire` messages,
//!   including DNS-Cache requests/responses; its wire size is the actual
//!   encoded packet length.
//! * **TCP/HTTP** — connections are modelled with an explicit
//!   SYN / SYN-ACK handshake (one RTT) followed by request/response, so
//!   "cache retrieval latency" includes connection establishment exactly as
//!   the paper measures it.
//! * **Wi-Cache control** — the baseline's client ↔ controller lookup and
//!   the AP → controller content advertisements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ipmap;
mod msg;
pub mod names;
mod span;

pub use ipmap::IpMap;
pub use msg::{CacheOp, ConnId, Msg, PrefetchHint, RequestId};
pub use span::SpanKind;
