//! The span-kind vocabulary of the request-tracing layer.
//!
//! Every span a testbed node opens has one of these kinds. Keeping the
//! vocabulary typed (instead of ad-hoc strings at each call site) means the
//! attribution pass in `apecache` and the instrumentation in `ape-nodes`
//! cannot drift apart, and exporters get a stable, documented label set.

/// The kind of one traced span in the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Root span: one client object fetch, from request start to response
    /// delivery (or failure).
    Fetch,
    /// Client-side lookup stage: fetch start until the cache flag (or DNS
    /// answer) tells the client where to retrieve from.
    Lookup,
    /// Client-side retrieval from the AP cache (a DNS-Cache *Hit*).
    RetrievalHit,
    /// Client-side retrieval via AP delegation (*Miss* → delegate).
    RetrievalDelegation,
    /// Client-side retrieval from the edge server (baseline path, or an
    /// uncacheable object).
    RetrievalEdge,
    /// AP-side upstream DNS resolution for a forwarded query.
    DnsUpstream,
    /// AP-side WAN fetch of a delegated object (starts when the delegation
    /// is enqueued, ends when the upstream response arrives).
    WanFetch,
    /// Edge-side origin fill on an edge cache miss.
    OriginFetch,
    /// AP-side cache admission of a delegated object, covering the
    /// eviction decision (PACM solve / LRU scan) and the insert — the
    /// `eviction_processing` work the AP charges per admission.
    CacheEvict,
}

impl SpanKind {
    /// Every kind, in presentation order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Fetch,
        SpanKind::Lookup,
        SpanKind::RetrievalHit,
        SpanKind::RetrievalDelegation,
        SpanKind::RetrievalEdge,
        SpanKind::DnsUpstream,
        SpanKind::WanFetch,
        SpanKind::OriginFetch,
        SpanKind::CacheEvict,
    ];

    /// Stable label recorded in trace events and exported in JSONL.
    pub const fn as_str(self) -> &'static str {
        match self {
            SpanKind::Fetch => "fetch",
            SpanKind::Lookup => "lookup",
            SpanKind::RetrievalHit => "retrieval.hit",
            SpanKind::RetrievalDelegation => "retrieval.delegation",
            SpanKind::RetrievalEdge => "retrieval.edge",
            SpanKind::DnsUpstream => "dns.upstream",
            SpanKind::WanFetch => "wan.fetch",
            SpanKind::OriginFetch => "origin.fetch",
            SpanKind::CacheEvict => "cache.evict",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(label: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == label)
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nonsense"), None);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = SpanKind::ALL.iter().map(|k| k.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SpanKind::ALL.len());
    }
}
