//! A minimal cheaply-cloneable byte buffer.
//!
//! Stands in for the `bytes` crate's `Bytes`: simulated response bodies are
//! cloned every time a cached object is served, so content is shared behind
//! an `Arc` instead of copied. Only the tiny API surface the simulator needs
//! is provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(vec),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(arr: &[u8; N]) -> Self {
        Bytes::from(&arr[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(&b"hello"[..]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(&b[..2], b"he");
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn from_str_and_array() {
        assert_eq!(Bytes::from("hi").as_ref(), b"hi");
        assert_eq!(Bytes::from(b"hey").as_ref(), b"hey");
        assert_eq!(format!("{:?}", Bytes::from("hi")), "Bytes(2 bytes)");
    }
}
