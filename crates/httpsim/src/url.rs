//! URLs of cacheable objects.
//!
//! The paper identifies cacheable objects by their "basic URLs without
//! parameters" (`id` in the `Cacheable` annotation) while full URLs — with
//! query parameters — name concrete objects. [`Url::base_id`] implements the
//! former, [`Url::hash`] the latter.

use std::fmt;
use std::str::FromStr;

use ape_dnswire::{DomainName, UrlHash, WireError};

/// Error parsing a URL.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseUrlError {
    /// Missing or unsupported scheme.
    BadScheme,
    /// Host failed domain-name validation.
    BadHost(WireError),
    /// The URL had no host.
    MissingHost,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUrlError::BadScheme => write!(f, "scheme must be http or https"),
            ParseUrlError::BadHost(e) => write!(f, "invalid host: {e}"),
            ParseUrlError::MissingHost => write!(f, "url has no host"),
        }
    }
}

impl std::error::Error for ParseUrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseUrlError::BadHost(e) => Some(e),
            _ => None,
        }
    }
}

/// URL scheme; the paper's clients speak HTTP(S) only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Plain HTTP.
    #[default]
    Http,
    /// HTTP over TLS.
    Https,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Http => write!(f, "http"),
            Scheme::Https => write!(f, "https"),
        }
    }
}

/// A parsed, validated object URL.
///
/// # Examples
///
/// ```
/// use ape_httpsim::Url;
///
/// let url: Url = "http://api.movie.example/thumb?id=42".parse()?;
/// assert_eq!(url.host().to_string(), "api.movie.example");
/// assert_eq!(url.base_id(), "http://api.movie.example/thumb");
/// assert_eq!(url.query(), Some("id=42"));
/// # Ok::<(), ape_httpsim::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: Scheme,
    host: DomainName,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Parses a URL of the form `http[s]://host[/path][?query]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the scheme is unsupported or the host
    /// is not a valid domain name.
    pub fn parse(s: &str) -> Result<Self, ParseUrlError> {
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else if let Some(rest) = s.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else {
            return Err(ParseUrlError::BadScheme);
        };
        let (authority, path_and_query) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(ParseUrlError::MissingHost);
        }
        let host = DomainName::parse(authority).map_err(ParseUrlError::BadHost)?;
        let (path, query) = match path_and_query.split_once('?') {
            Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
            None => (path_and_query.to_owned(), None),
        };
        Ok(Url {
            scheme,
            host,
            path,
            query,
        })
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host name.
    pub fn host(&self) -> &DomainName {
        &self.host
    }

    /// The path (always begins with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string, without the `?`.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The paper's object-family identifier: the URL without parameters.
    pub fn base_id(&self) -> String {
        format!("{}://{}{}", self.scheme, self.host, self.path)
    }

    /// Stable hash of the *full* URL (what DNS-Cache tuples carry).
    pub fn hash(&self) -> UrlHash {
        UrlHash::of(&self.to_string())
    }

    /// Returns a copy with a different query string.
    pub fn with_query(&self, query: impl Into<String>) -> Url {
        Url {
            query: Some(query.into()),
            ..self.clone()
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://api.movie.example/v1/thumb?id=42&sz=big").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().to_string(), "api.movie.example");
        assert_eq!(u.path(), "/v1/thumb");
        assert_eq!(u.query(), Some("id=42&sz=big"));
    }

    #[test]
    fn display_roundtrips() {
        for s in ["http://a.b/c?d=e", "http://a.b/c", "https://x.y.z/"] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_string(), s);
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn missing_path_becomes_root() {
        let u = Url::parse("http://host.example").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "http://host.example/");
    }

    #[test]
    fn base_id_strips_query_only() {
        let a = Url::parse("http://h.x/obj?p=1").unwrap();
        let b = Url::parse("http://h.x/obj?p=2").unwrap();
        assert_eq!(a.base_id(), b.base_id());
        assert_ne!(a.hash(), b.hash(), "full-url hashes differ");
        let c = Url::parse("http://h.x/other?p=1").unwrap();
        assert_ne!(a.base_id(), c.base_id());
    }

    #[test]
    fn with_query_replaces() {
        let a = Url::parse("http://h.x/obj").unwrap();
        let b = a.with_query("name=dune");
        assert_eq!(b.to_string(), "http://h.x/obj?name=dune");
        assert_eq!(a.base_id(), b.base_id());
    }

    #[test]
    fn rejects_bad_scheme_and_host() {
        assert_eq!(Url::parse("ftp://x.y/"), Err(ParseUrlError::BadScheme));
        assert_eq!(Url::parse("http:///p"), Err(ParseUrlError::MissingHost));
        assert!(matches!(
            Url::parse("http://bad host/"),
            Err(ParseUrlError::BadHost(_))
        ));
    }

    #[test]
    fn host_comparison_is_case_insensitive() {
        let a = Url::parse("http://API.Example.com/x").unwrap();
        let b = Url::parse("http://api.example.com/x").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_display() {
        assert!(!ParseUrlError::BadScheme.to_string().is_empty());
        assert!(!ParseUrlError::MissingHost.to_string().is_empty());
    }
}
