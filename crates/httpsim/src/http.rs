//! Simulated HTTP requests and responses.
//!
//! Bodies carry a *declared size* driving the network/bandwidth model, and
//! optionally real bytes for small payloads where tests assert content
//! integrity end-to-end. Large synthetic objects stay size-only so an hour
//! of simulated traffic does not allocate gigabytes.

use std::fmt;

use crate::bytes::Bytes;
use crate::url::Url;

/// HTTP method (the paper's workloads only GET cacheable objects, but the
/// interceptor must recognize non-GETs to pass them through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Retrieve an object.
    #[default]
    Get,
    /// Submit data (never cacheable).
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// HTTP status code subset used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// 200.
    #[default]
    Ok,
    /// 404.
    NotFound,
    /// 504 — upstream fetch failed (used for failure injection).
    GatewayTimeout,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotFound => 404,
            Status::GatewayTimeout => 504,
        }
    }

    /// Whether this is a success status.
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A response body: declared size plus optional real content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Body {
    declared_size: u64,
    content: Option<Bytes>,
}

impl Body {
    /// An empty body.
    pub fn empty() -> Self {
        Body {
            declared_size: 0,
            content: None,
        }
    }

    /// A synthetic body of `size` bytes (no real content allocated).
    pub fn synthetic(size: u64) -> Self {
        Body {
            declared_size: size,
            content: None,
        }
    }

    /// A body with real content.
    pub fn from_bytes(content: impl Into<Bytes>) -> Self {
        let content = content.into();
        Body {
            declared_size: content.len() as u64,
            content: Some(content),
        }
    }

    /// Size in bytes as seen by the network model.
    pub fn size(&self) -> u64 {
        self.declared_size
    }

    /// The real content, if this body carries any.
    pub fn content(&self) -> Option<&Bytes> {
        self.content.as_ref()
    }
}

/// A simulated HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
}

impl HttpRequest {
    /// A GET for `url`.
    pub fn get(url: Url) -> Self {
        HttpRequest {
            method: Method::Get,
            url,
        }
    }

    /// Approximate on-the-wire size: request line + minimal headers.
    pub fn wire_size(&self) -> usize {
        self.method.to_string().len() + self.url.to_string().len() + 64
    }
}

/// A simulated HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: Status,
    /// Response body.
    pub body: Body,
}

impl HttpResponse {
    /// A 200 response with the given body.
    pub fn ok(body: Body) -> Self {
        HttpResponse {
            status: Status::Ok,
            body,
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: Status::NotFound,
            body: Body::empty(),
        }
    }

    /// A 504 response (upstream failure).
    pub fn gateway_timeout() -> Self {
        HttpResponse {
            status: Status::GatewayTimeout,
            body: Body::empty(),
        }
    }

    /// Approximate on-the-wire size: status line + headers + body.
    pub fn wire_size(&self) -> usize {
        96 + self.body.size() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn synthetic_body_has_size_but_no_content() {
        let b = Body::synthetic(80_000);
        assert_eq!(b.size(), 80_000);
        assert!(b.content().is_none());
    }

    #[test]
    fn real_body_size_matches_content() {
        let b = Body::from_bytes(&b"hello"[..]);
        assert_eq!(b.size(), 5);
        assert_eq!(b.content().unwrap().as_ref(), b"hello");
    }

    #[test]
    fn empty_body() {
        let b = Body::empty();
        assert_eq!(b.size(), 0);
        assert!(b.content().is_none());
    }

    #[test]
    fn request_wire_size_scales_with_url() {
        let short = HttpRequest::get(url("http://a.b/x"));
        let long = HttpRequest::get(url("http://a.b/a-much-longer-path?with=query&p=2"));
        assert!(long.wire_size() > short.wire_size());
        assert_eq!(short.method, Method::Get);
    }

    #[test]
    fn response_wire_size_includes_body() {
        let small = HttpResponse::ok(Body::synthetic(10));
        let big = HttpResponse::ok(Body::synthetic(10_000));
        assert_eq!(big.wire_size() - small.wire_size(), 9_990);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::GatewayTimeout.code(), 504);
        assert!(Status::Ok.is_success());
        assert!(!Status::NotFound.is_success());
        assert_eq!(HttpResponse::not_found().status, Status::NotFound);
        assert_eq!(
            HttpResponse::gateway_timeout().status,
            Status::GatewayTimeout
        );
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Post.to_string(), "POST");
        assert_eq!(Status::Ok.to_string(), "200");
    }
}
