//! # ape-httpsim — simulated HTTP layer for APE-CACHE
//!
//! URLs, requests and responses exchanged by the simulated client, AP and
//! server runtimes. [`Url::base_id`] mirrors the paper's `Cacheable.id`
//! ("basic URLs without parameters"); [`Url::hash`] produces the full-URL
//! hash carried in DNS-Cache tuples.
//!
//! ## Example
//!
//! ```
//! use ape_httpsim::{Body, HttpRequest, HttpResponse, Url};
//!
//! let url: Url = "http://api.movie.example/thumb?id=42".parse()?;
//! let request = HttpRequest::get(url);
//! let response = HttpResponse::ok(Body::synthetic(80_000));
//! assert!(response.wire_size() > request.wire_size());
//! # Ok::<(), ape_httpsim::ParseUrlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod http;
mod url;

pub use bytes::Bytes;
pub use http::{Body, HttpRequest, HttpResponse, Method, Status};
pub use url::{ParseUrlError, Scheme, Url};
