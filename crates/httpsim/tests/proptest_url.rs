//! Property tests for URLs: display/parse roundtrips, base-id semantics
//! and hash stability — the invariants the DNS-Cache tuples depend on.

use ape_httpsim::Url;
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,10}", 2..5).prop_map(|labels| labels.join("."))
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_.-]{1,8}", 0..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn arb_query() -> impl Strategy<Value = Option<String>> {
    proptest::option::of("[a-zA-Z0-9=&_-]{1,20}")
}

proptest! {
    #[test]
    fn display_parse_roundtrip(host in arb_host(), path in arb_path(), query in arb_query()) {
        let mut text = format!("http://{host}{path}");
        if let Some(q) = &query {
            text.push('?');
            text.push_str(q);
        }
        let url = Url::parse(&text).expect("constructed from valid parts");
        let again = Url::parse(&url.to_string()).expect("display output parses");
        prop_assert_eq!(&url, &again);
        prop_assert_eq!(url.hash(), again.hash());
    }

    #[test]
    fn base_id_ignores_query_only(host in arb_host(), path in arb_path(), q1 in "[a-z0-9=]{1,10}", q2 in "[a-z0-9=]{1,10}") {
        let a = Url::parse(&format!("http://{host}{path}?{q1}")).expect("valid");
        let b = Url::parse(&format!("http://{host}{path}?{q2}")).expect("valid");
        prop_assert_eq!(a.base_id(), b.base_id());
        if q1 != q2 {
            prop_assert_ne!(a.hash(), b.hash(), "full-url hashes must differ");
        }
    }

    #[test]
    fn with_query_preserves_base(host in arb_host(), path in arb_path(), q in "[a-z0-9=]{1,12}") {
        let base = Url::parse(&format!("http://{host}{path}")).expect("valid");
        let varied = base.with_query(q.clone());
        prop_assert_eq!(base.base_id(), varied.base_id());
        prop_assert_eq!(varied.query(), Some(q.as_str()));
    }

    #[test]
    fn parser_never_panics_on_garbage(text in "[ -~]{0,80}") {
        let _ = Url::parse(&text);
    }

    #[test]
    fn distinct_paths_have_distinct_base_ids(host in arb_host(), p1 in "[a-z]{1,8}", p2 in "[a-z]{1,8}") {
        prop_assume!(p1 != p2);
        let a = Url::parse(&format!("http://{host}/{p1}")).expect("valid");
        let b = Url::parse(&format!("http://{host}/{p2}")).expect("valid");
        prop_assert_ne!(a.base_id(), b.base_id());
    }
}
