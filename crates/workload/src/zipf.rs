//! Zipf popularity sampling.
//!
//! The paper draws app usage from a Zipf distribution (§V-A, citing content
//! demand studies): a few apps are used constantly, a long tail rarely.

use ape_simnet::SimRng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
///
/// # Examples
///
/// ```
/// use ape_simnet::SimRng;
/// use ape_workload::ZipfSampler;
///
/// let zipf = ZipfSampler::new(10, 1.0);
/// let mut rng = SimRng::seed_from(1);
/// let idx = zipf.sample(&mut rng);
/// assert!(idx < 10);
/// assert!(zipf.weight(0) > zipf.weight(9));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized per-index probabilities.
    weights: Vec<f64>,
    /// Cumulative distribution for inverse sampling.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be non-negative"
        );
        let raw: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler {
            weights,
            cumulative,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the sampler is over zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Probability mass of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(20, 1.0);
        let sum: f64 = (0..20).map(|i| z.weight(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..20 {
            assert!(z.weight(i) < z.weight(i - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.weight(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            assert!(
                (observed - z.weight(i)).abs() < 0.01,
                "item {i}: observed {observed}, expected {}",
                z.weight(i)
            );
        }
    }

    #[test]
    fn single_item_always_sampled() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_items_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(3, -1.0);
    }
}
