//! Zipf popularity sampling.
//!
//! The paper draws app usage from a Zipf distribution (§V-A, citing content
//! demand studies): a few apps are used constantly, a long tail rarely.
//!
//! Two sampling backends are available through [`ZipfConfig`]:
//!
//! * [`ZipfMode::CumulativeScan`] (default) — the original inverse-CDF
//!   binary search, `O(log n)` per draw. Its draw sequence for a given seed
//!   is pinned by tests and must never change: every experiment artifact in
//!   the repo was produced with it.
//! * [`ZipfMode::Alias`] — a Vose alias table, `O(1)` per draw and `O(n)`
//!   to build. Used by the million-client fleet benchmarks where sampling
//!   is on the per-event hot path. It consumes exactly one RNG draw per
//!   sample (same as the legacy path) but maps the draw differently, so it
//!   is *statistically* equivalent, not stream-identical.

use ape_simnet::SimRng;

/// Which sampling algorithm a [`ZipfSampler`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZipfMode {
    /// Inverse-CDF binary search over the cumulative weights (legacy,
    /// seed-exact with all released artifacts).
    #[default]
    CumulativeScan,
    /// Vose alias table: constant-time draws for hot-path sampling.
    Alias,
}

/// Sampler construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZipfConfig {
    /// Sampling backend. Defaults to the seed-exact legacy scan.
    pub mode: ZipfMode,
}

/// One column of a Vose alias table: take `index` with probability
/// `threshold` (scaled to the column), else take `alias`.
#[derive(Debug, Clone, Copy)]
struct AliasColumn {
    /// Acceptance threshold in `[0, 1]`, already divided by `n`.
    threshold: f64,
    /// Donor index used when the coin flip rejects the column owner.
    alias: u32,
}

/// Samples indices `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
///
/// # Examples
///
/// ```
/// use ape_simnet::SimRng;
/// use ape_workload::ZipfSampler;
///
/// let zipf = ZipfSampler::new(10, 1.0);
/// let mut rng = SimRng::seed_from(1);
/// let idx = zipf.sample(&mut rng);
/// assert!(idx < 10);
/// assert!(zipf.weight(0) > zipf.weight(9));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized per-index probabilities.
    weights: Vec<f64>,
    /// Cumulative distribution for inverse sampling (legacy mode).
    cumulative: Vec<f64>,
    /// Alias table; built only in [`ZipfMode::Alias`].
    alias: Vec<AliasColumn>,
    /// Backend selected at construction.
    mode: ZipfMode,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with the given exponent, using the
    /// default (legacy, seed-exact) backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        Self::with_config(n, exponent, ZipfConfig::default())
    }

    /// Creates a sampler with an explicit backend choice.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative/non-finite.
    pub fn with_config(n: usize, exponent: f64, config: ZipfConfig) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be non-negative"
        );
        let raw: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        let alias = match config.mode {
            ZipfMode::CumulativeScan => Vec::new(),
            ZipfMode::Alias => build_alias_table(&weights),
        };
        ZipfSampler {
            weights,
            cumulative,
            alias,
            mode: config.mode,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the sampler is over zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Backend this sampler was built with.
    pub fn mode(&self) -> ZipfMode {
        self.mode
    }

    /// Probability mass of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Draws one index. Both backends consume exactly one RNG draw.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self.mode {
            ZipfMode::CumulativeScan => self.sample_scan(u),
            ZipfMode::Alias => self.sample_alias(u),
        }
    }

    /// Legacy inverse-CDF lookup: `O(log n)`.
    fn sample_scan(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i.min(self.len() - 1),
        }
    }

    /// Alias-table lookup: `O(1)`. The single uniform draw is split into a
    /// column index (integer part of `u * n`) and a coin (fractional part);
    /// the two parts are independent because `u` is uniform on `[0, 1)`.
    fn sample_alias(&self, u: f64) -> usize {
        let n = self.alias.len();
        let scaled = u * n as f64;
        let col = (scaled as usize).min(n - 1);
        let coin = scaled - col as f64;
        let entry = self.alias[col];
        if coin < entry.threshold {
            col
        } else {
            entry.alias as usize
        }
    }
}

/// Builds a Vose alias table from normalized weights.
///
/// Columns with mass below average (`1/n`) borrow the remainder from a
/// column with mass above average; after construction, every column is a
/// two-outcome Bernoulli whose mixture reproduces the input distribution
/// exactly (up to float rounding).
fn build_alias_table(weights: &[f64]) -> Vec<AliasColumn> {
    let n = weights.len();
    debug_assert!(n <= u32::MAX as usize, "alias table indexes with u32");
    // Scale so the average column holds exactly 1.0.
    let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64).collect();
    let mut table = vec![
        AliasColumn {
            threshold: 1.0,
            alias: 0,
        };
        n
    ];
    // Worklists are drained back-to-front, which keeps construction
    // deterministic for a given weight vector.
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
        small.pop();
        table[s as usize] = AliasColumn {
            threshold: scaled[s as usize],
            alias: l,
        };
        // The donor loses exactly the mass the small column was missing.
        scaled[l as usize] -= 1.0 - scaled[s as usize];
        if scaled[l as usize] < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    // Whatever remains (float dust) saturates to "always take the owner".
    for &i in small.iter().chain(large.iter()) {
        table[i as usize].threshold = 1.0;
        table[i as usize].alias = i;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_decrease() {
        let z = ZipfSampler::new(20, 1.0);
        let sum: f64 = (0..20).map(|i| z.weight(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..20 {
            assert!(z.weight(i) < z.weight(i - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for i in 0..4 {
            assert!((z.weight(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            assert!(
                (observed - z.weight(i)).abs() < 0.01,
                "item {i}: observed {observed}, expected {}",
                z.weight(i)
            );
        }
    }

    #[test]
    fn single_item_always_sampled() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_items_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(3, -1.0);
    }

    /// The legacy draw sequence is part of the repo's reproducibility
    /// contract: BENCH/EXPERIMENT artifacts embed it via the schedule
    /// generator. This golden pin fails if the default backend's mapping
    /// from RNG stream to indices ever changes.
    #[test]
    fn legacy_sequence_is_pinned() {
        let z = ZipfSampler::new(12, 1.1);
        let mut rng = SimRng::seed_from(0xC0FFEE);
        let drawn: Vec<usize> = (0..16).map(|_| z.sample(&mut rng)).collect();
        assert_eq!(
            drawn,
            vec![2, 6, 3, 1, 4, 0, 0, 8, 5, 0, 0, 7, 1, 11, 0, 0],
            "legacy Zipf draw sequence changed — this breaks artifact reproducibility"
        );
    }

    #[test]
    fn default_config_is_legacy_scan() {
        assert_eq!(ZipfConfig::default().mode, ZipfMode::CumulativeScan);
        assert_eq!(ZipfSampler::new(3, 1.0).mode(), ZipfMode::CumulativeScan);
    }

    #[test]
    fn alias_mode_stays_in_range_and_matches_bands() {
        let cfg = ZipfConfig {
            mode: ZipfMode::Alias,
        };
        let z = ZipfSampler::with_config(8, 0.9, cfg);
        let mut rng = SimRng::seed_from(42);
        let n = 200_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            let idx = z.sample(&mut rng);
            assert!(idx < 8);
            counts[idx] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            assert!(
                (observed - z.weight(i)).abs() < 0.01,
                "alias item {i}: observed {observed}, expected {}",
                z.weight(i)
            );
        }
    }

    #[test]
    fn alias_table_mass_reconstructs_weights() {
        // Summing each column's contribution must reproduce the input
        // distribution: the alias transform is exact, not approximate.
        let z = ZipfSampler::with_config(
            17,
            1.0,
            ZipfConfig {
                mode: ZipfMode::Alias,
            },
        );
        let n = z.len();
        let mut mass = vec![0.0f64; n];
        for (col, entry) in z.alias.iter().enumerate() {
            mass[col] += entry.threshold / n as f64;
            mass[entry.alias as usize] += (1.0 - entry.threshold) / n as f64;
        }
        for (i, &m) in mass.iter().enumerate() {
            assert!(
                (m - z.weight(i)).abs() < 1e-12,
                "column mass {i} diverged: {m} vs {}",
                z.weight(i)
            );
        }
    }

    #[test]
    fn both_backends_consume_one_draw_per_sample() {
        let scan = ZipfSampler::new(6, 1.0);
        let alias = ZipfSampler::with_config(
            6,
            1.0,
            ZipfConfig {
                mode: ZipfMode::Alias,
            },
        );
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            let _ = scan.sample(&mut a);
            let _ = alias.sample(&mut b);
        }
        // Same number of draws consumed → streams stay aligned.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
