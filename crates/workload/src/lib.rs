//! # ape-workload — workload generation for the APE-CACHE evaluation
//!
//! Three generators drive the reproduction's experiments:
//!
//! * [`ZipfSampler`] — skewed popularity (apps, flows),
//! * [`generate_schedule`] — app execution schedules with a fixed fleet
//!   average frequency (3 runs/minute by default, the paper's setting),
//! * [`generate_trace`] — packet streams statistically matching the
//!   Table II public-WiFi captures, for the Fig. 2 feasibility experiment.
//!
//! ## Example
//!
//! ```
//! use ape_simnet::SimRng;
//! use ape_workload::{generate_schedule, ScheduleConfig};
//!
//! let mut rng = SimRng::seed_from(7);
//! let schedule = generate_schedule(&ScheduleConfig::default(), &mut rng);
//! assert!(!schedule.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod roam;
mod schedule;
mod trace;
mod zipf;

pub use roam::{generate_roam_schedule, RoamConfig, RoamEvent};
pub use schedule::{generate_schedule, per_app_counts, Execution, ScheduleConfig};
pub use trace::{generate_trace, trace_stats, Packet, TraceSpec, TraceStats};
pub use zipf::{ZipfConfig, ZipfMode, ZipfSampler};
