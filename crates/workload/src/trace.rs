//! Synthetic WiFi traffic traces matching Table II of the paper.
//!
//! The paper replays two pre-captured public WiFi traces (Tcpreplay sample
//! captures) against a GL-MT1300 router to establish CPU/memory headroom
//! (Fig. 2). The captures themselves are not redistributable, so we
//! synthesize packet streams whose *statistics* match the published
//! Table II rows exactly: total size, packet count, flow count, average
//! packet size, duration, and app count.

use ape_simnet::{SimDuration, SimRng, SimTime};

use crate::zipf::ZipfSampler;

/// Published statistics of one replay trace (a Table II column).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Trace label ("low" / "high").
    pub name: &'static str,
    /// Total bytes across all packets.
    pub total_bytes: u64,
    /// Number of packets.
    pub packets: u64,
    /// Number of distinct flows.
    pub flows: u64,
    /// Capture duration.
    pub duration: SimDuration,
    /// Number of distinct apps observed.
    pub apps: u64,
}

impl TraceSpec {
    /// Table II "Low Traffic Rate": 9.4 MB, 14 261 packets, 1 209 flows,
    /// 646-byte average packets, 5 minutes, 28 apps.
    pub fn low_rate() -> Self {
        TraceSpec {
            name: "low",
            total_bytes: 9_400_000,
            packets: 14_261,
            flows: 1_209,
            duration: SimDuration::from_mins(5),
            apps: 28,
        }
    }

    /// Table II "High Traffic Rate": 368 MB, 791 615 packets, 40 686 flows,
    /// 449-byte average packets, 5 minutes, 132 apps.
    pub fn high_rate() -> Self {
        TraceSpec {
            name: "high",
            total_bytes: 368_000_000,
            packets: 791_615,
            flows: 40_686,
            duration: SimDuration::from_mins(5),
            apps: 132,
        }
    }

    /// Average packet size implied by the totals.
    pub fn avg_packet_size(&self) -> u64 {
        self.total_bytes / self.packets
    }
}

/// One synthesized packet arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Arrival time.
    pub at: SimTime,
    /// Size in bytes.
    pub size: u32,
    /// Flow the packet belongs to.
    pub flow: u32,
    /// True for the first packet of its flow (conntrack allocation).
    pub starts_flow: bool,
}

/// Synthesizes a packet stream matching `spec`.
///
/// Packets arrive uniformly spread with exponential jitter, sizes are drawn
/// around the trace's average, and flow membership is Zipf-skewed (elephant
/// and mice flows). Every flow id in `0..spec.flows` appears at least once
/// so the flow count matches the table.
pub fn generate_trace(spec: &TraceSpec, rng: &mut SimRng) -> Vec<Packet> {
    let n = spec.packets as usize;
    let avg_gap = spec.duration.as_secs_f64() / n as f64;
    let avg_size = spec.avg_packet_size() as f64;
    let zipf = ZipfSampler::new(spec.flows as usize, 1.0);
    let mut seen = vec![false; spec.flows as usize];
    let mut packets = Vec::with_capacity(n);
    let mut t = 0.0f64;
    // New flows open at a steady rate across the capture (as in real
    // traffic) rather than clustering at the start; repeat packets follow
    // Zipf popularity over the flows opened so far.
    let spacing = (n / spec.flows as usize).max(1);
    let mut opened = 0usize;
    for i in 0..n {
        t += rng.exponential(avg_gap);
        let flow = if i % spacing == 0 && opened < spec.flows as usize {
            opened += 1;
            opened - 1
        } else {
            zipf.sample(rng) % opened.max(1)
        };
        let starts_flow = !seen[flow];
        seen[flow] = true;
        // Bimodal sizes: small ACK-ish packets and near-MTU data packets,
        // calibrated so the mean matches the trace average.
        let size = if rng.chance(0.35) {
            rng.uniform_f64(60.0, 120.0)
        } else {
            let data_mean = (avg_size - 0.35 * 90.0) / 0.65;
            rng.uniform_f64(
                (data_mean - 300.0).max(120.0),
                (data_mean + 300.0).min(1514.0),
            )
        };
        packets.push(Packet {
            at: SimTime::ZERO + SimDuration::from_secs_f64(t.min(spec.duration.as_secs_f64())),
            size: size as u32,
            flow: flow as u32,
            starts_flow,
        });
    }
    packets
}

/// Statistics recomputed from a synthesized stream (to print Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Sum of packet sizes.
    pub total_bytes: u64,
    /// Packet count.
    pub packets: u64,
    /// Distinct flows.
    pub flows: u64,
    /// Mean packet size.
    pub avg_packet_size: f64,
    /// Last arrival time.
    pub duration: SimDuration,
}

/// Computes [`TraceStats`] for a stream.
pub fn trace_stats(packets: &[Packet]) -> TraceStats {
    let total_bytes: u64 = packets.iter().map(|p| p.size as u64).sum();
    let flows = packets.iter().filter(|p| p.starts_flow).count() as u64;
    let duration = packets
        .last()
        .map(|p| p.at - SimTime::ZERO)
        .unwrap_or(SimDuration::ZERO);
    TraceStats {
        total_bytes,
        packets: packets.len() as u64,
        flows,
        avg_packet_size: if packets.is_empty() {
            0.0
        } else {
            total_bytes as f64 / packets.len() as f64
        },
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(11)
    }

    #[test]
    fn table2_constants_match_paper() {
        let low = TraceSpec::low_rate();
        assert_eq!(low.packets, 14_261);
        assert_eq!(low.flows, 1_209);
        assert_eq!(low.apps, 28);
        assert_eq!(low.avg_packet_size(), 659); // 9.4 MB / 14261 ≈ 646–659 B
        let high = TraceSpec::high_rate();
        assert_eq!(high.packets, 791_615);
        assert_eq!(high.flows, 40_686);
        assert_eq!(high.apps, 132);
        assert_eq!(high.avg_packet_size(), 464);
    }

    #[test]
    fn generated_low_trace_matches_spec_statistics() {
        let spec = TraceSpec::low_rate();
        let packets = generate_trace(&spec, &mut rng());
        let stats = trace_stats(&packets);
        assert_eq!(stats.packets, spec.packets);
        assert_eq!(stats.flows, spec.flows);
        let size_err = (stats.avg_packet_size - spec.avg_packet_size() as f64).abs()
            / spec.avg_packet_size() as f64;
        assert!(size_err < 0.1, "avg size off by {size_err}");
        assert!(stats.duration <= spec.duration);
        assert!(stats.duration.as_secs_f64() > spec.duration.as_secs_f64() * 0.9);
    }

    #[test]
    fn packets_are_time_ordered() {
        let packets = generate_trace(&TraceSpec::low_rate(), &mut rng());
        for pair in packets.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn every_flow_appears() {
        let spec = TraceSpec::low_rate();
        let packets = generate_trace(&spec, &mut rng());
        let mut seen = vec![false; spec.flows as usize];
        for p in &packets {
            seen[p.flow as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flow_popularity_is_skewed() {
        let spec = TraceSpec::low_rate();
        let packets = generate_trace(&spec, &mut rng());
        let mut counts = vec![0usize; spec.flows as usize];
        for p in &packets {
            counts[p.flow as usize] += 1;
        }
        let max = counts.iter().max().copied().unwrap();
        assert!(max > 50, "elephant flow expected, max {max}");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TraceSpec::low_rate();
        let a = generate_trace(&spec, &mut rng());
        let b = generate_trace(&spec, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stats() {
        let stats = trace_stats(&[]);
        assert_eq!(stats.packets, 0);
        assert_eq!(stats.avg_packet_size, 0.0);
    }
}
