//! App execution schedules.
//!
//! Each app executes repeatedly during a run; the paper draws inter-
//! execution intervals from a Zipf-skewed popularity model with the
//! *average* frequency across apps fixed (3 executions/minute by default).
//! Arrivals within an app are Poisson.

use ape_cachealg::AppId;
use ape_simnet::{SimDuration, SimRng, SimTime};

use crate::zipf::ZipfSampler;

/// One scheduled app execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Execution {
    /// When the execution starts.
    pub at: SimTime,
    /// Which app runs.
    pub app: AppId,
}

/// Parameters for a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Number of apps.
    pub apps: usize,
    /// Average executions per minute *per app*, averaged over all apps
    /// (paper default: 3).
    pub avg_per_minute: f64,
    /// Zipf exponent skewing popularity across apps.
    pub zipf_exponent: f64,
    /// Schedule horizon.
    pub duration: SimDuration,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            apps: 30,
            avg_per_minute: 3.0,
            zipf_exponent: 0.8,
            duration: SimDuration::from_mins(60),
        }
    }
}

/// Generates a time-sorted execution schedule.
///
/// The total arrival rate is `apps × avg_per_minute`; each arrival is
/// assigned to an app by Zipf popularity, so individual apps see dissimilar
/// usage frequencies while the fleet-wide average matches the config.
///
/// # Panics
///
/// Panics if `apps` is zero or `avg_per_minute` is not positive.
pub fn generate_schedule(config: &ScheduleConfig, rng: &mut SimRng) -> Vec<Execution> {
    assert!(config.apps > 0, "schedule needs at least one app");
    assert!(
        config.avg_per_minute > 0.0,
        "average frequency must be positive"
    );
    let zipf = ZipfSampler::new(config.apps, config.zipf_exponent);
    let total_rate_per_sec = config.apps as f64 * config.avg_per_minute / 60.0;
    let mean_gap = 1.0 / total_rate_per_sec;
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs_f64(rng.exponential(mean_gap));
        if t > SimTime::ZERO + config.duration {
            break;
        }
        let app = AppId::new(zipf.sample(rng) as u32);
        schedule.push(Execution { at: t, app });
    }
    schedule
}

/// Per-app execution counts of a schedule (for tests and reports).
pub fn per_app_counts(schedule: &[Execution], apps: usize) -> Vec<usize> {
    let mut counts = vec![0usize; apps];
    for e in schedule {
        let idx = e.app.get() as usize;
        if idx < apps {
            counts[idx] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(77)
    }

    #[test]
    fn schedule_is_time_sorted_within_horizon() {
        let config = ScheduleConfig::default();
        let s = generate_schedule(&config, &mut rng());
        assert!(!s.is_empty());
        for pair in s.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let horizon = SimTime::ZERO + config.duration;
        assert!(s.iter().all(|e| e.at <= horizon));
    }

    #[test]
    fn average_frequency_matches_config() {
        let config = ScheduleConfig {
            apps: 30,
            avg_per_minute: 3.0,
            zipf_exponent: 0.8,
            duration: SimDuration::from_mins(60),
        };
        let s = generate_schedule(&config, &mut rng());
        // Expected executions: 30 apps × 3/min × 60 min = 5400.
        let expected = 5400.0;
        let got = s.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got}, expected ≈{expected}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let config = ScheduleConfig::default();
        let s = generate_schedule(&config, &mut rng());
        let counts = per_app_counts(&s, config.apps);
        // The most popular app should fire several times more often than
        // the least popular.
        let max = counts.iter().max().copied().unwrap();
        let min = counts.iter().min().copied().unwrap();
        assert!(
            max as f64 > 3.0 * (min.max(1) as f64),
            "max {max} min {min}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ScheduleConfig::default();
        let a = generate_schedule(&config, &mut rng());
        let b = generate_schedule(&config, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn low_frequency_yields_fewer_runs() {
        let slow = ScheduleConfig {
            avg_per_minute: 1.0,
            ..ScheduleConfig::default()
        };
        let fast = ScheduleConfig {
            avg_per_minute: 3.0,
            ..ScheduleConfig::default()
        };
        let a = generate_schedule(&slow, &mut rng()).len();
        let b = generate_schedule(&fast, &mut rng()).len();
        assert!(b > 2 * a, "slow {a} fast {b}");
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn zero_apps_rejected() {
        let config = ScheduleConfig {
            apps: 0,
            ..ScheduleConfig::default()
        };
        let _ = generate_schedule(&config, &mut rng());
    }
}
