//! Client roam schedules for multi-AP topologies.
//!
//! A roaming client re-homes to a neighbor AP mid-run (a phone walking
//! across a campus). Roam instants are Poisson arrivals at a configured
//! per-client rate; each roam picks a uniformly random neighbor of the
//! client's *current* cell, so a schedule is a deterministic walk over the
//! AP grid, fully materialized at build time — the simulation itself draws
//! no roam randomness, which keeps sharded runs bitwise reproducible.

use ape_simnet::{SimDuration, SimRng, SimTime};

/// One precomputed roam: at `at`, move to AP index `ap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoamEvent {
    /// When the roam fires.
    pub at: SimTime,
    /// Destination AP, as an index into the topology's AP list.
    pub ap: usize,
}

/// Parameters for a roam schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoamConfig {
    /// Average roams per client per minute (0 disables roaming).
    pub per_client_per_minute: f64,
    /// Schedule horizon.
    pub duration: SimDuration,
}

impl RoamConfig {
    /// A disabled (no-roam) config over `duration`.
    pub fn none(duration: SimDuration) -> Self {
        RoamConfig {
            per_client_per_minute: 0.0,
            duration,
        }
    }
}

/// Generates a time-sorted roam walk for one client homed at AP `home`.
///
/// `neighbors[i]` lists the AP indices adjacent to AP `i` (the topology's
/// grid adjacency). Cells with no neighbors produce an empty schedule, as
/// does a zero rate. Consecutive stops always differ (a roam moves).
///
/// # Panics
///
/// Panics if `home` is out of range of `neighbors` or the rate is negative.
pub fn generate_roam_schedule(
    neighbors: &[Vec<usize>],
    home: usize,
    config: &RoamConfig,
    rng: &mut SimRng,
) -> Vec<RoamEvent> {
    assert!(home < neighbors.len(), "home AP out of range");
    assert!(
        config.per_client_per_minute >= 0.0,
        "roam rate must be non-negative"
    );
    if config.per_client_per_minute == 0.0 {
        return Vec::new();
    }
    let mean_gap = 60.0 / config.per_client_per_minute;
    let mut schedule = Vec::new();
    let mut at = SimTime::ZERO;
    let mut cell = home;
    loop {
        at += SimDuration::from_secs_f64(rng.exponential(mean_gap));
        if at > SimTime::ZERO + config.duration {
            break;
        }
        let options = &neighbors[cell];
        if options.is_empty() {
            break;
        }
        let pick = rng.uniform_u64(0, options.len() as u64 - 1) as usize;
        cell = options[pick];
        schedule.push(RoamEvent { at, ap: cell });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×2 grid, 4-adjacency.
    fn grid4() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]]
    }

    fn config(rate: f64) -> RoamConfig {
        RoamConfig {
            per_client_per_minute: rate,
            duration: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn zero_rate_or_isolated_cell_yields_no_roams() {
        let mut rng = SimRng::seed_from(1);
        assert!(generate_roam_schedule(&grid4(), 0, &config(0.0), &mut rng).is_empty());
        let isolated = vec![Vec::new()];
        assert!(generate_roam_schedule(&isolated, 0, &config(2.0), &mut rng).is_empty());
    }

    #[test]
    fn schedule_is_sorted_adjacent_and_moving() {
        let grid = grid4();
        let mut rng = SimRng::seed_from(42);
        let s = generate_roam_schedule(&grid, 0, &config(1.0), &mut rng);
        assert!(!s.is_empty());
        let horizon = SimTime::ZERO + SimDuration::from_mins(30);
        let mut cell = 0usize;
        for (i, stop) in s.iter().enumerate() {
            assert!(stop.at <= horizon);
            if i > 0 {
                assert!(s[i - 1].at <= stop.at);
            }
            assert!(grid[cell].contains(&stop.ap), "roam to a non-neighbor");
            assert_ne!(stop.ap, cell, "roam must move");
            cell = stop.ap;
        }
    }

    #[test]
    fn same_seed_reproduces_the_walk() {
        let grid = grid4();
        let a = generate_roam_schedule(&grid, 1, &config(3.0), &mut SimRng::seed_from(9));
        let b = generate_roam_schedule(&grid, 1, &config(3.0), &mut SimRng::seed_from(9));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn rate_scales_roam_count() {
        let grid = grid4();
        let low = generate_roam_schedule(&grid, 0, &config(0.5), &mut SimRng::seed_from(7));
        let high = generate_roam_schedule(&grid, 0, &config(6.0), &mut SimRng::seed_from(7));
        assert!(
            high.len() > low.len() * 2,
            "{} vs {}",
            high.len(),
            low.len()
        );
    }
}
