//! Property tests for the Zipf sampler backends.
//!
//! The default (legacy cumulative-scan) draw sequence is a reproducibility
//! contract — artifacts in the repo embed it — so `ZipfSampler::new` must
//! stay stream-identical to an explicit `CumulativeScan` configuration for
//! every `(n, exponent, seed)`. The alias backend only has to agree in
//! distribution, which the band test in `src/zipf.rs` covers; here we pin
//! its structural invariants (range, one-RNG-draw parity).

use ape_simnet::SimRng;
use ape_workload::{ZipfConfig, ZipfMode, ZipfSampler};
use proptest::prelude::*;

proptest! {
    // `new` == `with_config(default)` == explicit legacy mode, draw by draw.
    #[test]
    fn default_backend_is_stream_identical_to_legacy(
        n in 1usize..64,
        exp_milli in 0u32..3_000,
        seed in any::<u64>(),
        draws in 1usize..256,
    ) {
        let exponent = f64::from(exp_milli) / 1_000.0;
        let plain = ZipfSampler::new(n, exponent);
        let configured = ZipfSampler::with_config(n, exponent, ZipfConfig::default());
        let explicit = ZipfSampler::with_config(
            n,
            exponent,
            ZipfConfig { mode: ZipfMode::CumulativeScan },
        );
        let mut r1 = SimRng::seed_from(seed);
        let mut r2 = SimRng::seed_from(seed);
        let mut r3 = SimRng::seed_from(seed);
        for _ in 0..draws {
            let a = plain.sample(&mut r1);
            let b = configured.sample(&mut r2);
            let c = explicit.sample(&mut r3);
            prop_assert_eq!(a, b);
            prop_assert_eq!(b, c);
        }
    }

    // Alias draws stay in range and consume exactly one RNG word per
    // sample, so swapping backends never desynchronizes downstream
    // consumers of the same RNG stream.
    #[test]
    fn alias_backend_is_in_range_with_one_draw_per_sample(
        n in 1usize..64,
        exp_milli in 0u32..3_000,
        seed in any::<u64>(),
        draws in 1usize..256,
    ) {
        let exponent = f64::from(exp_milli) / 1_000.0;
        let alias = ZipfSampler::with_config(
            n,
            exponent,
            ZipfConfig { mode: ZipfMode::Alias },
        );
        let legacy = ZipfSampler::new(n, exponent);
        let mut ra = SimRng::seed_from(seed);
        let mut rl = SimRng::seed_from(seed);
        for _ in 0..draws {
            let idx = alias.sample(&mut ra);
            prop_assert!(idx < n);
            let _ = legacy.sample(&mut rl);
        }
        prop_assert_eq!(ra.next_u64(), rl.next_u64());
    }
}
