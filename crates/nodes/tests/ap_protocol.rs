//! Protocol-level AP tests: DNS edge cases and delegation defaults that
//! the happy-path suites don't reach.

use ape_cachealg::{AppId, Priority};
use ape_dnswire::{CacheFlag, DnsMessage, DomainName, Rcode};
use ape_httpsim::{HttpRequest, HttpResponse, Url};
use ape_nodes::{
    ApConfig, ApNode, AuthDnsNode, Catalog, CatalogEntry, LdnsNode, OriginNode, ZoneAnswer,
};
use ape_proto::{names, CacheOp, ConnId, IpMap, Msg, RequestId};
use ape_simnet::{Context, LinkSpec, Node, NodeId, SimDuration, SimTime, World};

#[derive(Debug, Default)]
struct Probe {
    dns: Vec<DnsMessage>,
    http: Vec<(RequestId, HttpResponse, bool)>,
}

impl Node<Msg> for Probe {
    fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Dns(m) if m.header.response => self.dns.push(*m),
            Msg::HttpRsp {
                req,
                response,
                from_cache,
                ..
            } => self.http.push((req, response, from_cache)),
            _ => {}
        }
    }
}

struct Bed {
    world: World<Msg>,
    probe: NodeId,
    ap: NodeId,
}

fn bed() -> Bed {
    let mut world = World::new(3);
    let probe = world.add_node("probe", Probe::default());

    let mut catalog = Catalog::new();
    catalog.add(
        "http://known.zone.example/obj",
        CatalogEntry {
            size: 10_000,
            extra_latency: SimDuration::from_millis(25),
        },
    );
    let origin = world.add_node(
        "origin",
        OriginNode::new(catalog, SimDuration::from_micros(300)),
    );
    let mut ip_map = IpMap::new();
    let origin_ip = ip_map.assign(origin);

    let mut adns = AuthDnsNode::new(SimDuration::from_micros(300));
    adns.wildcard(
        "zone.example".parse().expect("static"),
        ZoneAnswer::A {
            ip: origin_ip,
            ttl: 30,
        },
    );
    let adns = world.add_node("adns", adns);
    let ldns = world.add_node(
        "ldns",
        LdnsNode::new(
            SimDuration::from_micros(200),
            vec![("zone.example".parse().expect("static"), adns)],
        ),
    );
    let ap = world.add_node("ap", ApNode::new(ApConfig::default(), ldns, ip_map));

    world.connect(
        probe,
        ap,
        LinkSpec::from_rtt(1, SimDuration::from_millis(3)),
    );
    world.connect(
        ap,
        ldns,
        LinkSpec::from_rtt(5, SimDuration::from_millis(13)),
    );
    world.connect(
        ldns,
        adns,
        LinkSpec::from_rtt(12, SimDuration::from_millis(30)),
    );
    world.connect(
        ap,
        origin,
        LinkSpec::from_rtt(9, SimDuration::from_millis(20)),
    );
    Bed { world, probe, ap }
}

fn settle(world: &mut World<Msg>) {
    world.run_for(SimDuration::from_secs(2));
}

#[test]
fn nxdomain_relays_through_the_forwarder() {
    let mut bed = bed();
    let name: DomainName = "nope.zone.example".parse().expect("static");
    // The wildcard answers any zone.example subdomain; use a foreign zone.
    let missing: DomainName = "else.where.example".parse().expect("static");
    let _ = name;
    bed.world
        .post(bed.probe, bed.ap, Msg::dns(DnsMessage::query(7, missing)));
    settle(&mut bed.world);
    let probe = bed.world.node::<Probe>(bed.probe);
    let resp = probe.dns.last().expect("relayed");
    assert_eq!(resp.header.id, 7);
    assert_eq!(resp.header.rcode, Rcode::ServFail);
    assert_eq!(resp.answer_ip(), None);
}

#[test]
fn delegation_without_cache_op_uses_defaults() {
    let mut bed = bed();
    let url = Url::parse("http://known.zone.example/obj?v=1").expect("static");
    // No prior DNS, no cache_op: the AP must resolve and apply default
    // metadata (low priority, 10-minute TTL).
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::HttpReq {
            conn: ConnId(1),
            req: RequestId(1),
            request: Box::new(HttpRequest::get(url.clone())),
            cache_op: None,
        },
    );
    settle(&mut bed.world);
    let probe = bed.world.node::<Probe>(bed.probe);
    let (_, response, from_cache) = probe.http.last().expect("answered");
    assert!(response.status.is_success());
    assert!(!from_cache);
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);

    // Cached under default TTL: still present at +9 min, gone at +11.
    bed.world.run_until(SimTime::from_secs(9 * 60));
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::dns(DnsMessage::dns_cache_request(
            2,
            "known.zone.example".parse().expect("static"),
            &[url.hash()],
        )),
    );
    settle(&mut bed.world);
    let flag = bed
        .world
        .node::<Probe>(bed.probe)
        .dns
        .last()
        .unwrap()
        .cache_response_tuples()[0]
        .flag;
    assert_eq!(flag, CacheFlag::Hit);

    bed.world.run_until(SimTime::from_secs(11 * 60));
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::dns(DnsMessage::dns_cache_request(
            3,
            "known.zone.example".parse().expect("static"),
            &[url.hash()],
        )),
    );
    settle(&mut bed.world);
    let flag = bed
        .world
        .node::<Probe>(bed.probe)
        .dns
        .last()
        .unwrap()
        .cache_response_tuples()[0]
        .flag;
    assert_eq!(flag, CacheFlag::Delegation, "expired after the default TTL");
}

#[test]
fn prefetch_hints_populate_without_any_client_request() {
    let mut bed = bed();
    let url = Url::parse("http://known.zone.example/obj?v=9").expect("static");
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::PrefetchHints {
            hints: vec![ape_proto::PrefetchHint {
                url: url.clone(),
                op: CacheOp {
                    ttl: SimDuration::from_mins(20),
                    priority: Priority::HIGH,
                    app: AppId::new(0),
                },
            }],
        },
    );
    settle(&mut bed.world);
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
    assert_eq!(bed.world.metrics().counter(names::AP_PREFETCHES), 1);
    // A subsequent lookup reports Hit with zero delegations by the client.
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::dns(DnsMessage::dns_cache_request(
            4,
            "known.zone.example".parse().expect("static"),
            &[url.hash()],
        )),
    );
    settle(&mut bed.world);
    let flag = bed
        .world
        .node::<Probe>(bed.probe)
        .dns
        .last()
        .unwrap()
        .cache_response_tuples()[0]
        .flag;
    assert_eq!(flag, CacheFlag::Hit);
}

#[test]
fn duplicate_prefetch_hints_fetch_once() {
    let mut bed = bed();
    let url = Url::parse("http://known.zone.example/obj?v=2").expect("static");
    let hint = ape_proto::PrefetchHint {
        url,
        op: CacheOp {
            ttl: SimDuration::from_mins(20),
            priority: Priority::LOW,
            app: AppId::new(0),
        },
    };
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::PrefetchHints {
            hints: vec![hint.clone(), hint.clone()],
        },
    );
    bed.world
        .post(bed.probe, bed.ap, Msg::PrefetchHints { hints: vec![hint] });
    settle(&mut bed.world);
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
    // Only the first hint started a fetch; the rest were deduplicated
    // against the in-flight delegation or the cached copy.
    assert_eq!(
        bed.world.node::<OriginNode>(NodeId::from_raw(1)).served(),
        1
    );
}

#[test]
fn frequency_window_rolls_update_pacm_rates() {
    let mut bed = bed();
    let url = Url::parse("http://known.zone.example/obj?v=3").expect("static");
    // Issue several data requests for app 5, then cross a window boundary.
    for i in 0..6u64 {
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(i),
                req: RequestId(i),
                request: Box::new(HttpRequest::get(url.clone())),
                cache_op: Some(CacheOp {
                    ttl: SimDuration::from_mins(20),
                    priority: Priority::LOW,
                    app: AppId::new(5),
                }),
            },
        );
        settle(&mut bed.world);
    }
    // Past the 60 s window the AP rolled at least once; the run proceeds
    // without issue and requests were all answered.
    bed.world.run_until(SimTime::from_secs(65));
    let probe = bed.world.node::<Probe>(bed.probe);
    assert_eq!(probe.http.len(), 6);
    // First was a delegation, the rest cache hits.
    assert!(!probe.http[0].2);
    assert!(probe.http[1..].iter().all(|(_, _, from_cache)| *from_cache));
}

#[test]
fn delegation_for_unresolvable_domain_fails_instead_of_looping() {
    let mut bed = bed();
    // A domain outside every delegation: resolution SERVFAILs.
    let url = Url::parse("http://nowhere.void.example/x").expect("static");
    bed.world.post(
        bed.probe,
        bed.ap,
        Msg::HttpReq {
            conn: ConnId(1),
            req: RequestId(1),
            request: Box::new(HttpRequest::get(url)),
            cache_op: Some(CacheOp {
                ttl: SimDuration::from_mins(10),
                priority: Priority::LOW,
                app: AppId::new(0),
            }),
        },
    );
    // Long horizon: a livelock would keep the event queue busy forever.
    let report = bed.world.run_until(SimTime::from_secs(30));
    assert!(
        report.events < 1_000,
        "resolution failure must not spin: {} events",
        report.events
    );
    let probe = bed.world.node::<Probe>(bed.probe);
    let (_, response, _) = probe.http.last().expect("waiter answered");
    assert!(!response.status.is_success(), "gateway timeout returned");
    assert_eq!(
        bed.world
            .metrics()
            .counter(names::AP_DELEGATION_DNS_FAILURES),
        1
    );
}
