//! Client-runtime integration paths: the enhanced HTTP client library
//! driving real app DAGs against an AP, resolver chain and edge server —
//! wired by hand so each path can be inspected closely.

use ape_appdag::{movie_trailer, AppId, AppSpec};
use ape_dnswire::DomainName;
use ape_nodes::{
    ApConfig, ApNode, AuthDnsNode, Catalog, CatalogEntry, ClientConfig, ClientNode, EdgeNode,
    LdnsNode, LookupMode, OriginNode, Strategy, ZoneAnswer,
};
use ape_proto::{names, IpMap, Msg};
use ape_simnet::{LinkSpec, NodeId, SimDuration, SimTime, World};
use ape_workload::Execution;

struct MiniBed {
    world: World<Msg>,
    client: NodeId,
    clients: Vec<NodeId>,
    ap: NodeId,
}

/// Client + AP + LDNS/ADNS/CDN-DNS + edge + origin for the given apps.
fn mini_bed(
    apps: Vec<AppSpec>,
    schedule: Vec<Execution>,
    strategy: Strategy,
    lookup_mode: LookupMode,
) -> MiniBed {
    mini_bed_multi(apps, vec![schedule], strategy, lookup_mode)
}

/// Like [`mini_bed`], with one client per schedule.
fn mini_bed_multi(
    apps: Vec<AppSpec>,
    schedules: Vec<Vec<Execution>>,
    strategy: Strategy,
    lookup_mode: LookupMode,
) -> MiniBed {
    let mut world = World::new(99);

    let mut catalog = Catalog::new();
    for app in &apps {
        for (_, obj) in app.dag().iter() {
            catalog.add(
                obj.url.base_id(),
                CatalogEntry {
                    size: obj.size,
                    extra_latency: obj.remote_latency,
                },
            );
        }
    }
    let origin = world.add_node(
        "origin",
        OriginNode::new(catalog.clone(), SimDuration::from_micros(500)),
    );
    let mut edge = EdgeNode::new(origin, catalog, SimDuration::from_micros(400));
    edge.prewarm();
    let edge = world.add_node("edge", edge);

    let mut ip_map = IpMap::new();
    let edge_ip = ip_map.assign(edge);

    let mut adns = AuthDnsNode::new(SimDuration::from_micros(300));
    let mut cdn = AuthDnsNode::new(SimDuration::from_micros(300));
    let mut delegations = Vec::new();
    for app in &apps {
        for (_, obj) in app.dag().iter() {
            let host = obj.url.host().clone();
            let alias: DomainName = format!("{host}.edgekey.example").parse().expect("alias");
            adns.wildcard(
                host.clone(),
                ZoneAnswer::Cname {
                    target: alias,
                    ttl: 300,
                },
            );
            if !delegations.contains(&host) {
                delegations.push(host);
            }
        }
    }
    cdn.wildcard(
        "edgekey.example".parse().expect("static"),
        ZoneAnswer::A {
            ip: edge_ip,
            ttl: 60,
        },
    );
    let adns = world.add_node("adns", adns);
    let cdn = world.add_node("cdn-dns", cdn);
    let mut table: Vec<(DomainName, NodeId)> =
        vec![("edgekey.example".parse().expect("static"), cdn)];
    for host in delegations {
        table.push((host, adns));
    }
    let ldns = world.add_node("ldns", LdnsNode::new(SimDuration::from_micros(200), table));

    let ap = world.add_node("ap", ApNode::new(ApConfig::default(), ldns, ip_map.clone()));

    let mut clients = Vec::new();
    for (i, schedule) in schedules.into_iter().enumerate() {
        let mut client_config = ClientConfig::new(strategy, ap, ap, ip_map.clone());
        client_config.lookup_mode = lookup_mode;
        if strategy == Strategy::EdgeCache {
            client_config.dns_server = ldns;
        }
        let client = world.add_node(
            format!("client{i}"),
            ClientNode::new(client_config, apps.clone(), schedule),
        );
        world.connect(
            client,
            ap,
            LinkSpec::from_rtt(1, SimDuration::from_millis(3)),
        );
        world.connect(
            client,
            edge,
            LinkSpec::from_rtt(7, SimDuration::from_millis(15)),
        );
        world.connect(
            client,
            ldns,
            LinkSpec::from_rtt(6, SimDuration::from_millis(16)),
        );
        clients.push(client);
    }
    world.connect(
        ap,
        ldns,
        LinkSpec::from_rtt(5, SimDuration::from_millis(13)),
    );
    world.connect(
        ap,
        edge,
        LinkSpec::from_rtt(7, SimDuration::from_millis(14)),
    );
    world.connect(
        ldns,
        adns,
        LinkSpec::from_rtt(12, SimDuration::from_millis(30)),
    );
    world.connect(
        ldns,
        cdn,
        LinkSpec::from_rtt(9, SimDuration::from_millis(20)),
    );
    MiniBed {
        world,
        client: clients[0],
        clients,
        ap,
    }
}

fn movie_schedule(times: &[u64]) -> Vec<Execution> {
    times
        .iter()
        .map(|&s| Execution {
            at: SimTime::from_secs(s),
            app: ape_cachealg::AppId::new(0),
        })
        .collect()
}

#[test]
fn first_execution_delegates_second_hits() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let mut bed = mini_bed(
        apps,
        movie_schedule(&[1, 10]),
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    bed.world.run_until(SimTime::from_secs(9));
    let after_first = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(after_first.executions, 1);
    assert_eq!(after_first.requests, 5, "five MovieTrailer objects");
    // First pass can only delegate (nothing cached yet) unless variants
    // collide; hits must be well below a full execution.
    assert!(after_first.hits <= 2, "hits {}", after_first.hits);
    assert!(bed.world.node::<ApNode>(bed.ap).cached_objects() >= 4);

    bed.world.run_until(SimTime::from_secs(20));
    let after_second = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(after_second.executions, 2);
    // Second execution may use a different movie (variant); but across the
    // 10-variant space with one prior run, at least the re-used variant
    // case must be visible over several runs — so force it by checking
    // delegations did not double.
    assert_eq!(after_second.requests, 10);
    assert_eq!(after_second.failures, 0);
}

#[test]
fn repeated_executions_converge_to_hits() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let times: Vec<u64> = (0..40).map(|i| 1 + i * 20).collect();
    let mut bed = mini_bed(
        apps,
        movie_schedule(&times),
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    bed.world.run_until(SimTime::from_secs(830));
    let report = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(report.executions, 40);
    assert_eq!(report.failures, 0);
    // All ten variants of all five objects fit in 5 MB, so the steady
    // state is hit-dominated.
    assert!(
        report.hit_ratio() > 0.6,
        "hit ratio {:.3} ({} / {})",
        report.hit_ratio(),
        report.hits,
        report.requests
    );
    // High-priority objects (movieID, thumbnail) hit at least as often.
    assert!(report.high_priority_hit_ratio() >= report.hit_ratio() - 0.1);
}

#[test]
fn wicache_without_controller_fails_cleanly() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let mut bed = mini_bed(
        apps,
        movie_schedule(&[1]),
        Strategy::WiCache,
        LookupMode::Piggybacked,
    );
    bed.world.run_until(SimTime::from_secs(30));
    let report = bed.world.node::<ClientNode>(bed.client).report();
    // No controller configured: every lookup fails, the execution still
    // terminates (dependents cancelled), nothing hangs.
    assert_eq!(report.executions, 1);
    assert!(report.failures > 0);
    assert_eq!(report.requests, 0, "no object completed without lookups");
}

#[test]
fn dead_resolver_exhausts_retries_then_fails() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let mut bed = mini_bed(
        apps,
        movie_schedule(&[1]),
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    // Sever the AP's upstream entirely: DNS-Cache queries for unknown
    // domains can never be answered.
    bed.world.connect(
        bed.ap,
        NodeId::from_raw(4), // the LDNS in construction order
        LinkSpec::from_rtt(5, SimDuration::from_millis(13)).loss_probability(0.999),
    );
    bed.world.run_until(SimTime::from_secs(60));
    let metrics = bed.world.metrics();
    assert!(
        metrics.counter(names::CLIENT_DNS_RETRIES) > 0
            || metrics.counter(names::CLIENT_DNS_GIVE_UPS) > 0,
        "retry machinery engaged"
    );
    let report = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(report.executions, 1, "execution terminated regardless");
}

#[test]
fn standalone_mode_doubles_dns_queries() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let times: Vec<u64> = (0..10).map(|i| 1 + i * 70).collect(); // past DNS TTL

    let mut piggy = mini_bed(
        apps.clone(),
        movie_schedule(&times),
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    piggy.world.run_until(SimTime::from_secs(700));
    let piggy_queries = piggy.world.metrics().counter(names::CLIENT_DNS_QUERIES);

    let mut standalone = mini_bed(
        apps,
        movie_schedule(&times),
        Strategy::ApeCache,
        LookupMode::Standalone,
    );
    standalone.world.run_until(SimTime::from_secs(700));
    let standalone_queries = standalone
        .world
        .metrics()
        .counter(names::CLIENT_DNS_QUERIES);

    assert!(
        standalone_queries >= piggy_queries * 2,
        "standalone {standalone_queries} vs piggybacked {piggy_queries}"
    );
    // Both deliver the data.
    assert_eq!(
        standalone
            .world
            .node::<ClientNode>(standalone.client)
            .report()
            .failures,
        0
    );
}

#[test]
fn edge_strategy_resolves_per_fetch_and_skips_ap() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let times: Vec<u64> = (0..5).map(|i| 1 + i * 30).collect();
    let mut bed = mini_bed(
        apps,
        movie_schedule(&times),
        Strategy::EdgeCache,
        LookupMode::Piggybacked,
    );
    bed.world.run_until(SimTime::from_secs(200));
    let report = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(report.executions, 5);
    assert_eq!(report.hits, 0);
    assert_eq!(report.failures, 0);
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);
    // Per-fetch resolution: at least one DNS query per object fetch that
    // could not coalesce; far more than one per execution.
    let queries = bed.world.metrics().counter(names::CLIENT_DNS_QUERIES);
    assert!(queries >= 10, "queries {queries}");
}

#[test]
fn ap_cache_flush_recovers_via_delegation() {
    let apps = vec![movie_trailer(AppId::new(0))];
    let times: Vec<u64> = (0..20).map(|i| 1 + i * 20).collect();
    let mut bed = mini_bed(
        apps,
        movie_schedule(&times),
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    // Warm up: several executions populate the cache.
    bed.world.run_until(SimTime::from_secs(150));
    assert!(bed.world.node::<ApNode>(bed.ap).cached_objects() > 5);

    // Simulated AP reboot wipes the cache mid-run.
    bed.world.node_mut::<ApNode>(bed.ap).flush_cache();
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);

    // The remaining executions — some holding stale Cache-Hit flags —
    // must all complete, and the cache must repopulate.
    bed.world.run_until(SimTime::from_secs(420));
    let report = bed.world.node::<ClientNode>(bed.client).report();
    assert_eq!(report.failures, 0, "stale flags degrade, never fail");
    assert_eq!(report.executions, 20);
    assert!(
        bed.world.node::<ApNode>(bed.ap).cached_objects() > 5,
        "cache repopulated after the flush"
    );
}

#[test]
fn clients_share_the_ap_cache() {
    // A synthetic single-variant app: client A runs it first, client B
    // afterwards — B's fetches must hit what A's delegations cached.
    let app = {
        let mut rng = ape_simnet::SimRng::seed_from(5);
        ape_appdag::generate_app(
            AppId::new(0),
            &ape_appdag::DummyAppConfig::default(),
            &mut rng,
        )
    };
    let a_schedule = movie_schedule(&[1]);
    let b_schedule = movie_schedule(&[30]);
    let mut bed = mini_bed_multi(
        vec![app],
        vec![a_schedule, b_schedule],
        Strategy::ApeCache,
        LookupMode::Piggybacked,
    );
    bed.world.run_until(SimTime::from_secs(60));
    let a = bed.world.node::<ClientNode>(bed.clients[0]).report();
    let b = bed.world.node::<ClientNode>(bed.clients[1]).report();
    assert_eq!(a.executions, 1);
    assert_eq!(b.executions, 1);
    assert_eq!(a.hits, 0, "first client populated the cache");
    assert_eq!(b.hits, b.requests, "second client hit everything: {b:?}");
    assert_eq!(a.failures + b.failures, 0);
}
