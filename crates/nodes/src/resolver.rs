//! DNS infrastructure nodes: authoritative servers and the recursive local
//! resolver (LDNS).
//!
//! Mirrors the CDN resolution anatomy the paper measures in §II (Fig. 1):
//! the LDNS resolves `www.apple.com` against the site's authoritative DNS,
//! receives a CNAME into the CDN's namespace (`…edgekey.net`), chases it to
//! the CDN's DNS, and returns the nearest cache server's address. Record
//! TTLs drive caching at every level; CDN A records are deliberately short
//! (Akamai uses ~20 s), which is why cache lookups stay expensive in the
//! baseline.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ape_dnswire::{DnsMessage, DomainName, RData, Rcode, ResourceRecord};
use ape_proto::Msg;
use ape_simnet::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};

/// What a zone says about a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Terminal address record.
    A {
        /// The address.
        ip: Ipv4Addr,
        /// Record TTL in seconds.
        ttl: u32,
    },
    /// Alias into another namespace (e.g. the CDN's).
    Cname {
        /// The alias target.
        target: DomainName,
        /// Record TTL in seconds.
        ttl: u32,
    },
}

/// An authoritative DNS server for a set of names.
///
/// Also used for the CDN's DNS service, whose zone maps CDN names to the
/// nearest cache server for the querying region (the region binding is
/// static per testbed, as in the paper's single-region deployments).
#[derive(Debug)]
pub struct AuthDnsNode {
    zone: BTreeMap<DomainName, ZoneAnswer>,
    /// Wildcard suffix answers: any subdomain of the key resolves to the
    /// value (keeps 30-app zones terse).
    wildcard: Vec<(DomainName, ZoneAnswer)>,
    processing: SimDuration,
    served: u64,
}

impl AuthDnsNode {
    /// Creates an empty authoritative server with the given per-query
    /// processing time.
    pub fn new(processing: SimDuration) -> Self {
        AuthDnsNode {
            zone: BTreeMap::new(),
            wildcard: Vec::new(),
            processing,
            served: 0,
        }
    }

    /// Adds an exact-name record.
    pub fn record(&mut self, name: DomainName, answer: ZoneAnswer) -> &mut Self {
        self.zone.insert(name, answer);
        self
    }

    /// Adds a wildcard record answering for every subdomain of `suffix`.
    pub fn wildcard(&mut self, suffix: DomainName, answer: ZoneAnswer) -> &mut Self {
        self.wildcard.push((suffix, answer));
        self
    }

    /// Number of queries answered (for tests).
    pub fn served(&self) -> u64 {
        self.served
    }

    fn answer_for(&self, name: &DomainName) -> Option<ZoneAnswer> {
        if let Some(a) = self.zone.get(name) {
            return Some(a.clone());
        }
        self.wildcard
            .iter()
            .find(|(suffix, _)| name.is_subdomain_of(suffix))
            .map(|(_, a)| a.clone())
    }
}

impl Node<Msg> for AuthDnsNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Dns(query) = msg else {
            return; // Authoritative servers only speak DNS.
        };
        if query.header.response {
            return;
        }
        let Some(name) = query.question_name().cloned() else {
            return;
        };
        self.served += 1;
        let mut response = DnsMessage {
            header: ape_dnswire::Header {
                id: query.header.id,
                response: true,
                authoritative: true,
                ..Default::default()
            },
            questions: query.questions.clone(),
            ..Default::default()
        };
        match self.answer_for(&name) {
            Some(ZoneAnswer::A { ip, ttl }) => {
                response
                    .answers
                    .push(ResourceRecord::new(name, ttl, RData::A(ip)));
            }
            Some(ZoneAnswer::Cname { target, ttl }) => {
                response
                    .answers
                    .push(ResourceRecord::new(name, ttl, RData::Cname(target)));
            }
            None => {
                response.header.rcode = Rcode::NxDomain;
            }
        }
        ctx.send_after(self.processing, from, Msg::dns(response));
    }
}

/// A cached record at the LDNS.
#[derive(Debug, Clone)]
enum CachedAnswer {
    A {
        ip: Ipv4Addr,
        expires: SimTime,
        ttl: u32,
    },
    Cname {
        target: DomainName,
        expires: SimTime,
    },
}

/// One in-flight recursive resolution.
#[derive(Debug)]
struct PendingResolution {
    client: NodeId,
    client_query: DnsMessage,
    /// Name currently being chased (changes on CNAME).
    current: DomainName,
    hops: u8,
    /// When the resolution started (drives the give-up timer).
    started: SimTime,
}

/// How long a recursive resolution may chase before the client gets
/// SERVFAIL. One-shot timers (token = txn) rather than a periodic tick, so
/// idle worlds still drain for `run_to_idle`-based tests.
const RESOLVE_TIMEOUT: SimDuration = SimDuration::from_secs(3);

/// The recursive local DNS resolver.
///
/// Maintains an answer cache with TTL expiry and chases CNAME chains across
/// the configured delegations. Produces a final A response to the querying
/// client (or SERVFAIL when resolution dead-ends).
#[derive(Debug)]
pub struct LdnsNode {
    /// Longest-suffix-match delegation table: which server is authoritative
    /// for which namespace.
    delegations: Vec<(DomainName, NodeId)>,
    cache: BTreeMap<DomainName, CachedAnswer>,
    pending: BTreeMap<u16, PendingResolution>,
    processing: SimDuration,
    next_id: u16,
    /// Count of queries answered from cache (for tests/metrics).
    cache_hits: u64,
    /// Count of recursive resolutions performed.
    recursions: u64,
}

const MAX_CNAME_HOPS: u8 = 8;

impl LdnsNode {
    /// Creates a resolver with the given delegation table.
    pub fn new(processing: SimDuration, delegations: Vec<(DomainName, NodeId)>) -> Self {
        LdnsNode {
            delegations,
            cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            processing,
            next_id: 1,
            cache_hits: 0,
            recursions: 0,
        }
    }

    /// Queries answered straight from cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Recursive resolutions performed so far.
    pub fn recursions(&self) -> u64 {
        self.recursions
    }

    /// In-flight recursive resolutions (the chaos tests assert this drains).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Allocates an upstream transaction id, skipping ids still in flight
    /// so a wrapped counter cannot collide with an older resolution.
    fn alloc_txn(&mut self) -> u16 {
        assert!(
            self.pending.len() < u16::MAX as usize,
            "resolver txn space exhausted"
        );
        loop {
            let txn = self.next_id;
            self.next_id = self.next_id.wrapping_add(1).max(1);
            if !self.pending.contains_key(&txn) {
                return txn;
            }
        }
    }

    fn delegation_for(&self, name: &DomainName) -> Option<NodeId> {
        self.delegations
            .iter()
            .filter(|(suffix, _)| name.is_subdomain_of(suffix))
            .max_by_key(|(suffix, _)| suffix.label_count())
            .map(|(_, node)| *node)
    }

    /// Follows fresh cached CNAMEs from `name`, returning the deepest
    /// alias target — where resolution should resume when the terminal A
    /// record expired (a real resolver re-queries only the CDN's DNS).
    fn deepest_fresh_alias(&self, name: &DomainName, now: SimTime) -> DomainName {
        let mut current = name.clone();
        for _ in 0..MAX_CNAME_HOPS {
            match self.cache.get(&current) {
                Some(CachedAnswer::Cname { target, expires }) if *expires > now => {
                    current = target.clone();
                }
                _ => break,
            }
        }
        current
    }

    /// Follows cached CNAMEs from `name`; returns the final cached A if the
    /// whole chain is fresh.
    fn cached_chain(&self, name: &DomainName, now: SimTime) -> Option<(Ipv4Addr, u32)> {
        let mut current = name.clone();
        for _ in 0..MAX_CNAME_HOPS {
            match self.cache.get(&current) {
                Some(CachedAnswer::A { ip, expires, ttl }) if *expires > now => {
                    return Some((*ip, *ttl));
                }
                Some(CachedAnswer::Cname { target, expires }) if *expires > now => {
                    current = target.clone();
                }
                _ => return None,
            }
        }
        None
    }

    fn respond(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        to: NodeId,
        client_query: &DnsMessage,
        outcome: Result<(Ipv4Addr, u32), Rcode>,
    ) {
        let response = match outcome {
            Ok((ip, ttl)) => DnsMessage::dns_cache_response(client_query, ip, ttl, Vec::new()),
            Err(rcode) => {
                let mut r = DnsMessage::dns_cache_response(
                    client_query,
                    Ipv4Addr::UNSPECIFIED,
                    0,
                    Vec::new(),
                );
                r.answers.clear();
                r.header.rcode = rcode;
                r
            }
        };
        ctx.send_after(self.processing, to, Msg::dns(response));
    }

    fn resolve_step(&mut self, ctx: &mut Context<'_, Msg>, txn: u16) {
        let Some(pending) = self.pending.get(&txn) else {
            return;
        };
        let current = pending.current.clone();
        // A fresh cached chain may complete resolution without upstream.
        if let Some((ip, ttl)) = self.cached_chain(&current, ctx.now()) {
            let pending = self.pending.remove(&txn).expect("checked above");
            self.respond(ctx, pending.client, &pending.client_query, Ok((ip, ttl)));
            return;
        }
        match self.delegation_for(&current) {
            Some(auth) => {
                let upstream = DnsMessage::query(txn, current);
                ctx.send_after(self.processing, auth, Msg::dns(upstream));
            }
            None => {
                let pending = self.pending.remove(&txn).expect("checked above");
                self.respond(
                    ctx,
                    pending.client,
                    &pending.client_query,
                    Err(Rcode::ServFail),
                );
            }
        }
    }

    fn handle_client_query(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, query: DnsMessage) {
        let Some(name) = query.question_name().cloned() else {
            return;
        };
        if let Some((ip, ttl)) = self.cached_chain(&name, ctx.now()) {
            self.cache_hits += 1;
            self.respond(ctx, from, &query, Ok((ip, ttl)));
            return;
        }
        self.recursions += 1;
        let txn = self.alloc_txn();
        let resume_from = self.deepest_fresh_alias(&name, ctx.now());
        self.pending.insert(
            txn,
            PendingResolution {
                client: from,
                client_query: query,
                current: resume_from,
                hops: 0,
                started: ctx.now(),
            },
        );
        ctx.schedule(RESOLVE_TIMEOUT, TimerToken::new(txn as u64));
        self.resolve_step(ctx, txn);
    }

    fn handle_upstream_response(&mut self, ctx: &mut Context<'_, Msg>, response: DnsMessage) {
        let txn = response.header.id;
        let Some(pending) = self.pending.get_mut(&txn) else {
            return; // Late or duplicate response.
        };
        let now = ctx.now();
        if let Some(ip) = response.answer_ip() {
            let ttl = response.answers[0].ttl;
            self.cache.insert(
                pending.current.clone(),
                CachedAnswer::A {
                    ip,
                    expires: now + SimDuration::from_secs(ttl as u64),
                    ttl,
                },
            );
            let done = self.pending.remove(&txn).expect("present above");
            self.respond(ctx, done.client, &done.client_query, Ok((ip, ttl)));
            return;
        }
        if let Some(target) = response.answer_cname().cloned() {
            let ttl = response.answers[0].ttl;
            self.cache.insert(
                pending.current.clone(),
                CachedAnswer::Cname {
                    target: target.clone(),
                    expires: now + SimDuration::from_secs(ttl as u64),
                },
            );
            pending.current = target;
            pending.hops += 1;
            if pending.hops > MAX_CNAME_HOPS {
                let done = self.pending.remove(&txn).expect("present above");
                self.respond(ctx, done.client, &done.client_query, Err(Rcode::ServFail));
                return;
            }
            self.resolve_step(ctx, txn);
            return;
        }
        // NXDOMAIN or empty answer: fail the client query.
        let done = self.pending.remove(&txn).expect("present above");
        let rcode = match response.header.rcode {
            Rcode::NoError => Rcode::ServFail,
            other => other,
        };
        self.respond(ctx, done.client, &done.client_query, Err(rcode));
    }
}

impl Node<Msg> for LdnsNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Dns(dns) = msg else {
            return;
        };
        if dns.header.response {
            self.handle_upstream_response(ctx, *dns);
        } else {
            self.handle_client_query(ctx, from, *dns);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        // One-shot resolution give-up: an upstream answer lost on a faulty
        // link would otherwise strand the pending entry (and the client)
        // forever. If the txn was reused by a newer resolution since this
        // timer was armed, the age check makes it a no-op.
        let txn = token.get() as u16;
        let Some(p) = self.pending.get(&txn) else {
            return;
        };
        if ctx.now() - p.started < RESOLVE_TIMEOUT {
            return;
        }
        let done = self.pending.remove(&txn).expect("checked above");
        self.respond(ctx, done.client, &done.client_query, Err(Rcode::ServFail));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_simnet::{LinkSpec, World};

    /// Records the last DNS response it receives.
    #[derive(Debug, Default)]
    struct Probe {
        last: Option<DnsMessage>,
        received_at: Option<SimTime>,
    }

    impl Node<Msg> for Probe {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Dns(m) = msg {
                self.last = Some(*m);
                self.received_at = Some(ctx.now());
            }
        }
    }

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    /// Builds probe → LDNS → {site ADNS, CDN DNS} with the Fig. 1 zones.
    fn testbed() -> (World<Msg>, NodeId, NodeId, NodeId, NodeId) {
        let mut w = World::new(5);
        let probe = w.add_node("probe", Probe::default());

        let mut adns = AuthDnsNode::new(SimDuration::from_micros(300));
        adns.record(
            name("www.apple.example"),
            ZoneAnswer::Cname {
                target: name("www.apple.example.edgekey.example"),
                ttl: 300,
            },
        );
        let adns_id = w.add_node("adns", adns);

        let mut cdn = AuthDnsNode::new(SimDuration::from_micros(300));
        cdn.wildcard(
            name("edgekey.example"),
            ZoneAnswer::A {
                ip: Ipv4Addr::new(10, 0, 0, 9),
                ttl: 20,
            },
        );
        let cdn_id = w.add_node("cdn-dns", cdn);

        let ldns = LdnsNode::new(
            SimDuration::from_micros(200),
            vec![
                (name("apple.example"), adns_id),
                (name("edgekey.example"), cdn_id),
            ],
        );
        let ldns_id = w.add_node("ldns", ldns);

        w.connect(
            probe,
            ldns_id,
            LinkSpec::from_rtt(4, SimDuration::from_millis(8)),
        );
        w.connect(
            ldns_id,
            adns_id,
            LinkSpec::from_rtt(12, SimDuration::from_millis(30)),
        );
        w.connect(
            ldns_id,
            cdn_id,
            LinkSpec::from_rtt(9, SimDuration::from_millis(20)),
        );
        (w, probe, ldns_id, adns_id, cdn_id)
    }

    #[test]
    fn full_cname_chain_resolves() {
        let (mut w, probe, ldns, _adns, _cdn) = testbed();
        let q = DnsMessage::query(42, name("www.apple.example"));
        w.post(probe, ldns, Msg::dns(q));
        w.run_to_idle();
        let p = w.node::<Probe>(probe);
        let resp = p.last.as_ref().expect("response received");
        assert_eq!(resp.header.id, 42);
        assert_eq!(resp.answer_ip(), Some(Ipv4Addr::new(10, 0, 0, 9)));
        // Cold resolution crosses LDNS→ADNS (30ms) and LDNS→CDN (20ms) plus
        // the client RTT (8ms): > 58 ms.
        let t = p.received_at.unwrap().as_millis_f64();
        assert!(t > 58.0, "took {t}ms");
        assert_eq!(w.node::<LdnsNode>(ldns).recursions(), 1);
    }

    #[test]
    fn second_query_hits_ldns_cache() {
        let (mut w, probe, ldns, _adns, _cdn) = testbed();
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(1, name("www.apple.example"))),
        );
        w.run_to_idle();
        // Idling runs past the resolution give-up timer's (no-op) firing,
        // so measure the warm lookup from its own post time.
        let t1 = w.now();
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(2, name("www.apple.example"))),
        );
        w.run_to_idle();
        let t2 = w.node::<Probe>(probe).received_at.unwrap();
        // Warm query only pays the client↔LDNS RTT.
        let warm = (t2 - t1).as_millis_f64();
        assert!(warm < 10.0, "warm lookup took {warm}ms");
        assert_eq!(w.node::<LdnsNode>(ldns).cache_hits(), 1);
    }

    #[test]
    fn short_ttl_expires_and_forces_recursion() {
        let (mut w, probe, ldns, _adns, cdn) = testbed();
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(1, name("www.apple.example"))),
        );
        w.run_to_idle();
        assert_eq!(w.node::<AuthDnsNode>(cdn).served(), 1);
        // After 25 s the 20 s A record expired but the 300 s CNAME is fresh:
        // resolution goes straight to the CDN DNS, not the site ADNS.
        w.run_until(SimTime::from_secs(25));
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(2, name("www.apple.example"))),
        );
        w.run_to_idle();
        assert_eq!(w.node::<AuthDnsNode>(cdn).served(), 2);
        let ldns_node = w.node::<LdnsNode>(ldns);
        assert_eq!(ldns_node.recursions(), 2);
    }

    #[test]
    fn unknown_domain_servfails() {
        let (mut w, probe, ldns, _adns, _cdn) = testbed();
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(7, name("nosuch.zone.example"))),
        );
        w.run_to_idle();
        let resp = w.node::<Probe>(probe).last.as_ref().unwrap();
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(resp.answer_ip(), None);
    }

    #[test]
    fn nxdomain_propagates() {
        let (mut w, probe, ldns, _adns, _cdn) = testbed();
        // apple.example zone exists but the name does not.
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(8, name("missing.apple.example"))),
        );
        w.run_to_idle();
        let resp = w.node::<Probe>(probe).last.as_ref().unwrap();
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn longest_suffix_delegation_wins() {
        let mut w = World::new(1);
        let probe = w.add_node("probe", Probe::default());
        let mut coarse = AuthDnsNode::new(SimDuration::ZERO);
        coarse.wildcard(
            name("example"),
            ZoneAnswer::A {
                ip: Ipv4Addr::new(10, 0, 0, 1),
                ttl: 60,
            },
        );
        let coarse_id = w.add_node("coarse", coarse);
        let mut fine = AuthDnsNode::new(SimDuration::ZERO);
        fine.wildcard(
            name("special.example"),
            ZoneAnswer::A {
                ip: Ipv4Addr::new(10, 0, 0, 2),
                ttl: 60,
            },
        );
        let fine_id = w.add_node("fine", fine);
        let ldns = w.add_node(
            "ldns",
            LdnsNode::new(
                SimDuration::ZERO,
                vec![
                    (name("example"), coarse_id),
                    (name("special.example"), fine_id),
                ],
            ),
        );
        for (a, b) in [(probe, ldns), (ldns, coarse_id), (ldns, fine_id)] {
            w.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        }
        w.post(
            probe,
            ldns,
            Msg::dns(DnsMessage::query(1, name("x.special.example"))),
        );
        w.run_to_idle();
        assert_eq!(
            w.node::<Probe>(probe).last.as_ref().unwrap().answer_ip(),
            Some(Ipv4Addr::new(10, 0, 0, 2))
        );
    }

    #[test]
    fn txn_allocation_skips_live_ids_across_wraparound() {
        let mut ldns = LdnsNode::new(SimDuration::from_micros(300), Vec::new());
        // A resolution stuck in flight: the wrapped counter must not
        // clobber it.
        ldns.pending.insert(
            7,
            PendingResolution {
                client: NodeId::from_raw(1),
                client_query: DnsMessage::query(7, name("pinned.example")),
                current: name("pinned.example"),
                hops: 0,
                started: SimTime::from_nanos(0),
            },
        );
        for _ in 0..262_144u32 {
            let txn = ldns.alloc_txn();
            assert_ne!(txn, 0, "txn 0 is reserved");
            assert_ne!(txn, 7, "live txn reused after wraparound");
        }
    }
}
