//! # ape-nodes — simulated node runtimes for the APE-CACHE testbed
//!
//! Every box in the paper's Fig. 9 testbed, as a [`Node`](ape_simnet::Node)
//! implementation over [`ape_proto::Msg`]:
//!
//! * [`ClientNode`] — the enhanced HTTP-client runtime (programming
//!   support + cache lookup & fetching) executing app DAGs,
//! * [`ApNode`] — the router: dnsmasq-style forwarder with the DNS-Cache
//!   extension, delegation fetcher, PACM/LRU cache, resource meters,
//! * [`LdnsNode`] / [`AuthDnsNode`] — the recursive and authoritative DNS
//!   infrastructure (with CNAME chains into a CDN namespace),
//! * [`EdgeNode`] / [`OriginNode`] — the edge cache server and origin,
//! * [`WiCacheControllerNode`] — the Wi-Cache baseline's controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ap;
mod client;
mod fleet;
mod resolver;
mod server;
mod wicache;

pub use ap::{ApConfig, ApNode, ApPolicy, WiCacheLink};
pub use client::{ClientConfig, ClientNode, ClientReport, LookupMode, RoamStop, Strategy};
pub use fleet::{BoxedClientNode, FleetConfig, FleetMsg, FleetNode, FleetOrigin, FleetResponder};
pub use resolver::{AuthDnsNode, LdnsNode, ZoneAnswer};
pub use server::{Catalog, CatalogEntry, EdgeNode, OriginNode};
pub use wicache::{GridPos, WiCacheControllerNode};
