//! The Wi-Cache controller (baseline, §V-A).
//!
//! Wi-Cache routes every cache request through a centralized controller
//! that knows which AP holds which object. The paper deploys it on EC2,
//! 12 hops from the AP — which is exactly why its cache *lookup* latency
//! exceeds 22 ms while APE-CACHE's stays under 8 ms.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ape_dnswire::UrlHash;
use ape_proto::Msg;
use ape_simnet::{Context, Node, NodeId, SimDuration};

/// The controller: a registry of object → AP placements, updated by AP
/// advertisements, answering client lookups.
#[derive(Debug)]
pub struct WiCacheControllerNode {
    placements: BTreeMap<UrlHash, Ipv4Addr>,
    /// Address of each advertising AP (learned from the testbed builder).
    ap_addresses: BTreeMap<NodeId, Ipv4Addr>,
    processing: SimDuration,
    lookups: u64,
    hits: u64,
}

impl WiCacheControllerNode {
    /// Creates a controller with the given per-request processing time.
    pub fn new(processing: SimDuration) -> Self {
        WiCacheControllerNode {
            placements: BTreeMap::new(),
            ap_addresses: BTreeMap::new(),
            processing,
            lookups: 0,
            hits: 0,
        }
    }

    /// Registers an AP and its address so advertisements can be attributed.
    pub fn register_ap(&mut self, ap: NodeId, address: Ipv4Addr) {
        self.ap_addresses.insert(ap, address);
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a holder.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of tracked placements (for tests).
    pub fn placement_count(&self) -> usize {
        self.placements.len()
    }
}

impl Node<Msg> for WiCacheControllerNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::WiCacheLookup { req, url_hash } => {
                self.lookups += 1;
                let holder = self.placements.get(&url_hash).copied();
                if holder.is_some() {
                    self.hits += 1;
                }
                ctx.send_after(self.processing, from, Msg::WiCacheResult { req, holder });
            }
            Msg::WiCacheAdvertise { added, removed } => {
                let Some(&address) = self.ap_addresses.get(&from) else {
                    return; // Unregistered AP; drop silently.
                };
                for key in added {
                    self.placements.insert(key, address);
                }
                for key in removed {
                    // Only clear if this AP still owns the placement.
                    if self.placements.get(&key) == Some(&address) {
                        self.placements.remove(&key);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_proto::RequestId;
    use ape_simnet::{LinkSpec, World};

    #[derive(Debug, Default)]
    struct Probe {
        results: Vec<(RequestId, Option<Ipv4Addr>)>,
    }

    impl Node<Msg> for Probe {
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::WiCacheResult { req, holder } = msg {
                self.results.push((req, holder));
            }
        }
    }

    fn world() -> (World<Msg>, NodeId, NodeId, NodeId) {
        let mut w = World::new(4);
        let probe = w.add_node("probe", Probe::default());
        let ap = w.add_node("ap", Probe::default()); // stands in for an AP
        let controller = w.add_node(
            "controller",
            WiCacheControllerNode::new(SimDuration::from_micros(300)),
        );
        w.connect(
            probe,
            controller,
            LinkSpec::from_rtt(12, SimDuration::from_millis(24)),
        );
        w.connect(
            ap,
            controller,
            LinkSpec::from_rtt(12, SimDuration::from_millis(24)),
        );
        (w, probe, ap, controller)
    }

    #[test]
    fn lookup_miss_then_hit_after_advertisement() {
        let (mut w, probe, ap, controller) = world();
        let ap_ip = Ipv4Addr::new(10, 0, 0, 3);
        w.node_mut::<WiCacheControllerNode>(controller)
            .register_ap(ap, ap_ip);

        let key = UrlHash::of("http://a/x");
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(1),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results, vec![(RequestId(1), None)]);

        w.post(
            ap,
            controller,
            Msg::WiCacheAdvertise {
                added: vec![key],
                removed: vec![],
            },
        );
        w.run_to_idle();
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(2),
                url_hash: key,
            },
        );
        w.run_to_idle();
        let results = &w.node::<Probe>(probe).results;
        assert_eq!(results[1], (RequestId(2), Some(ap_ip)));
        let c = w.node::<WiCacheControllerNode>(controller);
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn removal_clears_placement() {
        let (mut w, probe, ap, controller) = world();
        let ap_ip = Ipv4Addr::new(10, 0, 0, 3);
        w.node_mut::<WiCacheControllerNode>(controller)
            .register_ap(ap, ap_ip);
        let key = UrlHash::of("http://a/x");
        w.post(
            ap,
            controller,
            Msg::WiCacheAdvertise {
                added: vec![key],
                removed: vec![],
            },
        );
        w.run_to_idle();
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            1
        );
        w.post(
            ap,
            controller,
            Msg::WiCacheAdvertise {
                added: vec![],
                removed: vec![key],
            },
        );
        w.run_to_idle();
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            0
        );
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(3),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results.last().unwrap().1, None);
    }

    #[test]
    fn unregistered_ap_advertisements_ignored() {
        let (mut w, _probe, ap, controller) = world();
        let key = UrlHash::of("http://a/x");
        w.post(
            ap,
            controller,
            Msg::WiCacheAdvertise {
                added: vec![key],
                removed: vec![],
            },
        );
        w.run_to_idle();
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            0
        );
    }

    #[test]
    fn lookup_round_trip_pays_controller_distance() {
        let (mut w, probe, _ap, controller) = world();
        let key = UrlHash::of("http://a/x");
        let start = w.now();
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(1),
                url_hash: key,
            },
        );
        w.run_to_idle();
        let elapsed = (w.now() - start).as_millis_f64();
        assert!(elapsed >= 24.0, "lookup took {elapsed}ms");
    }
}
