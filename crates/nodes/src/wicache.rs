//! The Wi-Cache controller (baseline, §V-A).
//!
//! Wi-Cache routes every cache request through a centralized controller
//! that knows which AP holds which object. The paper deploys it on EC2,
//! 12 hops from the AP — which is exactly why its cache *lookup* latency
//! exceeds 22 ms while APE-CACHE's stays under 8 ms.
//!
//! The placement registry is **multi-holder**: an object can be cached on
//! several APs at once (city-scale fleets make that the common case), and
//! removals only clear the removing AP's own entry. A lookup answers with
//! the holder nearest to the requester's registered grid position
//! (Manhattan distance, address as the deterministic tie-break), so routing
//! is stable across shard counts, thread counts, and tie-perturbation keys.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use ape_dnswire::UrlHash;
use ape_proto::{names, Msg};
use ape_simnet::{Context, Node, NodeId, SimDuration};

/// A grid position used for nearest-holder selection (arbitrary units;
/// the topology builder uses AP grid coordinates).
pub type GridPos = (u32, u32);

/// The controller: a registry of object → AP-set placements, updated by AP
/// advertisements, answering client lookups with the nearest holder.
#[derive(Debug)]
pub struct WiCacheControllerNode {
    placements: BTreeMap<UrlHash, BTreeSet<Ipv4Addr>>,
    /// Address of each advertising AP (learned from the testbed builder).
    ap_addresses: BTreeMap<NodeId, Ipv4Addr>,
    /// Grid position of registered nodes: APs (keyed by address via
    /// `addr_positions`) and lookup requesters (clients, keyed by node).
    node_positions: BTreeMap<NodeId, GridPos>,
    addr_positions: BTreeMap<Ipv4Addr, GridPos>,
    processing: SimDuration,
    lookups: u64,
    hits: u64,
}

impl WiCacheControllerNode {
    /// Creates a controller with the given per-request processing time.
    pub fn new(processing: SimDuration) -> Self {
        WiCacheControllerNode {
            placements: BTreeMap::new(),
            ap_addresses: BTreeMap::new(),
            node_positions: BTreeMap::new(),
            addr_positions: BTreeMap::new(),
            processing,
            lookups: 0,
            hits: 0,
        }
    }

    /// Registers an AP and its address so advertisements can be attributed.
    /// The AP is placed at the grid origin; multi-AP topologies use
    /// [`register_ap_at`](Self::register_ap_at) instead.
    pub fn register_ap(&mut self, ap: NodeId, address: Ipv4Addr) {
        self.register_ap_at(ap, address, (0, 0));
    }

    /// Registers an AP with its address and grid position.
    pub fn register_ap_at(&mut self, ap: NodeId, address: Ipv4Addr, pos: GridPos) {
        self.ap_addresses.insert(ap, address);
        self.node_positions.insert(ap, pos);
        self.addr_positions.insert(address, pos);
    }

    /// Registers a lookup requester's grid position (a client's home-AP
    /// cell), used to pick the nearest holder for its lookups.
    pub fn register_requester_at(&mut self, node: NodeId, pos: GridPos) {
        self.node_positions.insert(node, pos);
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a holder.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of objects with at least one tracked holder (for tests).
    pub fn placement_count(&self) -> usize {
        self.placements.len()
    }

    /// Number of holders tracked for `key` (for tests).
    pub fn holder_count(&self, key: UrlHash) -> usize {
        self.placements.get(&key).map_or(0, BTreeSet::len)
    }

    /// The holder nearest to `from`: minimal (Manhattan distance, address).
    /// Unregistered positions default to the grid origin, which degenerates
    /// to lowest-address selection — still fully deterministic.
    fn nearest_holder(&self, from: NodeId, key: UrlHash) -> Option<Ipv4Addr> {
        let holders = self.placements.get(&key)?;
        let origin = self.node_positions.get(&from).copied().unwrap_or((0, 0));
        holders
            .iter()
            .min_by_key(|addr| {
                let pos = self.addr_positions.get(addr).copied().unwrap_or((0, 0));
                let dist = pos.0.abs_diff(origin.0) as u64 + pos.1.abs_diff(origin.1) as u64;
                (dist, **addr)
            })
            .copied()
    }
}

impl Node<Msg> for WiCacheControllerNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::WiCacheLookup { req, url_hash } => {
                self.lookups += 1;
                let holder = self.nearest_holder(from, url_hash);
                if holder.is_some() {
                    self.hits += 1;
                }
                ctx.send_after(self.processing, from, Msg::WiCacheResult { req, holder });
            }
            Msg::WiCacheAdvertise { added, removed } => {
                let Some(&address) = self.ap_addresses.get(&from) else {
                    // Unregistered AP: a topology misconfiguration. Count it
                    // so it is observable instead of silently invisible.
                    ctx.metrics().incr_id(names::id::WICACHE_ADVERT_DROPPED, 1);
                    return;
                };
                for key in added {
                    self.placements.entry(key).or_default().insert(address);
                }
                for key in removed {
                    // Per-holder remove: only this AP's entry goes away;
                    // other holders keep serving the object.
                    if let Some(holders) = self.placements.get_mut(&key) {
                        holders.remove(&address);
                        if holders.is_empty() {
                            self.placements.remove(&key);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_proto::RequestId;
    use ape_simnet::{LinkSpec, World};

    #[derive(Debug, Default)]
    struct Probe {
        results: Vec<(RequestId, Option<Ipv4Addr>)>,
    }

    impl Node<Msg> for Probe {
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::WiCacheResult { req, holder } = msg {
                self.results.push((req, holder));
            }
        }
    }

    fn world() -> (World<Msg>, NodeId, NodeId, NodeId) {
        let mut w = World::new(4);
        let probe = w.add_node("probe", Probe::default());
        let ap = w.add_node("ap", Probe::default()); // stands in for an AP
        let controller = w.add_node(
            "controller",
            WiCacheControllerNode::new(SimDuration::from_micros(300)),
        );
        w.connect(
            probe,
            controller,
            LinkSpec::from_rtt(12, SimDuration::from_millis(24)),
        );
        w.connect(
            ap,
            controller,
            LinkSpec::from_rtt(12, SimDuration::from_millis(24)),
        );
        (w, probe, ap, controller)
    }

    /// Adds a second stand-in AP wired to the controller.
    fn second_ap(w: &mut World<Msg>, controller: NodeId) -> NodeId {
        let ap_b = w.add_node("ap-b", Probe::default());
        w.connect(
            ap_b,
            controller,
            LinkSpec::from_rtt(12, SimDuration::from_millis(24)),
        );
        ap_b
    }

    fn advertise(w: &mut World<Msg>, ap: NodeId, controller: NodeId, key: UrlHash, add: bool) {
        let (added, removed) = if add {
            (vec![key], vec![])
        } else {
            (vec![], vec![key])
        };
        w.post(ap, controller, Msg::WiCacheAdvertise { added, removed });
        w.run_to_idle();
    }

    #[test]
    fn lookup_miss_then_hit_after_advertisement() {
        let (mut w, probe, ap, controller) = world();
        let ap_ip = Ipv4Addr::new(10, 0, 0, 3);
        w.node_mut::<WiCacheControllerNode>(controller)
            .register_ap(ap, ap_ip);

        let key = UrlHash::of("http://a/x");
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(1),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results, vec![(RequestId(1), None)]);

        advertise(&mut w, ap, controller, key, true);
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(2),
                url_hash: key,
            },
        );
        w.run_to_idle();
        let results = &w.node::<Probe>(probe).results;
        assert_eq!(results[1], (RequestId(2), Some(ap_ip)));
        let c = w.node::<WiCacheControllerNode>(controller);
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn removal_clears_placement() {
        let (mut w, probe, ap, controller) = world();
        let ap_ip = Ipv4Addr::new(10, 0, 0, 3);
        w.node_mut::<WiCacheControllerNode>(controller)
            .register_ap(ap, ap_ip);
        let key = UrlHash::of("http://a/x");
        advertise(&mut w, ap, controller, key, true);
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            1
        );
        advertise(&mut w, ap, controller, key, false);
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            0
        );
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(3),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results.last().unwrap().1, None);
    }

    /// The single-holder registry bug this PR fixes: AP B advertising a key
    /// AP A already holds used to *steal* the placement, and A's later
    /// `removed` was ignored by the owner guard — stranding stale state.
    /// With the multi-holder registry both holders are tracked, and each
    /// removal clears exactly its own entry.
    #[test]
    fn second_holder_does_not_steal_and_removal_is_per_holder() {
        let (mut w, probe, ap_a, controller) = world();
        let ap_b = second_ap(&mut w, controller);
        let ip_a = Ipv4Addr::new(10, 0, 0, 3);
        let ip_b = Ipv4Addr::new(10, 0, 0, 4);
        {
            let c = w.node_mut::<WiCacheControllerNode>(controller);
            c.register_ap(ap_a, ip_a);
            c.register_ap(ap_b, ip_b);
        }
        let key = UrlHash::of("http://a/x");
        advertise(&mut w, ap_a, controller, key, true);
        advertise(&mut w, ap_b, controller, key, true);
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .holder_count(key),
            2
        );

        // A removes its copy; B must remain the (only) holder.
        advertise(&mut w, ap_a, controller, key, false);
        let c = w.node::<WiCacheControllerNode>(controller);
        assert_eq!(c.holder_count(key), 1);
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(7),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results.last().unwrap().1, Some(ip_b));

        // B removes too: no holders left, lookups miss again.
        advertise(&mut w, ap_b, controller, key, false);
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            0
        );
    }

    /// Nearest-holder selection: a requester registered next to AP B gets
    /// B even though A's address sorts first; ties break on address.
    #[test]
    fn lookup_returns_nearest_holder_with_address_tiebreak() {
        let (mut w, probe, ap_a, controller) = world();
        let ap_b = second_ap(&mut w, controller);
        let ip_a = Ipv4Addr::new(10, 0, 0, 3);
        let ip_b = Ipv4Addr::new(10, 0, 0, 4);
        {
            let c = w.node_mut::<WiCacheControllerNode>(controller);
            c.register_ap_at(ap_a, ip_a, (0, 0));
            c.register_ap_at(ap_b, ip_b, (3, 0));
            c.register_requester_at(probe, (3, 0));
        }
        let key = UrlHash::of("http://a/x");
        advertise(&mut w, ap_a, controller, key, true);
        advertise(&mut w, ap_b, controller, key, true);
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(1),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results.last().unwrap().1, Some(ip_b));

        // Re-home the requester midway: both holders now tie on distance,
        // and the lower address (A) wins deterministically.
        w.node_mut::<WiCacheControllerNode>(controller)
            .register_requester_at(probe, (1, 1));
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(2),
                url_hash: key,
            },
        );
        w.run_to_idle();
        assert_eq!(w.node::<Probe>(probe).results.last().unwrap().1, Some(ip_a));
    }

    #[test]
    fn unregistered_ap_advertisements_ignored() {
        let (mut w, _probe, ap, controller) = world();
        let key = UrlHash::of("http://a/x");
        w.post(
            ap,
            controller,
            Msg::WiCacheAdvertise {
                added: vec![key],
                removed: vec![],
            },
        );
        w.run_to_idle();
        assert_eq!(
            w.node::<WiCacheControllerNode>(controller)
                .placement_count(),
            0
        );
        assert_eq!(w.metrics().counter(names::WICACHE_ADVERT_DROPPED), 1);
    }

    #[test]
    fn lookup_round_trip_pays_controller_distance() {
        let (mut w, probe, _ap, controller) = world();
        let key = UrlHash::of("http://a/x");
        let start = w.now();
        w.post(
            probe,
            controller,
            Msg::WiCacheLookup {
                req: RequestId(1),
                url_hash: key,
            },
        );
        w.run_to_idle();
        let elapsed = (w.now() - start).as_millis_f64();
        assert!(elapsed >= 24.0, "lookup took {elapsed}ms");
    }
}
