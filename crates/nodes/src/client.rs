//! The client runtime: the paper's enhanced HTTP client library.
//!
//! Two modules from Fig. 5 live here. *Programming support* holds the
//! `Cacheable` registry (base URL → priority/TTL, mirroring the Java
//! annotations) and intercepts outgoing requests whose base URL matches.
//! *Cache lookup & fetching* implements the strategy-specific retrieval
//! workflows:
//!
//! * **APE-CACHE** — piggyback the AP cache lookup on the DNS query
//!   (DNS-Cache), then fetch from the AP (`Cache-Hit`), delegate to it
//!   (`Delegation`), or fall back to the edge (`Cache-Miss`);
//! * **Wi-Cache** — ask the remote controller who holds the object, then
//!   fetch from the AP or delegate through it on a miss;
//! * **Edge Cache** — resolve the CDN name through the local DNS and fetch
//!   from the edge server.
//!
//! The client also executes app DAGs: an execution starts at the roots,
//! each completed object releases its dependents, and app-level latency is
//! the time until the last object lands (the "composeUI" moment).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ape_appdag::{AppSpec, ObjIdx};
use ape_cachealg::Priority;
use ape_dnswire::{CacheFlag, DnsMessage, DomainName, Rcode, UrlHash};
use ape_httpsim::{HttpRequest, HttpResponse, Url};
use ape_proto::{names, CacheOp, ConnId, IpMap, Msg, RequestId, SpanKind};
use ape_simnet::{Context, Node, NodeId, SimDuration, SimTime, SpanCtx, TimerToken};
use ape_workload::Execution;

/// Which caching system the client runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// APE-CACHE (and APE-CACHE-LRU — the difference is the AP's policy).
    ApeCache,
    /// The Wi-Cache baseline: controller-mediated lookups.
    WiCache,
    /// The Edge Cache baseline: plain DNS + edge fetch.
    EdgeCache,
}

/// How APE-CACHE cache lookups are issued (Fig. 11b ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// Piggybacked on the DNS query (the paper's design).
    #[default]
    Piggybacked,
    /// A separate cache query after a regular DNS query.
    Standalone,
}

/// Client configuration and wiring.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retrieval strategy.
    pub strategy: Strategy,
    /// Lookup mode (APE-CACHE only).
    pub lookup_mode: LookupMode,
    /// Where DNS queries go: the AP for APE-CACHE (it *is* the resolver on
    /// real LANs), the LDNS for the Edge Cache baseline.
    pub dns_server: NodeId,
    /// The AP serving cache hits and delegations.
    pub ap: NodeId,
    /// The Wi-Cache controller (Wi-Cache strategy only).
    pub controller: Option<NodeId>,
    /// Address book for dialling resolved IPs.
    pub ip_map: IpMap,
    /// Client-side processing per protocol step (Android runtime overhead).
    pub processing: SimDuration,
    /// DNS retry timeout.
    pub dns_timeout: SimDuration,
    /// DNS retries before a fetch fails.
    pub dns_retries: u32,
    /// Base timeout for the retrieval stage (controller lookup, TCP
    /// connect, HTTP response); doubles per retry (exponential backoff).
    pub http_timeout: SimDuration,
    /// Retrieval retries before a fetch fails.
    pub http_retries: u32,
    /// Whether resolved addresses are reused until their TTL expires.
    /// APE-CACHE needs this (flags ride on the DNS entries); the Edge
    /// Cache baseline follows the paper's Fig. 1 workflow, where every
    /// object access initiates its own DNS resolution.
    pub cache_dns: bool,
    /// Extension (paper §VI): ship request-dependency information to the
    /// AP so it prefetches the objects this execution will need next.
    pub prefetch_hints: bool,
}

impl ClientConfig {
    /// Baseline config for `strategy`; callers fill in the wiring ids.
    pub fn new(strategy: Strategy, dns_server: NodeId, ap: NodeId, ip_map: IpMap) -> Self {
        ClientConfig {
            strategy,
            lookup_mode: LookupMode::Piggybacked,
            dns_server,
            ap,
            controller: None,
            ip_map,
            processing: SimDuration::from_micros(300),
            dns_timeout: SimDuration::from_secs(3),
            dns_retries: 2,
            http_timeout: SimDuration::from_secs(4),
            http_retries: 2,
            cache_dns: !matches!(strategy, Strategy::EdgeCache),
            prefetch_hints: false,
        }
    }
}

/// What the registry knows about a cacheable object family — the runtime
/// image of one `@Cacheable` annotation.
#[derive(Debug, Clone, Copy)]
struct CacheableSpec {
    priority: Priority,
    ttl: SimDuration,
    app: ape_cachealg::AppId,
}

/// How a fetch will retrieve its object once the lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchMode {
    ApHit,
    Delegation,
    Edge,
}

#[derive(Debug)]
enum Phase {
    /// Waiting on a DNS (or DNS-Cache) response for the domain.
    AwaitingDns,
    /// Waiting on the Wi-Cache controller.
    AwaitingController,
    /// TCP SYN sent.
    Connecting { target: NodeId, mode: FetchMode },
    /// Request sent on the established connection.
    Fetching { mode: FetchMode },
}

/// One in-flight object fetch.
#[derive(Debug)]
struct Fetch {
    exec: u64,
    obj: ObjIdx,
    app_idx: usize,
    url: Url,
    key: UrlHash,
    started: SimTime,
    lookup_started: SimTime,
    /// Set when the lookup needed an actual network query.
    lookup_was_query: bool,
    retrieval_started: Option<SimTime>,
    phase: Phase,
    /// Retrieval attempts consumed (0 = first try); stale timers and
    /// responses from earlier attempts are recognized by mismatch.
    attempt: u32,
    /// The connection of the current attempt, so abandoning or finishing
    /// the fetch also drops its `conns` entry.
    conn: Option<ConnId>,
    /// Root span of this fetch's trace (tracing enabled + sampled only).
    root_span: Option<SpanCtx>,
    /// Open lookup-stage span; taken when the stage ends.
    lookup_span: Option<SpanCtx>,
    /// Open retrieval-stage span and its kind; taken when the fetch ends.
    retrieval_span: Option<(SpanCtx, SpanKind)>,
}

/// One running app execution.
#[derive(Debug)]
struct Exec {
    app_idx: usize,
    started: SimTime,
    remaining: usize,
    /// Outstanding dependency count per object (`usize::MAX` = cancelled).
    deps_left: Vec<usize>,
    variant: u32,
    failed: bool,
}

/// A DNS(-Cache) query in flight for a domain.
#[derive(Debug)]
struct PendingDns {
    txn: u16,
    waiting: Vec<RequestId>,
    retries: u32,
    /// Hashes included in the query (DNS-Cache mode).
    hashes: Vec<UrlHash>,
    /// Standalone second-stage query flag.
    cache_stage: bool,
}

/// Client-side outcome counters, exposed for harnesses and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Cacheable object fetches completed.
    pub requests: u64,
    /// Fetches served from the AP cache.
    pub hits: u64,
    /// High-priority fetches completed.
    pub high_requests: u64,
    /// High-priority fetches served from the AP cache.
    pub high_hits: u64,
    /// Fetches that failed (DNS give-up or upstream error).
    pub failures: u64,
    /// App executions completed.
    pub executions: u64,
}

impl ClientReport {
    /// Overall AP-cache hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// High-priority AP-cache hit ratio.
    pub fn high_priority_hit_ratio(&self) -> f64 {
        if self.high_requests == 0 {
            0.0
        } else {
            self.high_hits as f64 / self.high_requests as f64
        }
    }

    /// Adds another report's counters.
    pub fn merge(&mut self, other: &ClientReport) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.high_requests += other.high_requests;
        self.high_hits += other.high_hits;
        self.failures += other.failures;
        self.executions += other.executions;
    }
}

/// One stop on a client's roam schedule: at `at`, the client re-homes to
/// `ap` (its new DNS server and delegation target), notifying the old AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoamStop {
    /// When the roam fires.
    pub at: SimTime,
    /// The AP the client associates with from then on.
    pub ap: NodeId,
}

/// The client node.
#[derive(Debug)]
pub struct ClientNode {
    config: ClientConfig,
    apps: Vec<AppSpec>,
    /// Dependents per app per object (reverse edges of the DAG).
    children: Vec<Vec<Vec<ObjIdx>>>,
    registry: BTreeMap<String, CacheableSpec>,
    schedule: Vec<Execution>,
    /// Roam stops, installed at build time (empty for non-roaming clients,
    /// which then schedule no roam timers at all).
    roam_schedule: Vec<RoamStop>,
    /// App id → index into `apps`.
    app_index: BTreeMap<u32, usize>,
    dns_cache: BTreeMap<DomainName, (Ipv4Addr, SimTime)>,
    /// Per-domain cached flags and their validity horizon.
    flags: BTreeMap<DomainName, (BTreeMap<UrlHash, CacheFlag>, SimTime)>,
    pending_dns: BTreeMap<DomainName, PendingDns>,
    txn_domains: BTreeMap<u16, DomainName>,
    fetches: BTreeMap<RequestId, Fetch>,
    conns: BTreeMap<ConnId, RequestId>,
    execs: BTreeMap<u64, Exec>,
    report: ClientReport,
    next_txn: u16,
    next_req: u64,
    next_conn: u64,
    next_exec: u64,
}

/// Timer-token namespaces. Tokens below `1 << 32` are schedule indices;
/// bit 32 marks DNS retransmit timers (txn id in the low 16 bits); bit 33
/// marks HTTP/retrieval timers (request id in the low 32 bits, attempt
/// number in bits 40+); bit 34 marks roam timers (roam-schedule index in
/// the low 32 bits).
const TOKEN_DNS_BASE: u64 = 1 << 32;
const TOKEN_HTTP_BASE: u64 = 1 << 33;
const TOKEN_ROAM_BASE: u64 = 1 << 34;
const HTTP_ATTEMPT_SHIFT: u32 = 40;

/// Phase-staggers a watchdog delay so timers armed by the same handler
/// never share a nanosecond. Fetches launched together share `now`; if
/// their watchdogs tied, tie-break order would decide which retransmission
/// draws link jitter from the world's shared RNG stream first, breaking
/// tie-perturbation invariance under loss. 61 ns per id keeps the skew
/// under 4 ms — noise against the multi-second timeouts it offsets.
fn staggered(base: SimDuration, id: u64) -> SimDuration {
    let skew_ns = (id & 0xFFFF) * 61;
    base + SimDuration::from_nanos(skew_ns)
}

fn http_token(req: RequestId, attempt: u32) -> TimerToken {
    TimerToken::new(
        TOKEN_HTTP_BASE | ((attempt as u64) << HTTP_ATTEMPT_SHIFT) | (req.0 & 0xFFFF_FFFF),
    )
}

impl ClientNode {
    /// Creates a client running `apps` on `schedule` (entries refer to apps
    /// by [`AppId`](ape_cachealg::AppId); entries for unknown apps are
    /// ignored).
    pub fn new(config: ClientConfig, apps: Vec<AppSpec>, schedule: Vec<Execution>) -> Self {
        let mut registry = BTreeMap::new();
        let mut app_index = BTreeMap::new();
        let mut children = Vec::with_capacity(apps.len());
        for (i, app) in apps.iter().enumerate() {
            app_index.insert(app.id().get(), i);
            let dag = app.dag();
            let mut kids = vec![Vec::new(); dag.len()];
            for (idx, _) in dag.iter() {
                for dep in dag.deps(idx) {
                    kids[dep.get()].push(idx);
                }
            }
            children.push(kids);
            for (_, obj) in dag.iter() {
                registry.insert(
                    obj.url.base_id(),
                    CacheableSpec {
                        priority: obj.priority,
                        ttl: obj.ttl,
                        app: app.id(),
                    },
                );
            }
        }
        ClientNode {
            config,
            apps,
            children,
            registry,
            schedule,
            app_index,
            roam_schedule: Vec::new(),
            dns_cache: BTreeMap::new(),
            flags: BTreeMap::new(),
            pending_dns: BTreeMap::new(),
            txn_domains: BTreeMap::new(),
            fetches: BTreeMap::new(),
            conns: BTreeMap::new(),
            execs: BTreeMap::new(),
            report: ClientReport::default(),
            next_txn: 1,
            next_req: 1,
            next_conn: 1,
            next_exec: 1,
        }
    }

    /// Installs a roam schedule (multi-AP topologies; each stop re-homes
    /// the client to a neighbor AP at the given instant).
    pub fn with_roam_schedule(mut self, roam_schedule: Vec<RoamStop>) -> Self {
        self.roam_schedule = roam_schedule;
        self
    }

    /// The outcome counters.
    pub fn report(&self) -> ClientReport {
        self.report
    }

    /// Kicks off one execution of app `app_idx` immediately (tests and
    /// micro-benches; scheduled runs use the construction-time schedule).
    pub fn trigger_execution(&mut self, ctx: &mut Context<'_, Msg>, app_idx: usize) {
        let dag = self.apps[app_idx].dag();
        let exec_id = self.next_exec;
        self.next_exec += 1;
        let variants = self.apps[app_idx].variants();
        let variant = if variants <= 1 {
            0
        } else {
            ctx.rng().uniform_u64(0, variants as u64 - 1) as u32
        };
        let deps_left: Vec<usize> = dag.iter().map(|(idx, _)| dag.deps(idx).len()).collect();
        let roots = dag.roots();
        let len = dag.len();
        self.execs.insert(
            exec_id,
            Exec {
                app_idx,
                started: ctx.now(),
                remaining: len,
                deps_left,
                variant,
                failed: false,
            },
        );
        if len == 0 {
            self.finish_exec(ctx, exec_id);
            return;
        }
        for root in roots {
            self.start_fetch(ctx, exec_id, root);
        }
    }

    fn finish_exec(&mut self, ctx: &mut Context<'_, Msg>, exec_id: u64) {
        let Some(exec) = self.execs.remove(&exec_id) else {
            return;
        };
        self.report.executions += 1;
        let latency = (ctx.now() - exec.started).as_millis_f64();
        let name = self.apps[exec.app_idx].name().to_owned();
        ctx.metrics()
            .observe_id(names::id::CLIENT_APP_LATENCY_MS, latency);
        ctx.metrics()
            .observe(&names::client_app_latency_ms(&name), latency);
        if exec.failed {
            ctx.metrics()
                .incr_id(names::id::CLIENT_FAILED_EXECUTIONS, 1);
        }
    }

    // ------------------------------------------------------------------
    // Fetch lifecycle
    // ------------------------------------------------------------------

    fn start_fetch(&mut self, ctx: &mut Context<'_, Msg>, exec_id: u64, obj: ObjIdx) {
        let exec = &self.execs[&exec_id];
        let app_idx = exec.app_idx;
        let variant = exec.variant;
        let spec = self.apps[app_idx].dag().object(obj).clone();
        let url = spec.url.with_query(format!("v={variant}"));
        let key = url.hash();
        let req = RequestId(self.next_req);
        self.next_req += 1;
        let now = ctx.now();
        // Every fetch is a trace root; the messages sent below inherit the
        // root context, so downstream nodes land their spans in this trace.
        let root_span = ctx.begin_trace(SpanKind::Fetch.as_str());
        let lookup_span = ctx.span_start(SpanKind::Lookup.as_str());
        let fetch = Fetch {
            exec: exec_id,
            obj,
            app_idx,
            url,
            key,
            started: now,
            lookup_started: now,
            lookup_was_query: false,
            retrieval_started: None,
            phase: Phase::AwaitingDns,
            attempt: 0,
            conn: None,
            root_span,
            lookup_span,
            retrieval_span: None,
        };
        self.fetches.insert(req, fetch);
        ctx.metrics().incr_id(names::id::CLIENT_FETCHES, 1);

        match self.config.strategy {
            Strategy::ApeCache => self.lookup_ape(ctx, req),
            Strategy::EdgeCache => self.lookup_edge(ctx, req),
            Strategy::WiCache => self.lookup_wicache(ctx, req),
        }
    }

    /// APE-CACHE lookup: use fresh local flags, else join/send a DNS-Cache
    /// query to the AP.
    fn lookup_ape(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let now = ctx.now();
        let (domain, key) = {
            let f = &self.fetches[&req];
            (f.url.host().clone(), f.key)
        };
        if let Some((table, valid_until)) = self.flags.get(&domain) {
            if *valid_until > now {
                let flag = table.get(&key).copied().unwrap_or(CacheFlag::Delegation);
                let ip = self.fresh_dns_ip(&domain, now);
                self.act_on_flag(ctx, req, flag, ip);
                return;
            }
        }
        self.join_or_send_dns(ctx, req, domain, true);
    }

    /// Edge Cache lookup: plain DNS against the configured resolver.
    fn lookup_edge(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let now = ctx.now();
        let domain = self.fetches[&req].url.host().clone();
        if self.config.cache_dns {
            if let Some(ip) = self.fresh_dns_ip(&domain, now) {
                self.act_on_flag(ctx, req, CacheFlag::Miss, Some(ip));
                return;
            }
        }
        self.join_or_send_dns(ctx, req, domain, false);
    }

    /// Wi-Cache lookup: ask the controller.
    fn lookup_wicache(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let Some(controller) = self.config.controller else {
            self.fail_fetch(ctx, req);
            return;
        };
        let key = self.fetches[&req].key;
        if let Some(f) = self.fetches.get_mut(&req) {
            f.lookup_was_query = true;
            f.phase = Phase::AwaitingController;
        }
        ctx.metrics().incr_id(names::id::CLIENT_WICACHE_LOOKUPS, 1);
        ctx.send_after(
            self.config.processing,
            controller,
            Msg::WiCacheLookup { req, url_hash: key },
        );
        self.arm_http_timer(ctx, req);
    }

    /// Arms the retrieval watchdog for the fetch's current attempt with
    /// exponential backoff. Every non-DNS phase is covered by one of these
    /// timers, so a lost response can never strand the fetch.
    fn arm_http_timer(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let Some(fetch) = self.fetches.get(&req) else {
            return;
        };
        let backoff = self.config.http_timeout * (1u64 << fetch.attempt.min(16));
        ctx.schedule(staggered(backoff, req.0), http_token(req, fetch.attempt));
    }

    /// Allocates a DNS transaction id, skipping ids still live in
    /// `txn_domains`: after 65 535 queries the counter wraps and would
    /// otherwise clobber an in-flight query.
    ///
    /// # Panics
    ///
    /// Panics if all 65 535 ids are in flight at once (the pending-DNS map
    /// is bounded by the number of distinct domains, so this is a logic
    /// bug, not load).
    fn alloc_txn(&mut self) -> u16 {
        assert!(
            self.txn_domains.len() < u16::MAX as usize,
            "DNS txn space exhausted"
        );
        loop {
            let txn = self.next_txn;
            self.next_txn = self.next_txn.wrapping_add(1).max(1);
            if !self.txn_domains.contains_key(&txn) {
                return txn;
            }
        }
    }

    fn fresh_dns_ip(&self, domain: &DomainName, now: SimTime) -> Option<Ipv4Addr> {
        match self.dns_cache.get(domain) {
            Some((ip, expires)) if *expires > now => Some(*ip),
            _ => None,
        }
    }

    fn join_or_send_dns(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: RequestId,
        domain: DomainName,
        dns_cache_query: bool,
    ) {
        if let Some(f) = self.fetches.get_mut(&req) {
            f.lookup_was_query = true;
            f.phase = Phase::AwaitingDns;
        }
        if let Some(pending) = self.pending_dns.get_mut(&domain) {
            pending.waiting.push(req);
            return;
        }
        let txn = self.alloc_txn();
        let hashes = if dns_cache_query && self.config.lookup_mode == LookupMode::Piggybacked {
            vec![self.fetches[&req].key]
        } else {
            Vec::new()
        };
        let query = if hashes.is_empty() {
            DnsMessage::query(txn, domain.clone())
        } else {
            DnsMessage::dns_cache_request(txn, domain.clone(), &hashes)
        };
        self.pending_dns.insert(
            domain.clone(),
            PendingDns {
                txn,
                waiting: vec![req],
                retries: 0,
                hashes,
                cache_stage: false,
            },
        );
        self.txn_domains.insert(txn, domain);
        ctx.metrics().incr_id(names::id::CLIENT_DNS_QUERIES, 1);
        ctx.send_after(
            self.config.processing,
            self.config.dns_server,
            Msg::dns(query),
        );
        ctx.schedule(
            staggered(self.config.dns_timeout, txn as u64),
            TimerToken::new(TOKEN_DNS_BASE | txn as u64),
        );
    }

    /// Applies a resolved cache flag: dial the AP (hit/delegation) or the
    /// edge (miss).
    fn act_on_flag(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: RequestId,
        flag: CacheFlag,
        ip: Option<Ipv4Addr>,
    ) {
        let now = ctx.now();
        let Some(fetch) = self.fetches.get(&req) else {
            return;
        };
        // Wi-Cache fetches armed their watchdog at lookup time; it spans
        // the whole attempt, so arming another here would double-fire.
        let watchdog_armed = matches!(fetch.phase, Phase::AwaitingController);
        // One DNS answer can resolve several waiting fetches; re-anchor the
        // trace context to this fetch so its sends land in its own trace.
        ctx.set_span_ctx(fetch.root_span);
        // Lookup-stage latency counts once per fetch; retry passes would
        // re-observe it inflated by the timeout that triggered them.
        if fetch.attempt == 0 {
            if fetch.lookup_was_query {
                let lookup_ms = (now - fetch.lookup_started).as_millis_f64();
                ctx.metrics()
                    .observe_id(names::id::CLIENT_LOOKUP_QUERY_MS, lookup_ms);
            }
            ctx.metrics().observe_id(
                names::id::CLIENT_LOOKUP_OP_MS,
                (now - fetch.lookup_started).as_millis_f64(),
            );
        }
        let mode = match flag {
            CacheFlag::Hit => FetchMode::ApHit,
            CacheFlag::Delegation | CacheFlag::Query => FetchMode::Delegation,
            CacheFlag::Miss => FetchMode::Edge,
        };
        let target = match mode {
            FetchMode::ApHit | FetchMode::Delegation => self.config.ap,
            FetchMode::Edge => {
                let Some(node) = ip.and_then(|ip| self.config.ip_map.node_of(ip)) else {
                    self.fail_fetch(ctx, req);
                    return;
                };
                node
            }
        };
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        let fetch = self.fetches.get_mut(&req).expect("checked above");
        fetch.retrieval_started = Some(now);
        fetch.phase = Phase::Connecting { target, mode };
        fetch.conn = Some(conn);
        let lookup_span = fetch.lookup_span.take();
        self.conns.insert(conn, req);
        if let Some(span) = lookup_span {
            ctx.span_end(span, SpanKind::Lookup.as_str());
        }
        let retrieval_kind = match mode {
            FetchMode::ApHit => SpanKind::RetrievalHit,
            FetchMode::Delegation => SpanKind::RetrievalDelegation,
            FetchMode::Edge => SpanKind::RetrievalEdge,
        };
        let retrieval_span = ctx.span_start(retrieval_kind.as_str());
        self.fetches
            .get_mut(&req)
            .expect("checked above")
            .retrieval_span = retrieval_span.map(|s| (s, retrieval_kind));
        ctx.send_after(self.config.processing, target, Msg::TcpSyn { conn });
        if !watchdog_armed {
            self.arm_http_timer(ctx, req);
        }
        if self.config.prefetch_hints && target == self.config.ap {
            self.send_prefetch_hints(ctx, req);
        }
    }

    /// Extension (paper §VI): tell the AP which objects this execution
    /// will request once the current fetch completes — its DAG dependents.
    fn send_prefetch_hints(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let Some(fetch) = self.fetches.get(&req) else {
            return;
        };
        let Some(exec) = self.execs.get(&fetch.exec) else {
            return;
        };
        let variant = exec.variant;
        let dag = self.apps[fetch.app_idx].dag();
        let hints: Vec<ape_proto::PrefetchHint> = self.children[fetch.app_idx][fetch.obj.get()]
            .iter()
            .take(4)
            .filter_map(|child| {
                let spec = dag.object(*child);
                let url = spec.url.with_query(format!("v={variant}"));
                let cacheable = self.registry.get(&url.base_id())?;
                Some(ape_proto::PrefetchHint {
                    url,
                    op: CacheOp {
                        ttl: cacheable.ttl,
                        priority: cacheable.priority,
                        app: cacheable.app,
                    },
                })
            })
            .collect();
        if !hints.is_empty() {
            ctx.metrics()
                .incr_id(names::id::CLIENT_PREFETCH_HINTS, hints.len() as u64);
            ctx.send_after(
                self.config.processing,
                self.config.ap,
                Msg::PrefetchHints { hints },
            );
        }
    }

    fn fail_fetch(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId) {
        let Some(fetch) = self.fetches.remove(&req) else {
            return;
        };
        if let Some(conn) = fetch.conn {
            self.conns.remove(&conn);
        }
        self.report.failures += 1;
        ctx.metrics().incr_id(names::id::CLIENT_FETCH_FAILURES, 1);
        if let Some(span) = fetch.lookup_span {
            ctx.span_end(span, SpanKind::Lookup.as_str());
        }
        if let Some((span, kind)) = fetch.retrieval_span {
            ctx.span_end(span, kind.as_str());
        }
        if let Some(root) = fetch.root_span {
            ctx.span_end(root, SpanKind::Fetch.as_str());
        }
        if self.execs.contains_key(&fetch.exec) {
            {
                let exec = self.execs.get_mut(&fetch.exec).expect("checked");
                exec.failed = true;
                exec.remaining -= 1;
            }
            // Dependents can never run; cancel them so the execution ends.
            let mut cancelled = vec![fetch.obj];
            while let Some(obj) = cancelled.pop() {
                for &child in &self.children[fetch.app_idx][obj.get()] {
                    let exec = self.execs.get_mut(&fetch.exec).expect("checked");
                    if exec.deps_left[child.get()] == usize::MAX {
                        continue;
                    }
                    exec.deps_left[child.get()] = usize::MAX;
                    exec.remaining -= 1;
                    cancelled.push(child);
                }
            }
            if self.execs[&fetch.exec].remaining == 0 {
                self.finish_exec(ctx, fetch.exec);
            }
        }
    }

    fn complete_fetch(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: RequestId,
        response: HttpResponse,
        from_cache: bool,
    ) {
        let now = ctx.now();
        if !response.status.is_success() {
            self.fail_fetch(ctx, req);
            return;
        }
        let Some(fetch) = self.fetches.remove(&req) else {
            return;
        };
        // A response from an abandoned attempt can land while the current
        // attempt is mid-retry; drop whichever conn the fetch now owns so
        // the connection table drains either way.
        if let Some(conn) = fetch.conn {
            self.conns.remove(&conn);
        }
        let mode = match &fetch.phase {
            Phase::Fetching { mode } | Phase::Connecting { mode, .. } => *mode,
            _ => FetchMode::Edge,
        };
        if let Some((span, kind)) = fetch.retrieval_span {
            ctx.span_end(span, kind.as_str());
        }
        if let Some(root) = fetch.root_span {
            ctx.span_end(root, SpanKind::Fetch.as_str());
        }
        let spec = self
            .registry
            .get(&fetch.url.base_id())
            .copied()
            .expect("fetched objects are registered");

        self.report.requests += 1;
        if spec.priority.is_high() {
            self.report.high_requests += 1;
        }
        let served_by_ap_cache = from_cache && mode != FetchMode::Edge;
        if served_by_ap_cache {
            self.report.hits += 1;
            if spec.priority.is_high() {
                self.report.high_hits += 1;
            }
            ctx.metrics().incr_id(names::id::CLIENT_CACHE_HITS, 1);
        }
        if let Some(retrieval_started) = fetch.retrieval_started {
            let retrieval_ms = (now - retrieval_started).as_millis_f64();
            match mode {
                FetchMode::ApHit => ctx
                    .metrics()
                    .observe_id(names::id::CLIENT_RETRIEVAL_HIT_MS, retrieval_ms),
                FetchMode::Delegation => ctx
                    .metrics()
                    .observe_id(names::id::CLIENT_RETRIEVAL_DELEGATION_MS, retrieval_ms),
                FetchMode::Edge => ctx
                    .metrics()
                    .observe_id(names::id::CLIENT_RETRIEVAL_EDGE_MS, retrieval_ms),
            }
            ctx.metrics()
                .observe_id(names::id::CLIENT_RETRIEVAL_MS, retrieval_ms);
        }
        ctx.metrics().observe_id(
            names::id::CLIENT_OBJECT_TOTAL_MS,
            (now - fetch.started).as_millis_f64(),
        );

        // Release dependents.
        let exec_id = fetch.exec;
        if self.execs.contains_key(&exec_id) {
            let mut ready = Vec::new();
            {
                let exec = self.execs.get_mut(&exec_id).expect("checked");
                exec.remaining -= 1;
                for &child in &self.children[fetch.app_idx][fetch.obj.get()] {
                    if exec.deps_left[child.get()] == usize::MAX {
                        continue;
                    }
                    exec.deps_left[child.get()] -= 1;
                    if exec.deps_left[child.get()] == 0 {
                        ready.push(child);
                    }
                }
            }
            for child in ready {
                self.start_fetch(ctx, exec_id, child);
            }
            if self.execs[&exec_id].remaining == 0 {
                self.finish_exec(ctx, exec_id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn handle_dns_response(&mut self, ctx: &mut Context<'_, Msg>, response: DnsMessage) {
        let txn = response.header.id;
        let Some(domain) = self.txn_domains.remove(&txn) else {
            return;
        };
        let Some(mut pending) = self.pending_dns.remove(&domain) else {
            return;
        };
        if pending.txn != txn {
            // Stale retry answer; put the live query back.
            self.txn_domains.insert(pending.txn, domain.clone());
            self.pending_dns.insert(domain, pending);
            return;
        }
        let now = ctx.now();

        let answer = response
            .answer_ip()
            .map(|ip| (ip, response.answers.first().map(|a| a.ttl).unwrap_or(0)));
        let mut flag_horizon = now;
        if let Some((ip, ttl)) = answer {
            if !IpMap::is_dummy(ip) {
                // Clamp like the AP does (ap.rs answers use `.max(1)`): a
                // TTL-0 record would be cached with expiry == now, never
                // consulted, and never purged.
                self.dns_cache.insert(
                    domain.clone(),
                    (ip, now + SimDuration::from_secs(ttl.max(1) as u64)),
                );
            }
            // Dummy-IP (TTL 0) answers deliberately collapse the flag
            // horizon to `now`: the flags serve only the waiting fetches.
            flag_horizon = now + SimDuration::from_secs(ttl as u64);
        }
        // Opportunistic purge: without it, long runs grow the map by one
        // dead entry per domain whose records expired.
        self.dns_cache.retain(|_, (_, expires)| *expires > now);

        // Standalone mode: plain stage answered → issue the cache query.
        if self.config.strategy == Strategy::ApeCache
            && self.config.lookup_mode == LookupMode::Standalone
            && !pending.cache_stage
            && response.cache_response_tuples().is_empty()
        {
            let txn2 = self.alloc_txn();
            let hashes: Vec<UrlHash> = pending
                .waiting
                .iter()
                .filter_map(|r| self.fetches.get(r).map(|f| f.key))
                .collect();
            let query = DnsMessage::dns_cache_request(txn2, domain.clone(), &hashes);
            pending.txn = txn2;
            pending.cache_stage = true;
            pending.hashes = hashes;
            self.txn_domains.insert(txn2, domain.clone());
            self.pending_dns.insert(domain, pending);
            ctx.metrics().incr_id(names::id::CLIENT_DNS_QUERIES, 1);
            ctx.send_after(
                self.config.processing,
                self.config.dns_server,
                Msg::dns(query),
            );
            ctx.schedule(
                staggered(self.config.dns_timeout, txn2 as u64),
                TimerToken::new(TOKEN_DNS_BASE | txn2 as u64),
            );
            return;
        }

        // Record flags (DNS-Cache responses carry them; plain ones do not).
        let tuples = response.cache_response_tuples();
        if !tuples.is_empty() {
            let table = tuples
                .iter()
                .map(|t| (t.url_hash, t.flag))
                .collect::<BTreeMap<_, _>>();
            // Dummy-IP (TTL 0) responses: flags serve the waiting fetches
            // only; the horizon collapses to `now`.
            self.flags.insert(domain.clone(), (table, flag_horizon));
        }

        let failed = response.header.rcode != Rcode::NoError;
        let ip = answer.map(|(ip, _)| ip).filter(|ip| !IpMap::is_dummy(*ip));
        let flag_table = self.flags.get(&domain).map(|(t, _)| t.clone());
        for req in pending.waiting {
            if failed {
                self.fail_fetch(ctx, req);
                continue;
            }
            let flag = match self.config.strategy {
                Strategy::ApeCache => {
                    let key = self.fetches.get(&req).map(|f| f.key);
                    key.and_then(|k| flag_table.as_ref().and_then(|t| t.get(&k).copied()))
                        .unwrap_or(CacheFlag::Delegation)
                }
                _ => CacheFlag::Miss,
            };
            self.act_on_flag(ctx, req, flag, ip);
        }
    }

    fn handle_dns_timeout(&mut self, ctx: &mut Context<'_, Msg>, txn: u16) {
        let Some(domain) = self.txn_domains.get(&txn).cloned() else {
            return; // Answered already.
        };
        let Some(pending) = self.pending_dns.get_mut(&domain) else {
            return;
        };
        if pending.txn != txn {
            return;
        }
        if pending.retries >= self.config.dns_retries {
            let pending = self.pending_dns.remove(&domain).expect("present above");
            self.txn_domains.remove(&txn);
            ctx.metrics().incr_id(names::id::CLIENT_DNS_GIVE_UPS, 1);
            for req in pending.waiting {
                self.fail_fetch(ctx, req);
            }
            return;
        }
        pending.retries += 1;
        ctx.metrics().incr_id(names::id::CLIENT_DNS_RETRIES, 1);
        let query = if pending.hashes.is_empty() {
            DnsMessage::query(txn, domain.clone())
        } else {
            DnsMessage::dns_cache_request(txn, domain.clone(), &pending.hashes)
        };
        ctx.send_after(
            self.config.processing,
            self.config.dns_server,
            Msg::dns(query),
        );
        ctx.schedule(
            staggered(self.config.dns_timeout, txn as u64),
            TimerToken::new(TOKEN_DNS_BASE | txn as u64),
        );
    }

    /// The retrieval watchdog fired: if the attempt it guarded is still
    /// in flight, abandon it and retry the whole lookup (backoff doubles),
    /// or fail the fetch once the retry budget is spent.
    fn handle_http_timeout(&mut self, ctx: &mut Context<'_, Msg>, req: RequestId, attempt: u32) {
        let Some(fetch) = self.fetches.get(&req) else {
            return; // Completed or failed already.
        };
        if fetch.attempt != attempt {
            return; // A newer attempt owns the fetch now.
        }
        if matches!(fetch.phase, Phase::AwaitingDns) {
            // The DNS retry machinery owns this phase; its give-up path
            // fails the fetch, so a second watchdog would double-fail.
            return;
        }
        ctx.set_span_ctx(fetch.root_span);
        if fetch.attempt >= self.config.http_retries {
            ctx.metrics().incr_id(names::id::CLIENT_HTTP_GIVE_UPS, 1);
            self.fail_fetch(ctx, req);
            return;
        }
        let fetch = self.fetches.get_mut(&req).expect("checked above");
        fetch.attempt += 1;
        fetch.retrieval_started = None;
        if let Some(conn) = fetch.conn.take() {
            self.conns.remove(&conn);
        }
        if let Some((span, kind)) = fetch.retrieval_span.take() {
            ctx.span_end(span, kind.as_str());
        }
        ctx.metrics().incr_id(names::id::CLIENT_HTTP_RETRIES, 1);
        match self.config.strategy {
            Strategy::ApeCache => self.lookup_ape(ctx, req),
            Strategy::EdgeCache => self.lookup_edge(ctx, req),
            Strategy::WiCache => self.lookup_wicache(ctx, req),
        }
    }

    /// Sizes of every pending-state map, labelled, for drain assertions in
    /// tests and the fault harness. All zeros once a run has fully drained.
    pub fn pending_counts(&self) -> [(&'static str, usize); 5] {
        [
            ("pending_dns", self.pending_dns.len()),
            ("txn_domains", self.txn_domains.len()),
            ("fetches", self.fetches.len()),
            ("conns", self.conns.len()),
            ("execs", self.execs.len()),
        ]
    }

    fn handle_wicache_result(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: RequestId,
        holder: Option<Ipv4Addr>,
    ) {
        // Only act while the fetch is actually waiting on the controller:
        // with retries, a duplicate result for an abandoned lookup could
        // otherwise open a second connection for the same fetch.
        let Some(fetch) = self.fetches.get(&req) else {
            return;
        };
        if !matches!(fetch.phase, Phase::AwaitingController) {
            return;
        }
        // Holder is our own AP → fetch from it directly. Holder elsewhere
        // (multi-AP fleet) or unknown → delegate through the home AP — it
        // peer-fetches from the holder or fills from the edge, so the
        // Wi-Cache fleet's cache fills either way, mirroring the paper's
        // adaptation of Wi-Cache to small cacheable objects.
        let flag = match holder {
            Some(ip) if self.config.ip_map.node_of(ip) == Some(self.config.ap) => CacheFlag::Hit,
            Some(_) | None => CacheFlag::Delegation,
        };
        self.act_on_flag(ctx, req, flag, None);
    }

    /// Executes roam stop `idx`: notify the old AP (it cancels this
    /// client's pending relays and hands a cache summary to the new home),
    /// then re-home DNS and delegation traffic. Cached cache-flags describe
    /// the old AP's cache and are dropped; resolved DNS records are
    /// AP-independent and survive. In-flight fetches settle through their
    /// normal watchdogs — a cancelled waiter simply times out and retries
    /// against the new home.
    fn execute_roam(&mut self, ctx: &mut Context<'_, Msg>, idx: usize) {
        let Some(&stop) = self.roam_schedule.get(idx) else {
            return;
        };
        let old_ap = self.config.ap;
        if stop.ap == old_ap {
            return;
        }
        ctx.metrics().incr_id(names::id::CLIENT_ROAMS, 1);
        ctx.set_span_ctx(None);
        ctx.send(old_ap, Msg::RoamNotice { new_ap: stop.ap });
        if self.config.dns_server == old_ap {
            self.config.dns_server = stop.ap;
        }
        self.config.ap = stop.ap;
        self.flags.clear();
    }
}

impl Node<Msg> for ClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for (i, exec) in self.schedule.iter().enumerate() {
            let delay = exec.at - SimTime::ZERO;
            ctx.schedule(delay, TimerToken::new(i as u64));
        }
        for (i, stop) in self.roam_schedule.iter().enumerate() {
            let delay = stop.at - SimTime::ZERO;
            ctx.schedule(delay, TimerToken::new(TOKEN_ROAM_BASE | i as u64));
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Dns(dns) if dns.header.response => self.handle_dns_response(ctx, *dns),
            Msg::Dns(_) => {}
            Msg::TcpSynAck { conn } => {
                let Some(&req) = self.conns.get(&conn) else {
                    return;
                };
                let Some(fetch) = self.fetches.get_mut(&req) else {
                    return;
                };
                let Phase::Connecting { target, mode } = fetch.phase else {
                    return;
                };
                fetch.phase = Phase::Fetching { mode };
                let cache_op = if mode == FetchMode::Delegation {
                    self.registry.get(&fetch.url.base_id()).map(|s| CacheOp {
                        ttl: s.ttl,
                        priority: s.priority,
                        app: s.app,
                    })
                } else {
                    None
                };
                let request = HttpRequest::get(fetch.url.clone());
                ctx.send_after(
                    self.config.processing,
                    target,
                    Msg::http_req(conn, req, request, cache_op),
                );
            }
            Msg::HttpRsp {
                conn,
                req,
                response,
                from_cache,
            } => {
                self.conns.remove(&conn);
                self.complete_fetch(ctx, req, response, from_cache);
            }
            Msg::WiCacheResult { req, holder } => self.handle_wicache_result(ctx, req, holder),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        let raw = token.get();
        if raw & TOKEN_HTTP_BASE != 0 {
            self.handle_http_timeout(
                ctx,
                RequestId(raw & 0xFFFF_FFFF),
                ((raw >> HTTP_ATTEMPT_SHIFT) & 0xFF) as u32,
            );
            return;
        }
        if raw & TOKEN_ROAM_BASE != 0 {
            self.execute_roam(ctx, (raw & 0xFFFF_FFFF) as usize);
            return;
        }
        if raw & TOKEN_DNS_BASE != 0 {
            self.handle_dns_timeout(ctx, (raw & 0xFFFF) as u16);
            return;
        }
        let idx = raw as usize;
        if idx < self.schedule.len() {
            let app_id = self.schedule[idx].app;
            if let Some(&app_idx) = self.app_index.get(&app_id.get()) {
                self.trigger_execution(ctx, app_idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_appdag::{movie_trailer, AppId};

    fn client(strategy: Strategy) -> ClientNode {
        ClientNode::new(
            ClientConfig::new(
                strategy,
                NodeId::from_raw(0),
                NodeId::from_raw(0),
                IpMap::new(),
            ),
            vec![movie_trailer(AppId::new(1))],
            Vec::new(),
        )
    }

    #[test]
    fn registry_is_built_from_annotations() {
        let c = client(Strategy::ApeCache);
        assert_eq!(c.registry.len(), 5);
        let thumb = c
            .registry
            .get("http://api.movietrailer.example/thumbnail")
            .unwrap();
        assert!(thumb.priority.is_high());
        assert_eq!(c.report(), ClientReport::default());
    }

    #[test]
    fn children_reverse_edges_match_dag() {
        let c = client(Strategy::EdgeCache);
        let kids = &c.children[0];
        let total: usize = kids.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        assert_eq!(kids[0].len(), 4);
    }

    #[test]
    fn report_ratios() {
        let r = ClientReport {
            requests: 10,
            hits: 4,
            high_requests: 5,
            high_hits: 5,
            failures: 0,
            executions: 2,
        };
        assert!((r.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((r.high_priority_hit_ratio() - 1.0).abs() < 1e-12);
        let empty = ClientReport::default();
        assert_eq!(empty.hit_ratio(), 0.0);
        assert_eq!(empty.high_priority_hit_ratio(), 0.0);
        let mut merged = r;
        merged.merge(&r);
        assert_eq!(merged.requests, 20);
        assert_eq!(merged.executions, 4);
    }

    #[test]
    fn report_merge_with_default_is_identity() {
        let r = ClientReport {
            requests: 7,
            hits: 3,
            high_requests: 2,
            high_hits: 1,
            failures: 4,
            executions: 5,
        };
        let mut left = r;
        left.merge(&ClientReport::default());
        assert_eq!(left, r);
        let mut right = ClientReport::default();
        right.merge(&r);
        assert_eq!(right, r);
    }

    #[test]
    fn report_merge_sums_every_field_and_commutes() {
        let a = ClientReport {
            requests: 1,
            hits: 2,
            high_requests: 3,
            high_hits: 4,
            failures: 5,
            executions: 6,
        };
        let b = ClientReport {
            requests: 10,
            hits: 20,
            high_requests: 30,
            high_hits: 40,
            failures: 50,
            executions: 60,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab,
            ClientReport {
                requests: 11,
                hits: 22,
                high_requests: 33,
                high_hits: 44,
                failures: 55,
                executions: 66,
            }
        );
        // Ratios derive from the merged counters, not an average of ratios.
        assert!((ab.hit_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn txn_allocation_skips_live_ids_across_wraparound() {
        let mut c = client(Strategy::ApeCache);
        // A long-lived in-flight query the wrapped counter must not reuse.
        c.txn_domains
            .insert(7, DomainName::parse("pinned.example").unwrap());
        // Four trips around the 16-bit id space (>65k requests): the live
        // txn is never clobbered and 0 stays reserved.
        for _ in 0..262_144u32 {
            let txn = c.alloc_txn();
            assert_ne!(txn, 0, "txn 0 is reserved");
            assert_ne!(txn, 7, "live txn reused after wraparound");
        }
    }
}
