//! Fleet nodes: struct-of-arrays client populations for scale benchmarks.
//!
//! The per-client [`ClientNode`](crate::ClientNode) runtime is faithful to
//! the paper's enhanced HTTP client, but at a million clients its
//! representation dominates the simulator's time: every client is a boxed
//! trait object with its own hash maps, every think-time gap is a timer
//! wheel entry, and walking a cell means pointer-chasing a million heap
//! allocations. This module provides the scale-bench representation used by
//! `repro bench-shard`:
//!
//! * [`FleetNode`] — one node owning `n` clients whose hot state lives in
//!   parallel vectors (struct-of-arrays), with a calendar-queue tick that
//!   batches all due clients per bucket into one timer event,
//! * [`BoxedClientNode`] — the baseline: a minimal one-client node with the
//!   classic one-node-per-client, one-timer-per-wakeup shape,
//! * [`FleetResponder`] / [`FleetOrigin`] — the serving spine the clients
//!   talk to (deterministic per-app hit/miss, miss → origin round trip),
//! * [`FleetMsg`] — the tiny message vocabulary the above exchange.
//!
//! Both client representations drive statistically identical workloads
//! (Zipf app popularity, exponential think times), so events/sec between
//! them compares representation cost, not workload size.

use ape_proto::names;
use ape_simnet::{Context, Message, Node, NodeId, SimDuration, SimTime, TimerToken};
use ape_workload::{ZipfConfig, ZipfSampler};
use std::sync::Arc;

/// Messages exchanged between fleet clients and the serving spine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMsg {
    /// Client → responder: fetch one object of app `app`.
    Fetch {
        /// Correlation id: `client_slot << 32 | seq` (plus the fleet node's
        /// population base for multi-fleet cells).
        req: u64,
        /// Zipf-ranked app index the object belongs to.
        app: u32,
    },
    /// Responder → client: the object, served from cache or origin.
    Reply {
        /// Correlation id of the fetch being answered.
        req: u64,
        /// True when the responder's cache held the object.
        hit: bool,
    },
    /// Responder → origin: fill a cache miss.
    OriginFetch {
        /// Correlation id of the originating fetch.
        req: u64,
        /// Requesting client's node, echoed back for the reply route.
        client: NodeId,
    },
    /// Origin → responder: the filled object.
    OriginReply {
        /// Correlation id of the originating fetch.
        req: u64,
        /// Requesting client's node, echoed back for the reply route.
        client: NodeId,
    },
}

impl Message for FleetMsg {
    fn wire_size(&self) -> usize {
        match self {
            // GET line + headers, TCP/IP included.
            FleetMsg::Fetch { .. } | FleetMsg::OriginFetch { .. } => 180,
            // A small cached object.
            FleetMsg::Reply { .. } | FleetMsg::OriginReply { .. } => 4_200,
        }
    }
}

/// Configuration shared by both client representations.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Clients in this population.
    pub clients: usize,
    /// Mean think time between a reply and the next fetch (exponential).
    pub think_mean: SimDuration,
    /// Number of apps in the Zipf catalog.
    pub apps: usize,
    /// Zipf exponent over the app catalog.
    pub zipf_exponent: f64,
    /// Sampler backend (the scale benches use the O(1) alias table).
    pub zipf: ZipfConfig,
    /// Give-up deadline for an in-flight fetch.
    pub timeout: SimDuration,
    /// Calendar bucket width; all clients due within one bucket wake on a
    /// single timer event.
    pub tick: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 1,
            // Paper §V-A: fleet average of 3 app runs per minute.
            think_mean: SimDuration::from_secs(20),
            apps: 64,
            zipf_exponent: 1.0,
            zipf: ZipfConfig::default(),
            timeout: SimDuration::from_secs(5),
            tick: SimDuration::from_millis(10),
        }
    }
}

/// Ring size of the calendar queue. Schedules are clamped to the horizon
/// `(RING - 2) * tick`, which at the default 10 ms tick is ~20 minutes —
/// far beyond any think-time draw that matters to the measured rates.
const RING: usize = 131_072;

/// Per-client state tags (the `state` column of the SoA).
const IDLE: u8 = 0;
const PENDING: u8 = 1;

/// A population of clients stored as struct-of-arrays.
///
/// Hot per-client fields live in dense parallel vectors indexed by client
/// slot; scheduling goes through a calendar queue whose buckets hold
/// `(slot, generation)` pairs. One timer event per tick drains every client
/// due in that bucket, so the timing wheel sees `O(sim-time / tick)` events
/// from a fleet of any size, instead of one event per client wakeup.
pub struct FleetNode {
    config: FleetConfig,
    /// Where fetches go (the responder on the spine shard).
    responder: NodeId,
    /// Request-id base so multiple fleets in one world issue disjoint ids.
    id_base: u64,
    zipf: ZipfSampler,
    // --- struct-of-arrays hot state, one slot per client ---------------
    /// IDLE or PENDING.
    state: Vec<u8>,
    /// When an idle client issues its next fetch.
    next_fetch_at: Vec<SimTime>,
    /// Watchdog deadline of the in-flight fetch (PENDING only).
    deadline_at: Vec<SimTime>,
    /// Send time of the in-flight fetch (PENDING only).
    issued_at: Vec<SimTime>,
    /// Per-client sequence number of the most recent fetch.
    seq: Vec<u32>,
    /// Calendar-entry generation: stale bucket entries are skipped when
    /// their generation no longer matches.
    gen: Vec<u32>,
    // --- calendar queue -------------------------------------------------
    /// `buckets[t % RING]` holds the clients scheduled for tick `t`.
    buckets: Vec<Vec<(u32, u32)>>,
    /// Absolute tick index of the next undrained bucket.
    cursor: u64,
}

impl FleetNode {
    /// Creates a fleet of `config.clients` clients that fetch from
    /// `responder`. `fleet_index` namespaces request ids when a cell is
    /// split into several fleets (one per shard).
    pub fn new(config: FleetConfig, responder: NodeId, fleet_index: u32) -> Self {
        assert!(config.clients > 0, "fleet needs at least one client");
        assert!(
            config.clients < (1 << 22),
            "client slot must fit the request-id layout"
        );
        assert!(
            config.timeout.div_floor(config.tick) + 2 < RING as u64,
            "timeout must sit inside the calendar horizon"
        );
        let n = config.clients;
        let zipf = ZipfSampler::with_config(config.apps, config.zipf_exponent, config.zipf);
        FleetNode {
            responder,
            id_base: u64::from(fleet_index) << 54,
            zipf,
            state: vec![IDLE; n],
            next_fetch_at: vec![SimTime::ZERO; n],
            deadline_at: vec![SimTime::ZERO; n],
            issued_at: vec![SimTime::ZERO; n],
            seq: vec![0; n],
            gen: vec![0; n],
            buckets: vec![Vec::new(); RING],
            cursor: 0,
            config,
        }
    }

    /// Completed fetches + failures so far (drives bench sanity checks).
    pub fn fetches_settled(&self) -> u64 {
        self.seq.iter().map(|&s| u64::from(s)).sum()
    }

    /// Absolute tick index a time maps to.
    fn tick_of(&self, at: SimTime) -> u64 {
        (at - SimTime::ZERO).div_floor(self.config.tick)
    }

    /// Inserts a calendar entry for `slot` at time `at` (clamped to the
    /// ring horizon), bumping the slot's generation so any earlier entry
    /// becomes stale.
    fn enqueue(&mut self, slot: u32, at: SimTime) {
        let horizon = self.cursor + (RING as u64 - 2);
        let tick = self.tick_of(at).clamp(self.cursor, horizon);
        self.gen[slot as usize] = self.gen[slot as usize].wrapping_add(1);
        let gen = self.gen[slot as usize];
        self.buckets[(tick % RING as u64) as usize].push((slot, gen));
    }

    /// Issues the next fetch for `slot`.
    fn issue(&mut self, ctx: &mut Context<'_, FleetMsg>, slot: u32) {
        let now = ctx.now();
        let app = self.zipf.sample(ctx.rng()) as u32;
        self.seq[slot as usize] = self.seq[slot as usize].wrapping_add(1);
        let req = self.id_base | u64::from(slot) << 32 | u64::from(self.seq[slot as usize]);
        self.state[slot as usize] = PENDING;
        self.issued_at[slot as usize] = now;
        self.deadline_at[slot as usize] = now + self.config.timeout;
        ctx.metrics().incr_id(names::id::CLIENT_FETCHES, 1);
        ctx.send(self.responder, FleetMsg::Fetch { req, app });
        self.enqueue(slot, now + self.config.timeout);
    }

    /// Parks `slot` until its next think-time wakeup.
    fn rest(&mut self, ctx: &mut Context<'_, FleetMsg>, slot: u32) {
        let now = ctx.now();
        let think = ctx.rng().jitter(self.config.think_mean);
        self.state[slot as usize] = IDLE;
        self.next_fetch_at[slot as usize] = now + think;
        self.enqueue(slot, now + think);
    }

    /// Drains every bucket up to `now`, acting on entries whose generation
    /// is still current.
    fn drain_due(&mut self, ctx: &mut Context<'_, FleetMsg>) {
        let now_tick = self.tick_of(ctx.now());
        while self.cursor <= now_tick {
            let bucket = std::mem::take(&mut self.buckets[(self.cursor % RING as u64) as usize]);
            self.cursor += 1;
            for (slot, gen) in bucket {
                if self.gen[slot as usize] != gen {
                    continue; // superseded by a later transition
                }
                match self.state[slot as usize] {
                    IDLE => self.issue(ctx, slot),
                    _ => {
                        // Watchdog fired with the fetch still in flight.
                        ctx.metrics().incr_id(names::id::CLIENT_FETCH_FAILURES, 1);
                        self.rest(ctx, slot);
                    }
                }
            }
        }
    }
}

impl Node<FleetMsg> for FleetNode {
    fn on_start(&mut self, ctx: &mut Context<'_, FleetMsg>) {
        // Stagger first fetches across one think-time interval so a cell
        // ramps up smoothly instead of stampeding at t=0.
        let now = ctx.now();
        for slot in 0..self.config.clients as u32 {
            let think = ctx.rng().jitter(self.config.think_mean);
            self.next_fetch_at[slot as usize] = now + think;
            self.enqueue(slot, now + think);
        }
        ctx.schedule(self.config.tick, TimerToken::new(0));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FleetMsg>, _from: NodeId, msg: FleetMsg) {
        let FleetMsg::Reply { req, hit } = msg else {
            return;
        };
        let slot = ((req >> 32) & 0x3f_ffff) as u32;
        let seq = (req & 0xffff_ffff) as u32;
        if self.state[slot as usize] != PENDING || self.seq[slot as usize] != seq {
            return; // reply raced the watchdog; already settled
        }
        if hit {
            ctx.metrics().incr_id(names::id::CLIENT_CACHE_HITS, 1);
        }
        let retrieval_ms = (ctx.now() - self.issued_at[slot as usize]).as_millis_f64();
        ctx.metrics()
            .observe_id(names::id::CLIENT_RETRIEVAL_MS, retrieval_ms);
        self.rest(ctx, slot);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FleetMsg>, _token: TimerToken) {
        self.drain_due(ctx);
        ctx.schedule(self.config.tick, TimerToken::new(0));
    }
}

impl std::fmt::Debug for FleetNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetNode")
            .field("clients", &self.config.clients)
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

/// Baseline one-client node: the classic representation the fleet replaces.
///
/// Each instance owns its own state and schedules its own timer-wheel
/// entries — at `n` clients that is `n` boxed nodes and one wheel event per
/// wakeup per client, which is exactly the overhead the SoA fleet amortizes.
#[derive(Debug)]
pub struct BoxedClientNode {
    responder: NodeId,
    think_mean: SimDuration,
    timeout: SimDuration,
    /// Shared catalog sampler (sharing it is charitable to the baseline:
    /// a private copy per client would only inflate its footprint).
    zipf: Arc<ZipfSampler>,
    /// Request-id base identifying this client.
    id_base: u64,
    seq: u32,
    pending: bool,
    issued_at: SimTime,
}

/// Timer token tag for a fetch-due wakeup.
const TOKEN_FETCH: u64 = 0;

impl BoxedClientNode {
    /// Creates one baseline client; `client_index` namespaces request ids.
    pub fn new(
        responder: NodeId,
        think_mean: SimDuration,
        timeout: SimDuration,
        zipf: Arc<ZipfSampler>,
        client_index: u32,
    ) -> Self {
        BoxedClientNode {
            responder,
            think_mean,
            timeout,
            zipf,
            id_base: u64::from(client_index) << 32,
            seq: 0,
            pending: false,
            issued_at: SimTime::ZERO,
        }
    }

    /// Completed fetches + failures so far.
    pub fn fetches_settled(&self) -> u64 {
        u64::from(self.seq)
    }

    fn rest(&mut self, ctx: &mut Context<'_, FleetMsg>) {
        self.pending = false;
        let think = ctx.rng().jitter(self.think_mean);
        ctx.schedule(think, TimerToken::new(TOKEN_FETCH));
    }
}

impl Node<FleetMsg> for BoxedClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_, FleetMsg>) {
        let think = ctx.rng().jitter(self.think_mean);
        ctx.schedule(think, TimerToken::new(TOKEN_FETCH));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, FleetMsg>, _from: NodeId, msg: FleetMsg) {
        let FleetMsg::Reply { req, hit } = msg else {
            return;
        };
        if !self.pending || (req & 0xffff_ffff) as u32 != self.seq {
            return;
        }
        if hit {
            ctx.metrics().incr_id(names::id::CLIENT_CACHE_HITS, 1);
        }
        let retrieval_ms = (ctx.now() - self.issued_at).as_millis_f64();
        ctx.metrics()
            .observe_id(names::id::CLIENT_RETRIEVAL_MS, retrieval_ms);
        self.rest(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, FleetMsg>, token: TimerToken) {
        if token.get() == TOKEN_FETCH {
            if self.pending {
                return; // stale wakeup from before a timeout reschedule
            }
            let app = self.zipf.sample(ctx.rng()) as u32;
            self.seq = self.seq.wrapping_add(1);
            self.pending = true;
            self.issued_at = ctx.now();
            ctx.metrics().incr_id(names::id::CLIENT_FETCHES, 1);
            ctx.send(
                self.responder,
                FleetMsg::Fetch {
                    req: self.id_base | u64::from(self.seq),
                    app,
                },
            );
            // Watchdog carries the seq so settled requests ignore it.
            ctx.schedule(self.timeout, TimerToken::new(1 | u64::from(self.seq) << 1));
        } else {
            let seq = (token.get() >> 1) as u32;
            if self.pending && seq == self.seq {
                ctx.metrics().incr_id(names::id::CLIENT_FETCH_FAILURES, 1);
                self.rest(ctx);
            }
        }
    }
}

/// The serving spine: answers fetches from a deterministic cache model.
///
/// An app is "cached" when a keyed hash of its index lands under the
/// configured hit ratio — stable across the run, independent of request
/// order, and therefore invariant to sharding. Misses take a round trip to
/// the [`FleetOrigin`] before the reply.
#[derive(Debug)]
pub struct FleetResponder {
    /// Origin server filling misses.
    origin: NodeId,
    /// Percentage of the app catalog considered cached (0–100).
    hit_pct: u8,
    /// Local service delay per request.
    processing: SimDuration,
    /// Salt for the hit hash, so different worlds cache different subsets.
    salt: u64,
    /// Requests served (hit + miss), for bench sanity checks.
    served: u64,
}

impl FleetResponder {
    /// Creates a responder that fills misses from `origin`.
    pub fn new(origin: NodeId, hit_pct: u8, processing: SimDuration, salt: u64) -> Self {
        assert!(hit_pct <= 100);
        FleetResponder {
            origin,
            hit_pct,
            processing,
            salt,
            served: 0,
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn is_hit(&self, app: u32) -> bool {
        // SplitMix64 finalizer over (salt, app): a stable keyed hash.
        let mut z = self.salt ^ (u64::from(app).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 100) < u64::from(self.hit_pct)
    }
}

impl Node<FleetMsg> for FleetResponder {
    fn on_message(&mut self, ctx: &mut Context<'_, FleetMsg>, from: NodeId, msg: FleetMsg) {
        match msg {
            FleetMsg::Fetch { req, app } => {
                self.served += 1;
                if self.is_hit(app) {
                    ctx.send_after(self.processing, from, FleetMsg::Reply { req, hit: true });
                } else {
                    ctx.send_after(
                        self.processing,
                        self.origin,
                        FleetMsg::OriginFetch { req, client: from },
                    );
                }
            }
            FleetMsg::OriginReply { req, client } => {
                ctx.send_after(self.processing, client, FleetMsg::Reply { req, hit: false });
            }
            _ => {}
        }
    }
}

/// Origin server behind the responder: echoes fills after a service delay.
#[derive(Debug)]
pub struct FleetOrigin {
    /// Local service delay per fill.
    processing: SimDuration,
}

impl FleetOrigin {
    /// Creates an origin with the given service delay.
    pub fn new(processing: SimDuration) -> Self {
        FleetOrigin { processing }
    }
}

impl Node<FleetMsg> for FleetOrigin {
    fn on_message(&mut self, ctx: &mut Context<'_, FleetMsg>, from: NodeId, msg: FleetMsg) {
        if let FleetMsg::OriginFetch { req, client } = msg {
            ctx.send_after(self.processing, from, FleetMsg::OriginReply { req, client });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_simnet::{Fingerprint, LinkSpec, ShardedWorld, World};
    use ape_workload::ZipfMode;

    fn small_config(clients: usize) -> FleetConfig {
        FleetConfig {
            clients,
            think_mean: SimDuration::from_millis(200),
            apps: 16,
            zipf_exponent: 1.0,
            zipf: ZipfConfig {
                mode: ZipfMode::Alias,
            },
            timeout: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(10),
        }
    }

    fn link() -> LinkSpec {
        LinkSpec::new(2, SimDuration::from_micros(1_500))
    }

    /// Plain single-world smoke test: clients fetch, replies settle, the
    /// hit ratio tracks the responder's model.
    #[test]
    fn fleet_settles_fetches_with_hits_and_misses() {
        let mut w: World<FleetMsg> = World::new(11);
        let origin = w.add_node("origin", FleetOrigin::new(SimDuration::from_micros(200)));
        let responder = w.add_node(
            "responder",
            FleetResponder::new(origin, 60, SimDuration::from_micros(100), 11),
        );
        let fleet = w.add_node("fleet", FleetNode::new(small_config(500), responder, 0));
        w.connect(responder, origin, link());
        w.connect(fleet, responder, link());
        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        let served = w.node::<FleetResponder>(responder).served();
        assert!(served > 1_000, "expected steady traffic, served {served}");
        let settled = w.node::<FleetNode>(fleet).fetches_settled();
        assert!(settled >= served, "every served fetch was issued first");
        let m = w.metrics();
        let fetches = m.counter(names::CLIENT_FETCHES);
        let hits = m.counter(names::CLIENT_CACHE_HITS);
        assert!(hits > 0 && hits < fetches);
        assert_eq!(m.counter(names::CLIENT_FETCH_FAILURES), 0);
    }

    /// The boxed baseline drives the same workload shape.
    #[test]
    fn boxed_baseline_settles_fetches() {
        let mut w: World<FleetMsg> = World::new(13);
        let origin = w.add_node("origin", FleetOrigin::new(SimDuration::from_micros(200)));
        let responder = w.add_node(
            "responder",
            FleetResponder::new(origin, 60, SimDuration::from_micros(100), 13),
        );
        let zipf = Arc::new(ZipfSampler::with_config(
            16,
            1.0,
            ZipfConfig {
                mode: ZipfMode::Alias,
            },
        ));
        w.connect(responder, origin, link());
        for i in 0..100u32 {
            let c = w.add_node(
                format!("client{i}"),
                BoxedClientNode::new(
                    responder,
                    SimDuration::from_millis(200),
                    SimDuration::from_secs(2),
                    Arc::clone(&zipf),
                    i,
                ),
            );
            w.connect(c, responder, link());
        }
        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        let m = w.metrics();
        assert!(m.counter(names::CLIENT_FETCHES) > 500);
        assert!(m.counter(names::CLIENT_CACHE_HITS) > 0);
    }

    fn sharded_cell(shards: u32, fleets: u32) -> ShardedWorld<FleetMsg> {
        let mut w: ShardedWorld<FleetMsg> = ShardedWorld::new(17, shards);
        let origin = w.add_node(0, "origin", FleetOrigin::new(SimDuration::from_micros(200)));
        let responder = w.add_node(
            0,
            "responder",
            FleetResponder::new(origin, 60, SimDuration::from_micros(100), 17),
        );
        w.connect(responder, origin, link());
        for f in 0..fleets {
            let shard = if shards == 1 { 0 } else { 1 + f % (shards - 1) };
            let fleet = w.add_node(
                shard,
                format!("fleet{f}"),
                FleetNode::new(small_config(125), responder, f),
            );
            w.connect(fleet, responder, link());
        }
        w
    }

    fn run_cell(shards: u32) -> (Fingerprint, u64) {
        let mut w = sharded_cell(shards, 8);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let fetches = w.metrics_merged().counter(names::CLIENT_FETCHES);
        (w.fingerprint(), fetches)
    }

    /// The same fixed node set (8 sub-fleets) produces bitwise-identical
    /// results at every shard count — the property the scale bench assumes
    /// when it compares throughput across shard counts.
    #[test]
    fn sharded_fleet_results_are_shard_count_invariant() {
        let (base, fetches) = run_cell(1);
        assert!(fetches > 1_000);
        for shards in [2, 4, 8] {
            let (fp, f) = run_cell(shards);
            assert_eq!(fp, base, "fingerprint diverged at {shards} shards");
            assert_eq!(f, fetches);
        }
    }
}
