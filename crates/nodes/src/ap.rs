//! The APE-CACHE access-point runtime.
//!
//! One node plays the GL-MT1300 router: a dnsmasq-style DNS forwarder with
//! a TTL cache, extended with the paper's DNS-Cache handling (§IV-B); an
//! HTTP server for cache hits; a delegation fetcher that retrieves objects
//! from the edge on clients' behalf and admits them through the configured
//! eviction policy (PACM or LRU); and CPU/memory meters so the overhead
//! experiments (Fig. 2, Fig. 14) measure a load-dependent device rather
//! than a free abstraction.
//!
//! Design accommodations from §IV-B3 are all here and individually
//! switchable for ablations:
//! * **batching** — a DNS-Cache response reports status for *every* URL the
//!   AP knows under the queried domain, not just the requested hashes;
//! * **short-circuit** — when all requested URLs are cached, the AP answers
//!   with a dummy IP (TTL 0) instead of waiting for upstream resolution;
//! * **no proactive refresh** — the AP only ever contacts the remote server
//!   when a client triggers a delegation.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ape_cachealg::{
    AdmitOutcome, CacheManager, CacheStore, EvictStats, EvictionPolicy, Lookup, LruPolicy,
    ObjectMeta, PacmConfig, PacmPolicy, Priority,
};
use ape_dnswire::{CacheFlag, CacheTuple, DnsMessage, DomainName, Rcode, UrlHash};
use ape_httpsim::{Body, HttpRequest, HttpResponse, Url};
use ape_proto::{names, CacheOp, ConnId, IpMap, Msg, RequestId, SpanKind};
use ape_simnet::{
    Context, CpuMeter, MemMeter, Node, NodeId, ProfCategory, SimDuration, SimTime, SpanCtx,
    TimerToken,
};

/// Which eviction policy the AP runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApPolicy {
    /// Priority-Aware Cache Management (APE-CACHE).
    Pacm,
    /// PACM with the fairness constraint disabled (ablation).
    PacmNoFairness,
    /// Least-recently-used (Wi-Cache / APE-CACHE-LRU).
    Lru,
}

/// AP configuration; defaults follow the paper's evaluation settings.
#[derive(Debug, Clone)]
pub struct ApConfig {
    /// Cache memory granted to APE-CACHE (paper: 5 MB).
    pub cache_capacity: u64,
    /// Block-list threshold (paper: 500 KB).
    pub block_threshold: u64,
    /// Eviction policy.
    pub policy: ApPolicy,
    /// PACM tuning (ignored for LRU).
    pub pacm: PacmConfig,
    /// CPU time per DNS message handled.
    pub dns_processing: SimDuration,
    /// Extra CPU for DNS-Cache queries over plain DNS (Fig. 11b's 0.02 ms).
    pub dnscache_extra: SimDuration,
    /// CPU time per HTTP message handled.
    pub http_processing: SimDuration,
    /// CPU time per PACM/LRU eviction run.
    pub eviction_processing: SimDuration,
    /// Frequency-window roll and expiry-purge interval.
    pub window: SimDuration,
    /// Pending-state reaper interval (drives the upstream-DNS and
    /// delegation timeouts below; granularity, not a timeout itself).
    pub reap_interval: SimDuration,
    /// Age at which a forwarded DNS query is retransmitted upstream, and
    /// (after one retransmit) abandoned with SERVFAIL to the client.
    pub dns_upstream_timeout: SimDuration,
    /// Age at which a delegated fetch is restarted, and (after one
    /// restart) abandoned with 504 to its waiters.
    pub delegation_timeout: SimDuration,
    /// Resource sampling interval (None disables sampling).
    pub sample_interval: Option<SimDuration>,
    /// Dummy-IP short-circuit enabled (§IV-B3).
    pub short_circuit: bool,
    /// Per-domain flag batching enabled (§IV-B3).
    pub batch_domain_flags: bool,
    /// Router cores (MT7621A: 2 cores at 880 MHz).
    pub cores: u32,
    /// Baseline firmware/OS memory, bytes.
    pub mem_baseline: u64,
    /// Static memory cost of the APE-CACHE components themselves.
    pub ape_code_overhead: u64,
    /// Per-cached-entry metadata overhead, bytes.
    pub per_entry_overhead: u64,
    /// Phase offset added to this AP's periodic timers (window, sample,
    /// reap). A single AP can leave this at `ZERO` (the paper testbed's
    /// bitwise-pinned schedule); a multi-AP fleet must give every AP a
    /// distinct sub-microsecond offset, or all their round-grid ticks fire
    /// on the same nanosecond and tie-break perturbation reorders their
    /// jitter draws from the shared RNG stream (see `REAP_PHASE`). The
    /// topology builder derives it from the AP's grid index.
    pub phase_stagger: SimDuration,
}

impl Default for ApConfig {
    fn default() -> Self {
        ApConfig {
            cache_capacity: 5_000_000,
            block_threshold: 500_000,
            policy: ApPolicy::Pacm,
            pacm: PacmConfig::default(),
            dns_processing: SimDuration::from_micros(150),
            dnscache_extra: SimDuration::from_micros(20),
            http_processing: SimDuration::from_micros(400),
            eviction_processing: SimDuration::from_micros(1_500),
            window: SimDuration::from_secs(60),
            reap_interval: SimDuration::from_millis(500),
            dns_upstream_timeout: SimDuration::from_secs(2),
            delegation_timeout: SimDuration::from_secs(10),
            sample_interval: Some(SimDuration::from_secs(1)),
            short_circuit: true,
            batch_domain_flags: true,
            cores: 2,
            mem_baseline: 60_000_000,
            ape_code_overhead: 4_000_000,
            per_entry_overhead: 512,
            phase_stagger: SimDuration::ZERO,
        }
    }
}

/// Cache metadata the AP has learned for a URL through delegation.
#[derive(Debug, Clone)]
struct RegisteredUrl {
    op: CacheOp,
}

/// One client (or probe) waiting for a delegated object.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    node: NodeId,
    conn: ConnId,
    req: RequestId,
}

/// State of an in-flight delegation fetch.
#[derive(Debug)]
struct Delegation {
    url: Url,
    op: CacheOp,
    waiters: Vec<Waiter>,
    /// When the AP started the upstream fetch (drives `l_d`).
    started: SimTime,
    /// Whether the fetched object should be admitted to the cache.
    cache_result: bool,
    /// WAN-fetch span, attributed to the waiter that triggered the fetch
    /// (prefetch delegations are untraced).
    span: Option<SpanCtx>,
    /// Whether the reaper already restarted this fetch once.
    retried: bool,
    /// The in-flight upstream request, so a restart can disown it.
    upstream_req: Option<RequestId>,
}

/// A DNS query forwarded upstream, awaiting the answer.
#[derive(Debug)]
struct PendingForward {
    client: NodeId,
    query: DnsMessage,
    /// Whether the client asked via DNS-Cache (flags ride on the relay).
    extra_flags: bool,
    /// True for the AP's own delegation resolutions (no client to relay to).
    internal: bool,
    /// Upstream-resolution span, child of the querying client's lookup.
    span: Option<SpanCtx>,
    /// When the query was (last) sent upstream.
    at: SimTime,
    /// Whether the reaper already retransmitted this query once.
    retried: bool,
}

const TICK_WINDOW: TimerToken = TimerToken::new(1);
const TICK_SAMPLE: TimerToken = TimerToken::new(2);
const TICK_REAP: TimerToken = TimerToken::new(3);

/// Phase offset for the first reap tick. The window and sample ticks fire
/// on round-second grids; starting the reaper 137 µs off that grid keeps
/// its firings from ever tying with them, so tie-break perturbation can
/// never reorder a reap's retry sends against the window tick's
/// advertisement sends (both draw link jitter from the shared RNG stream).
const REAP_PHASE: SimDuration = SimDuration::from_micros(137);

/// Wi-Cache integration settings for an AP.
#[derive(Debug, Clone, Copy)]
pub struct WiCacheLink {
    /// The controller node.
    pub controller: NodeId,
    /// This AP's address as known to the controller.
    pub own_address: Ipv4Addr,
}

/// The AP node.
pub struct ApNode {
    config: ApConfig,
    upstream: NodeId,
    ip_map: IpMap,
    cache: CacheManager<Box<dyn EvictionPolicy>>,
    dns_cache: BTreeMap<DomainName, (Ipv4Addr, SimTime, u32)>,
    registry: BTreeMap<UrlHash, RegisteredUrl>,
    domain_urls: BTreeMap<DomainName, Vec<UrlHash>>,
    pending_forwards: BTreeMap<u16, PendingForward>,
    delegations: BTreeMap<UrlHash, Delegation>,
    delegation_reqs: BTreeMap<RequestId, UrlHash>,
    /// Delegations blocked on resolving their domain first.
    awaiting_dns: BTreeMap<DomainName, Vec<UrlHash>>,
    /// Neighbor APs (grid adjacency) for cooperative caching; empty in
    /// single-AP testbeds, which keeps the whole peer path inert.
    neighbors: Vec<NodeId>,
    /// Latest advertised holder among neighbors for hot keys, learned from
    /// piggybacked summaries, with the instant it was absorbed. The latest
    /// summary wins; summaries landing at the *same* instant (window-roll
    /// gossip is synchronized across the grid) tie-break on the lowest node
    /// id, so the winner is a function of the schedule, not of the order
    /// two simultaneous deliveries happened to pop in.
    neighbor_holders: BTreeMap<UrlHash, (NodeId, SimTime)>,
    /// In-flight peer fetches: request id → delegation key.
    peer_reqs: BTreeMap<RequestId, UrlHash>,
    wicache: Option<WiCacheLink>,
    cpu: CpuMeter,
    mem: MemMeter,
    next_txn: u16,
    next_conn: u64,
    next_req: u64,
    /// When the next frequency-window roll is due. The roll runs lazily
    /// from whichever periodic tick reaches the due instant first (see
    /// [`ApNode::roll_window_if_due`]), so same-instant tick ordering can
    /// never change what the resource sampler observes.
    next_window_roll: SimTime,
}

impl std::fmt::Debug for ApNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApNode")
            .field("cached_objects", &self.cache.store().len())
            .field("used_bytes", &self.cache.store().used())
            .field("registry", &self.registry.len())
            .finish()
    }
}

impl ApNode {
    /// Creates an AP forwarding DNS to `upstream` (the LDNS) and dialling
    /// resolved addresses through `ip_map`.
    pub fn new(config: ApConfig, upstream: NodeId, ip_map: IpMap) -> Self {
        let store = CacheStore::new(config.cache_capacity, config.block_threshold);
        let policy: Box<dyn EvictionPolicy> = match config.policy {
            ApPolicy::Pacm => Box::new(PacmPolicy::new(config.pacm)),
            ApPolicy::PacmNoFairness => Box::new(PacmPolicy::new(config.pacm).without_fairness()),
            ApPolicy::Lru => Box::new(LruPolicy::new()),
        };
        let cores = config.cores;
        let baseline = config.mem_baseline;
        ApNode {
            config,
            upstream,
            ip_map,
            cache: CacheManager::new(store, policy),
            dns_cache: BTreeMap::new(),
            registry: BTreeMap::new(),
            domain_urls: BTreeMap::new(),
            pending_forwards: BTreeMap::new(),
            delegations: BTreeMap::new(),
            delegation_reqs: BTreeMap::new(),
            awaiting_dns: BTreeMap::new(),
            neighbors: Vec::new(),
            neighbor_holders: BTreeMap::new(),
            peer_reqs: BTreeMap::new(),
            wicache: None,
            cpu: CpuMeter::new(cores),
            mem: MemMeter::with_baseline(baseline),
            next_txn: 1,
            next_conn: 1,
            next_req: 1,
            next_window_roll: SimTime::from_nanos(0),
        }
    }

    /// Enables Wi-Cache advertisements to a controller.
    pub fn with_wicache(mut self, link: WiCacheLink) -> Self {
        self.wicache = Some(link);
        self
    }

    /// Enables AP↔AP cooperation with the given neighbor APs: cache
    /// summaries are exchanged on every window roll, and delegated fetches
    /// try the nearest advertised holder before dialling the edge.
    pub fn with_neighbors(mut self, neighbors: Vec<NodeId>) -> Self {
        self.neighbors = neighbors;
        self
    }

    /// Number of objects currently cached (for tests).
    pub fn cached_objects(&self) -> usize {
        self.cache.store().len()
    }

    /// Bytes currently cached (for tests).
    pub fn cached_bytes(&self) -> u64 {
        self.cache.store().used()
    }

    /// Simulates a cache wipe (AP reboot / OOM): every cached object and
    /// DNS entry is dropped while the block list and URL registry persist
    /// in flash, exactly the state a restarted dnsmasq-based AP would
    /// recover with. Clients holding stale `Cache-Hit` flags fall back to
    /// the delegation path transparently.
    pub fn flush_cache(&mut self) {
        let store = CacheStore::new(self.config.cache_capacity, self.config.block_threshold);
        let policy: Box<dyn EvictionPolicy> = match self.config.policy {
            ApPolicy::Pacm => Box::new(PacmPolicy::new(self.config.pacm)),
            ApPolicy::PacmNoFairness => {
                Box::new(PacmPolicy::new(self.config.pacm).without_fairness())
            }
            ApPolicy::Lru => Box::new(LruPolicy::new()),
        };
        self.cache = CacheManager::new(store, policy);
        self.dns_cache.clear();
    }

    /// Cached bytes split by priority `(high, low)` — diagnostic for the
    /// PACM-vs-LRU composition analysis.
    pub fn cached_bytes_by_priority(&self) -> (u64, u64) {
        let mut high = 0;
        let mut low = 0;
        for entry in self.cache.store().iter() {
            if entry.meta.priority.is_high() {
                high += entry.meta.size;
            } else {
                low += entry.meta.size;
            }
        }
        (high, low)
    }

    /// Memory footprint of the APE-CACHE components right now: code, cache
    /// contents, and per-entry/registry metadata.
    pub fn ape_memory_bytes(&self) -> u64 {
        self.config.ape_code_overhead
            + self.cache.store().used()
            + self.cache.store().len() as u64 * self.config.per_entry_overhead
            + self.registry.len() as u64 * 160
            + self.dns_cache.len() as u64 * 96
    }

    /// Charges CPU work and returns the latency until it completes
    /// (queueing + service), so responses reflect device load.
    fn work(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let done = self.cpu.charge(now, cost);
        done - now
    }

    /// Allocates an upstream DNS transaction id, skipping ids still in
    /// flight so a wrapped counter cannot collide with (and orphan) an
    /// older pending forward.
    fn alloc_txn(&mut self) -> u16 {
        assert!(
            self.pending_forwards.len() < u16::MAX as usize,
            "upstream DNS txn space exhausted"
        );
        loop {
            let txn = self.next_txn;
            self.next_txn = self.next_txn.wrapping_add(1).max(1);
            if !self.pending_forwards.contains_key(&txn) {
                return txn;
            }
        }
    }

    /// Sizes of every pending-state map, labelled — the chaos tests assert
    /// all of these drain to zero once in-flight traffic settles.
    pub fn pending_counts(&self) -> [(&'static str, usize); 5] {
        [
            ("ap.pending_forwards", self.pending_forwards.len()),
            ("ap.delegations", self.delegations.len()),
            ("ap.delegation_reqs", self.delegation_reqs.len()),
            ("ap.awaiting_dns", self.awaiting_dns.len()),
            ("ap.peer_reqs", self.peer_reqs.len()),
        ]
    }

    fn flag_for(&self, key: UrlHash, now: SimTime) -> CacheFlag {
        match self.cache.peek(key, now) {
            Lookup::Hit => CacheFlag::Hit,
            Lookup::Blocked => CacheFlag::Miss,
            Lookup::Expired | Lookup::Absent => CacheFlag::Delegation,
        }
    }

    /// Builds the DNS-Cache response tuples for a query about `domain`:
    /// requested hashes plus (with batching) every URL known under the
    /// domain (§IV-B3).
    fn tuples_for(
        &self,
        domain: &DomainName,
        requested: &[UrlHash],
        now: SimTime,
    ) -> Vec<CacheTuple> {
        let mut keys: Vec<UrlHash> = requested.to_vec();
        if self.config.batch_domain_flags {
            if let Some(known) = self.domain_urls.get(domain) {
                for k in known {
                    if !keys.contains(k) {
                        keys.push(*k);
                    }
                }
            }
        }
        keys.into_iter()
            .map(|k| CacheTuple::new(k, self.flag_for(k, now)))
            .collect()
    }

    fn remember_domain_url(&mut self, domain: DomainName, key: UrlHash) {
        let list = self.domain_urls.entry(domain).or_default();
        if !list.contains(&key) {
            list.push(key);
        }
    }

    fn advertise(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        added: Vec<UrlHash>,
        removed: Vec<UrlHash>,
    ) {
        if added.is_empty() && removed.is_empty() {
            return;
        }
        if let Some(link) = self.wicache {
            ctx.send(link.controller, Msg::WiCacheAdvertise { added, removed });
        }
    }

    // ------------------------------------------------------------------
    // DNS handling
    // ------------------------------------------------------------------

    fn handle_dns_query(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, query: DnsMessage) {
        let now = ctx.now();
        let is_cache_query = query.is_dns_cache_query();
        let mut cost = self.config.dns_processing;
        if is_cache_query {
            cost += self.config.dnscache_extra;
            ctx.metrics().incr_id(names::id::AP_DNS_CACHE_QUERIES, 1);
        } else {
            ctx.metrics().incr_id(names::id::AP_DNS_QUERIES, 1);
        }
        let latency = self.work(now, cost);
        let Some(domain) = query.question_name().cloned() else {
            return;
        };
        let requested = query.cache_request_hashes();
        for k in &requested {
            self.remember_domain_url(domain.clone(), *k);
        }

        let tuples = if is_cache_query {
            self.tuples_for(&domain, &requested, now)
        } else {
            Vec::new()
        };

        // Short-circuit: if every *requested* URL is already cached, the
        // client will fetch from the AP anyway — skip upstream resolution
        // and answer a dummy IP with TTL 0 (§IV-B3).
        if is_cache_query
            && self.config.short_circuit
            && !requested.is_empty()
            && requested
                .iter()
                .all(|k| self.cache.peek(*k, now) == Lookup::Hit)
        {
            ctx.metrics().incr_id(names::id::AP_SHORT_CIRCUITS, 1);
            let response = DnsMessage::dns_cache_response(&query, IpMap::DUMMY, 0, tuples);
            ctx.send_after(latency, from, Msg::dns(response));
            return;
        }

        // dnsmasq cache.
        if let Some((ip, expires, _)) = self.dns_cache.get(&domain) {
            if *expires > now {
                ctx.metrics().incr_id(names::id::AP_DNS_CACHE_HITS, 1);
                let remaining = (*expires - now).as_secs_u32();
                let response =
                    DnsMessage::dns_cache_response(&query, *ip, remaining.max(1), tuples);
                ctx.send_after(latency, from, Msg::dns(response));
                return;
            }
        }

        // Forward upstream; flags are recomputed when the answer returns.
        ctx.metrics().incr_id(names::id::AP_DNS_FORWARDS, 1);
        let span = ctx.span_start(SpanKind::DnsUpstream.as_str());
        let txn = self.alloc_txn();
        self.pending_forwards.insert(
            txn,
            PendingForward {
                client: from,
                query,
                extra_flags: is_cache_query,
                internal: false,
                span,
                at: now,
                retried: false,
            },
        );
        let upstream_query = DnsMessage::query(txn, domain);
        ctx.send_after(latency, self.upstream, Msg::dns(upstream_query));
    }

    fn handle_dns_response(&mut self, ctx: &mut Context<'_, Msg>, response: DnsMessage) {
        let now = ctx.now();
        let latency = self.work(now, self.config.dns_processing);
        let Some(pending) = self.pending_forwards.remove(&response.header.id) else {
            return;
        };
        // The domain comes from the forwarded query, which always carries a
        // question; deriving it from the response allowed a malformed (or
        // mismatched) answer to return early and leak the open DnsUpstream
        // span. Such answers now count as resolution failures instead.
        let domain = pending
            .query
            .question_name()
            .cloned()
            .expect("forwarded queries carry a question");
        let answer = response
            .answer_ip()
            .filter(|_| response.question_name() == Some(&domain))
            .map(|ip| {
                let ttl = response.answers.first().map(|a| a.ttl).unwrap_or(1).max(1);
                (ip, ttl)
            });
        if let Some((ip, ttl)) = answer {
            self.dns_cache.insert(
                domain.clone(),
                (ip, now + SimDuration::from_secs(ttl as u64), ttl),
            );
        }

        // Resume delegations that were waiting for this resolution — or
        // fail them when the domain did not resolve; re-entering the fetch
        // path on a permanent NXDOMAIN would re-query upstream forever.
        // Each resumed fetch switches the span context to its own
        // delegation, so restore the responder's context for the relay.
        let relay_span = ctx.span_ctx();
        if answer.is_some() {
            if let Some(keys) = self.awaiting_dns.remove(&domain) {
                for key in keys {
                    self.start_upstream_fetch(ctx, key);
                }
            }
        } else {
            self.fail_awaiting_dns(ctx, &domain);
        }
        ctx.set_span_ctx(relay_span);

        // Relay to the querying client (if this forward had one).
        if let Some(span) = pending.span {
            ctx.span_end(span, SpanKind::DnsUpstream.as_str());
        }
        if pending.internal {
            return;
        }
        let requested = pending.query.cache_request_hashes();
        let tuples = if pending.extra_flags {
            self.tuples_for(&domain, &requested, now)
        } else {
            Vec::new()
        };
        let response_to_client = match answer {
            Some((ip, ttl)) => DnsMessage::dns_cache_response(&pending.query, ip, ttl, tuples),
            None => {
                let mut r = DnsMessage::dns_cache_response(
                    &pending.query,
                    Ipv4Addr::UNSPECIFIED,
                    0,
                    tuples,
                );
                r.answers.clear();
                r.header.rcode = response.header.rcode;
                r
            }
        };
        ctx.send_after(latency, pending.client, Msg::dns(response_to_client));
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn handle_http_request(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        conn: ConnId,
        req: RequestId,
        request: HttpRequest,
        cache_op: Option<CacheOp>,
    ) {
        let now = ctx.now();
        let latency = self.work(now, self.config.http_processing);
        let key = request.url.hash();
        let domain = request.url.host().clone();
        self.remember_domain_url(domain, key);

        // Feed PACM's frequency signal.
        let op = cache_op.or_else(|| self.registry.get(&key).map(|r| r.op));
        if let Some(op) = op {
            self.cache.note_request(op.app);
        }
        ctx.metrics().incr_id(names::id::AP_DATA_REQUESTS, 1);

        match self.cache.lookup(key, now) {
            Lookup::Hit => {
                let size = self
                    .cache
                    .store()
                    .get(key)
                    .map(|e| e.meta.size)
                    .expect("hit entry exists");
                ctx.metrics().incr_id(names::id::AP_CACHE_HITS, 1);
                ctx.send_after(
                    latency,
                    from,
                    Msg::HttpRsp {
                        conn,
                        req,
                        response: HttpResponse::ok(Body::synthetic(size)),
                        from_cache: true,
                    },
                );
            }
            Lookup::Blocked => {
                // Block-listed: fetch-and-forward without caching.
                ctx.metrics().incr_id(names::id::AP_BLOCKED_SERVES, 1);
                self.enqueue_delegation(ctx, from, conn, req, request.url, op, false);
            }
            Lookup::Expired | Lookup::Absent => {
                ctx.metrics().incr_id(names::id::AP_DELEGATIONS, 1);
                self.enqueue_delegation(ctx, from, conn, req, request.url, op, true);
            }
        }
    }

    /// Adds a waiter for `url`; starts the upstream fetch when none is
    /// already in flight.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_delegation(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        conn: ConnId,
        req: RequestId,
        url: Url,
        op: Option<CacheOp>,
        cache_result: bool,
    ) {
        let key = url.hash();
        let waiter = Waiter {
            node: from,
            conn,
            req,
        };
        if let Some(existing) = self.delegations.get_mut(&key) {
            existing.waiters.push(waiter);
            return;
        }
        let op = op.unwrap_or(CacheOp {
            ttl: SimDuration::from_mins(10),
            priority: Priority::LOW,
            app: ape_cachealg::AppId::new(u32::MAX),
        });
        self.registry.insert(key, RegisteredUrl { op });
        // The WAN fetch is a child of the triggering waiter's retrieval
        // span; later coalesced waiters share the same upstream fetch.
        let span = ctx.span_start(SpanKind::WanFetch.as_str());
        self.delegations.insert(
            key,
            Delegation {
                url,
                op,
                waiters: vec![waiter],
                started: ctx.now(),
                cache_result,
                span,
                retried: false,
                upstream_req: None,
            },
        );
        self.start_upstream_fetch(ctx, key);
    }

    /// Dials the object's server (resolving its domain first if needed) and
    /// issues the upstream request.
    fn start_upstream_fetch(&mut self, ctx: &mut Context<'_, Msg>, key: UrlHash) {
        let Some(delegation) = self.delegations.get_mut(&key) else {
            return;
        };
        delegation.started = ctx.now();
        // Everything sent on behalf of this delegation — the inline DNS
        // resolution and the upstream request — belongs to its WAN span.
        ctx.set_span_ctx(delegation.span);
        // Cooperative step: when a neighbor AP advertised this key, ask it
        // first — one hop over the backhaul instead of the edge round trip.
        // Reap-retried fetches skip the peer path (it already failed or
        // timed out) and go straight upstream; a peer miss clears the stale
        // holder entry and re-enters here on the normal path.
        if !delegation.retried {
            if let Some(&(holder, _)) = self.neighbor_holders.get(&key) {
                let peer_req = RequestId(self.next_req);
                self.next_req += 1;
                delegation.upstream_req = Some(peer_req);
                self.peer_reqs.insert(peer_req, key);
                ctx.metrics().incr_id(names::id::AP_PEER_FETCHES, 1);
                ctx.send(holder, Msg::PeerFetch { req: peer_req, key });
                return;
            }
        }
        let domain = delegation.url.host().clone();
        let now = ctx.now();
        let target_ip = match self.dns_cache.get(&domain) {
            Some((ip, expires, _)) if *expires > now => *ip,
            _ => {
                // Resolve first; the fetch resumes from
                // `handle_dns_response`.
                let first = self.awaiting_dns.get(&domain).is_none_or(|w| w.is_empty());
                if first {
                    let txn = self.alloc_txn();
                    self.pending_forwards.insert(
                        txn,
                        PendingForward {
                            client: ctx.self_id(),
                            query: DnsMessage::query(txn, domain.clone()),
                            extra_flags: false,
                            internal: true,
                            // Resolution time is inside the WAN-fetch span.
                            span: None,
                            at: now,
                            retried: false,
                        },
                    );
                    ctx.send(
                        self.upstream,
                        Msg::dns(DnsMessage::query(txn, domain.clone())),
                    );
                }
                self.awaiting_dns.entry(domain).or_default().push(key);
                return;
            }
        };
        let Some(target) = self.ip_map.node_of(target_ip) else {
            // Resolution produced an address outside the testbed; fail all
            // waiters.
            let delegation = self.delegations.remove(&key).expect("present above");
            if let Some(span) = delegation.span {
                ctx.span_end(span, SpanKind::WanFetch.as_str());
            }
            for w in delegation.waiters {
                ctx.send(
                    w.node,
                    Msg::HttpRsp {
                        conn: w.conn,
                        req: w.req,
                        response: HttpResponse::gateway_timeout(),
                        from_cache: false,
                    },
                );
            }
            return;
        };
        let conn = ConnId(self.next_conn);
        self.next_conn += 1;
        let up_req = RequestId(self.next_req);
        self.next_req += 1;
        self.delegation_reqs.insert(up_req, key);
        delegation.upstream_req = Some(up_req);
        let handshake = ctx.link_rtt(target).unwrap_or(SimDuration::ZERO);
        ctx.send(target, Msg::TcpSyn { conn });
        ctx.send_after(
            handshake,
            target,
            Msg::HttpReq {
                conn,
                req: up_req,
                request: Box::new(HttpRequest::get(delegation.url.clone())),
                cache_op: None,
            },
        );
    }

    fn handle_upstream_response(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        req: RequestId,
        response: HttpResponse,
    ) {
        let now = ctx.now();
        let latency = self.work(now, self.config.http_processing);
        let Some(key) = self.delegation_reqs.remove(&req) else {
            return;
        };
        let Some(delegation) = self.delegations.remove(&key) else {
            return;
        };
        let fetch_latency = now - delegation.started;
        ctx.metrics().observe_id(
            names::id::AP_DELEGATION_FETCH_MS,
            fetch_latency.as_millis_f64(),
        );
        if let Some(span) = delegation.span {
            ctx.span_end(span, SpanKind::WanFetch.as_str());
        }

        if response.status.is_success() && delegation.cache_result {
            let admit_latency = self.work(now, self.config.eviction_processing);
            let meta = ObjectMeta {
                key,
                app: delegation.op.app,
                size: response.body.size(),
                priority: delegation.op.priority,
                expires_at: now + delegation.op.ttl,
                fetch_latency,
            };
            // The admission (eviction decision + insert) is charged
            // `eviction_processing` CPU; the span covers that modeled
            // interval so `repro trace` attributes eviction cost per
            // admission.
            let evict_span = ctx.span_start(SpanKind::CacheEvict.as_str());
            let prof = ctx.prof_start();
            let stats_before = self.cache.policy().evict_stats();
            let outcome = self.cache.admit(meta, now);
            ctx.prof_end(ProfCategory::Evict, prof);
            match outcome {
                AdmitOutcome::Stored { evicted } => {
                    ctx.metrics().incr_id(names::id::AP_ADMISSIONS, 1);
                    ctx.metrics()
                        .incr_id(names::id::AP_EVICTIONS, evicted.len() as u64);
                    self.advertise(ctx, vec![key], evicted);
                }
                AdmitOutcome::Blocked => {
                    ctx.metrics().incr_id(names::id::AP_BLOCK_LISTED, 1);
                }
                AdmitOutcome::Declined => {
                    ctx.metrics().incr_id(names::id::AP_ADMIT_DECLINED, 1);
                }
            }
            self.record_evict_stats(ctx, stats_before);
            if let Some(span) = evict_span {
                ctx.span_end_at(span, SpanKind::CacheEvict.as_str(), now + admit_latency);
            }
        }

        for w in delegation.waiters {
            ctx.send_after(
                latency,
                w.node,
                Msg::HttpRsp {
                    conn: w.conn,
                    req: w.req,
                    response: response.clone(),
                    from_cache: false,
                },
            );
        }
    }

    /// Extension (paper §VI): proactively delegate the objects a client
    /// says it will request next, so the follow-up requests hit.
    fn handle_prefetch_hints(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        hints: Vec<ape_proto::PrefetchHint>,
    ) {
        let now = ctx.now();
        let latency = self.work(now, self.config.http_processing);
        let _ = latency; // prefetching is off the client's critical path
                         // Prefetch fetches serve no specific request: detach them from the
                         // hinting client's trace so attribution only sees demand fetches.
        ctx.set_span_ctx(None);
        for hint in hints {
            let key = hint.url.hash();
            match self.cache.peek(key, now) {
                Lookup::Hit | Lookup::Blocked => continue,
                Lookup::Expired | Lookup::Absent => {}
            }
            if self.delegations.contains_key(&key) {
                continue; // already being fetched
            }
            ctx.metrics().incr_id(names::id::AP_PREFETCHES, 1);
            self.registry.insert(key, RegisteredUrl { op: hint.op });
            self.delegations.insert(
                key,
                Delegation {
                    url: hint.url,
                    op: hint.op,
                    waiters: Vec::new(),
                    started: now,
                    cache_result: true,
                    span: None,
                    retried: false,
                    upstream_req: None,
                },
            );
            self.start_upstream_fetch(ctx, key);
        }
    }

    // ------------------------------------------------------------------
    // AP↔AP cooperation & roaming
    // ------------------------------------------------------------------

    /// How many cached keys a summary carries (peer-fetch piggybacks, the
    /// window-roll gossip, and the roam hand-off all use the same bound).
    const SUMMARY_KEYS: usize = 32;

    /// A deterministic hot-object summary of the local cache: the first
    /// [`Self::SUMMARY_KEYS`] keys in store order.
    fn cache_summary(&self) -> Vec<UrlHash> {
        self.cache
            .store()
            .iter()
            .map(|e| e.meta.key)
            .take(Self::SUMMARY_KEYS)
            .collect()
    }

    /// Records a neighbor's advertised hot keys; the latest summary wins,
    /// and two summaries absorbed at the same instant tie-break on the
    /// lowest node id (see [`Self::neighbor_holders`]). Summaries from APs
    /// we don't cooperate with — e.g. a roam handoff arriving at an
    /// isolated grid — are dropped: peer fetching is an opt-in, and
    /// honouring a stray summary would silently re-enable it.
    fn absorb_summary(&mut self, now: SimTime, from: NodeId, keys: Vec<UrlHash>) {
        if !self.neighbors.contains(&from) {
            return;
        }
        for key in keys {
            match self.neighbor_holders.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert((from, now));
                }
                Entry::Occupied(mut slot) => {
                    let (holder, at) = *slot.get();
                    if now > at || (now == at && from < holder) {
                        slot.insert((from, now));
                    }
                }
            }
        }
    }

    /// Serves a neighbor's peer fetch from the local cache (`None` on a
    /// miss) and piggybacks a hot-object summary on the reply either way.
    fn handle_peer_fetch(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: RequestId,
        key: UrlHash,
    ) {
        let now = ctx.now();
        let latency = self.work(now, self.config.http_processing);
        let response = match self.cache.lookup(key, now) {
            Lookup::Hit => {
                let size = self
                    .cache
                    .store()
                    .get(key)
                    .map(|e| e.meta.size)
                    .expect("hit entry exists");
                Some(Box::new(HttpResponse::ok(Body::synthetic(size))))
            }
            Lookup::Blocked | Lookup::Expired | Lookup::Absent => None,
        };
        let summary = self.cache_summary();
        ctx.send_after(
            latency,
            from,
            Msg::PeerRsp {
                req,
                response,
                summary,
            },
        );
    }

    /// Completes (or falls back from) a peer fetch. A hit flows through the
    /// normal upstream-response path — fetch-latency accounting, admission,
    /// Wi-Cache advertisement, waiter serving — so a peer-fetched object is
    /// indistinguishable from an edge-fetched one downstream.
    fn handle_peer_rsp(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        req: RequestId,
        response: Option<Box<HttpResponse>>,
        summary: Vec<UrlHash>,
    ) {
        self.absorb_summary(ctx.now(), from, summary);
        let Some(key) = self.peer_reqs.remove(&req) else {
            return; // disowned by the reaper; the summary still counted
        };
        match response {
            Some(rsp) => {
                ctx.metrics().incr_id(names::id::AP_PEER_HITS, 1);
                self.delegation_reqs.insert(req, key);
                self.handle_upstream_response(ctx, req, *rsp);
            }
            None => {
                ctx.metrics().incr_id(names::id::AP_PEER_MISSES, 1);
                if self.neighbor_holders.get(&key).map(|&(h, _)| h) == Some(from) {
                    self.neighbor_holders.remove(&key);
                }
                if let Some(d) = self.delegations.get_mut(&key) {
                    d.upstream_req = None;
                    self.start_upstream_fetch(ctx, key);
                }
            }
        }
    }

    /// A homed client re-homed to `new_ap`: cancel its pending DNS relays,
    /// drop it from delegation waiter lists (the fetches themselves finish
    /// and are admitted for whoever stayed), and hand the new home a
    /// hot-object summary so the roamer's working set stays one peer fetch
    /// away.
    fn handle_roam_notice(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, new_ap: NodeId) {
        ctx.metrics().incr_id(names::id::AP_ROAM_DEPARTURES, 1);
        let stale: Vec<u16> = self
            .pending_forwards
            .iter()
            .filter(|(_, p)| !p.internal && p.client == from)
            .map(|(txn, _)| *txn)
            .collect();
        for txn in stale {
            let pending = self.pending_forwards.remove(&txn).expect("collected above");
            if let Some(span) = pending.span {
                ctx.span_end(span, SpanKind::DnsUpstream.as_str());
            }
            ctx.metrics()
                .incr_id(names::id::AP_ROAM_CANCELLED_FORWARDS, 1);
        }
        for d in self.delegations.values_mut() {
            let before = d.waiters.len();
            d.waiters.retain(|w| w.node != from);
            let cancelled = (before - d.waiters.len()) as u64;
            if cancelled > 0 {
                ctx.metrics()
                    .incr_id(names::id::AP_ROAM_CANCELLED_WAITERS, cancelled);
            }
        }
        if new_ap != ctx.self_id() {
            let keys = self.cache_summary();
            if !keys.is_empty() {
                ctx.send(new_ap, Msg::CacheSummary { keys });
            }
        }
    }

    /// Publishes the eviction-engine counters advanced by the last
    /// admission (PACM only; LRU keeps no stats) as metric deltas.
    fn record_evict_stats(&mut self, ctx: &mut Context<'_, Msg>, before: Option<EvictStats>) {
        let (Some(before), Some(after)) = (before, self.cache.policy().evict_stats()) else {
            return;
        };
        let deltas = [
            (
                names::id::AP_EVICT_SOLVER_RUNS,
                after.solver_runs - before.solver_runs,
            ),
            (
                names::id::AP_EVICT_ITEMS,
                after.items_considered - before.items_considered,
            ),
            (names::id::AP_EVICT_DP_RUNS, after.dp_runs - before.dp_runs),
            (
                names::id::AP_EVICT_GREEDY_RUNS,
                after.greedy_runs - before.greedy_runs,
            ),
            (
                names::id::AP_EVICT_SHORT_CIRCUITS,
                after.short_circuits - before.short_circuits,
            ),
            (
                names::id::AP_EVICT_FORCED,
                after.forced_victims - before.forced_victims,
            ),
            (
                names::id::AP_EVICT_REPAIRS,
                after.repair_evictions - before.repair_evictions,
            ),
        ];
        for (id, delta) in deltas {
            if delta > 0 {
                ctx.metrics().incr_id(id, delta);
            }
        }
    }

    /// Fails every delegation blocked on resolving `domain`: the answer is
    /// not coming, so the waiters get 504 and the state is dropped.
    fn fail_awaiting_dns(&mut self, ctx: &mut Context<'_, Msg>, domain: &DomainName) {
        let Some(keys) = self.awaiting_dns.remove(domain) else {
            return;
        };
        for key in keys {
            let Some(delegation) = self.delegations.remove(&key) else {
                continue;
            };
            ctx.metrics()
                .incr_id(names::id::AP_DELEGATION_DNS_FAILURES, 1);
            if let Some(span) = delegation.span {
                ctx.span_end(span, SpanKind::WanFetch.as_str());
            }
            for w in delegation.waiters {
                ctx.send(
                    w.node,
                    Msg::HttpRsp {
                        conn: w.conn,
                        req: w.req,
                        response: HttpResponse::gateway_timeout(),
                        from_cache: false,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Pending-state reapers
    // ------------------------------------------------------------------
    //
    // A lossy uplink can swallow any upstream message, which without a
    // timeout would strand `pending_forwards` / `delegations` /
    // `awaiting_dns` entries (and their waiters) forever. The reaper tick
    // retries each stuck operation exactly once and then fails it toward
    // the client — SERVFAIL for DNS forwards, 504 for delegation waiters —
    // so every pending map provably drains once traffic stops.

    fn reap(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        self.reap_forwards(ctx, now);
        self.reap_delegations(ctx, now);
        ctx.set_span_ctx(None);
    }

    fn reap_forwards(&mut self, ctx: &mut Context<'_, Msg>, now: SimTime) {
        let stale: Vec<u16> = self
            .pending_forwards
            .iter()
            .filter(|(_, p)| now - p.at >= self.config.dns_upstream_timeout)
            .map(|(txn, _)| *txn)
            .collect();
        for txn in stale {
            if !self.pending_forwards[&txn].retried {
                // Retransmit once, same transaction id: whichever copy's
                // answer arrives first completes the forward.
                let upstream = self.upstream;
                let p = self
                    .pending_forwards
                    .get_mut(&txn)
                    .expect("collected above");
                p.retried = true;
                p.at = now;
                let query = p
                    .query
                    .question_name()
                    .cloned()
                    .map(|d| DnsMessage::query(txn, d));
                ctx.metrics().incr_id(names::id::AP_DNS_UPSTREAM_RETRIES, 1);
                ctx.set_span_ctx(self.pending_forwards[&txn].span);
                if let Some(query) = query {
                    ctx.send(upstream, Msg::dns(query));
                }
                continue;
            }
            let pending = self.pending_forwards.remove(&txn).expect("collected above");
            ctx.set_span_ctx(None);
            ctx.metrics()
                .incr_id(names::id::AP_DNS_UPSTREAM_GIVE_UPS, 1);
            if let Some(span) = pending.span {
                ctx.span_end(span, SpanKind::DnsUpstream.as_str());
            }
            let Some(domain) = pending.query.question_name().cloned() else {
                continue;
            };
            if pending.internal {
                // Delegations blocked on this resolution can never proceed.
                self.fail_awaiting_dns(ctx, &domain);
            } else {
                let tuples = if pending.extra_flags {
                    self.tuples_for(&domain, &pending.query.cache_request_hashes(), now)
                } else {
                    Vec::new()
                };
                let mut r = DnsMessage::dns_cache_response(
                    &pending.query,
                    Ipv4Addr::UNSPECIFIED,
                    0,
                    tuples,
                );
                r.answers.clear();
                r.header.rcode = Rcode::ServFail;
                ctx.send(pending.client, Msg::dns(r));
            }
        }
    }

    fn reap_delegations(&mut self, ctx: &mut Context<'_, Msg>, now: SimTime) {
        // Delegations still waiting on DNS are owned by the forward reaper
        // (its give-up path drains them via `fail_awaiting_dns`), so only
        // fetches that actually went upstream are considered here.
        let stale: Vec<UrlHash> = self
            .delegations
            .iter()
            .filter(|(key, d)| {
                now - d.started >= self.config.delegation_timeout
                    && !self
                        .awaiting_dns
                        .get(d.url.host())
                        .is_some_and(|keys| keys.contains(key))
            })
            .map(|(key, _)| *key)
            .collect();
        for key in stale {
            if !self.delegations[&key].retried {
                let d = self.delegations.get_mut(&key).expect("collected above");
                d.retried = true;
                // Disown the stale upstream request: if its response ever
                // arrives it must not complete the restarted fetch too.
                if let Some(up) = d.upstream_req.take() {
                    self.delegation_reqs.remove(&up);
                    self.peer_reqs.remove(&up);
                }
                ctx.metrics().incr_id(names::id::AP_DELEGATION_RETRIES, 1);
                self.start_upstream_fetch(ctx, key);
                continue;
            }
            let delegation = self.delegations.remove(&key).expect("collected above");
            ctx.set_span_ctx(None);
            if let Some(up) = delegation.upstream_req {
                self.delegation_reqs.remove(&up);
                self.peer_reqs.remove(&up);
            }
            ctx.metrics().incr_id(names::id::AP_DELEGATION_REAPS, 1);
            if let Some(span) = delegation.span {
                ctx.span_end(span, SpanKind::WanFetch.as_str());
            }
            for w in delegation.waiters {
                ctx.send(
                    w.node,
                    Msg::HttpRsp {
                        conn: w.conn,
                        req: w.req,
                        response: HttpResponse::gateway_timeout(),
                        from_cache: false,
                    },
                );
            }
        }
    }

    /// Rolls the frequency window and purges expired objects once the due
    /// instant is reached. Both the window tick and the sample tick call
    /// this, so when the two grids land on the same nanosecond the roll
    /// happens exactly once, before whichever handler the queue runs
    /// first does its own work — the resource sampler can never observe a
    /// pre-purge state that tie-break order would otherwise decide.
    fn roll_window_if_due(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        if now < self.next_window_roll {
            return;
        }
        self.next_window_roll = now + self.config.window;
        let prof = ctx.prof_start();
        self.cache.roll_window(now);
        let purged: Vec<_> = self
            .cache
            .purge_expired(now)
            .into_iter()
            .map(|meta| meta.key)
            .collect();
        ctx.prof_end(ProfCategory::Evict, prof);
        ctx.metrics()
            .incr_id(names::id::AP_TTL_PURGES, purged.len() as u64);
        self.advertise(ctx, Vec::new(), purged);
        // Cooperative gossip rides the same roll: each neighbor learns this
        // AP's current hot set once per window.
        if !self.neighbors.is_empty() {
            let keys = self.cache_summary();
            if !keys.is_empty() {
                for i in 0..self.neighbors.len() {
                    let neighbor = self.neighbors[i];
                    ctx.send(neighbor, Msg::CacheSummary { keys: keys.clone() });
                }
            }
        }
    }

    fn sample_resources(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        let cpu = self.cpu.sample_utilization(now);
        let ape_mem = self.ape_memory_bytes();
        self.mem.alloc(0); // keep the meter's peak tracking coherent
        ctx.metrics().record_point_id(names::id::AP_CPU, now, cpu);
        ctx.metrics()
            .record_point_id(names::id::AP_APE_MEM_MB, now, ape_mem as f64 / 1e6);
        ctx.metrics().record_point_id(
            names::id::AP_TOTAL_MEM_MB,
            now,
            (self.config.mem_baseline + ape_mem) as f64 / 1e6,
        );
    }
}

impl Node<Msg> for ApNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        // The stagger shifts every periodic tick off the shared grids once,
        // at start; each tick reschedules itself relatively, so the phase
        // persists for the whole run.
        let stagger = self.config.phase_stagger;
        self.next_window_roll = ctx.now() + self.config.window + stagger;
        ctx.schedule(self.config.window + stagger, TICK_WINDOW);
        if let Some(interval) = self.config.sample_interval {
            ctx.schedule(interval + stagger, TICK_SAMPLE);
        }
        ctx.schedule(self.config.reap_interval + REAP_PHASE + stagger, TICK_REAP);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Dns(dns) if dns.header.response => self.handle_dns_response(ctx, *dns),
            Msg::Dns(dns) => self.handle_dns_query(ctx, from, *dns),
            Msg::TcpSyn { conn } => {
                let latency = self.work(ctx.now(), self.config.http_processing);
                ctx.send_after(latency, from, Msg::TcpSynAck { conn });
            }
            Msg::TcpSynAck { .. } => {}
            Msg::HttpReq {
                conn,
                req,
                request,
                cache_op,
            } => self.handle_http_request(ctx, from, conn, req, *request, cache_op),
            Msg::HttpRsp { req, response, .. } => self.handle_upstream_response(ctx, req, response),
            Msg::PrefetchHints { hints } => self.handle_prefetch_hints(ctx, hints),
            Msg::PeerFetch { req, key } => self.handle_peer_fetch(ctx, from, req, key),
            Msg::PeerRsp {
                req,
                response,
                summary,
            } => self.handle_peer_rsp(ctx, from, req, response, summary),
            Msg::CacheSummary { keys } => self.absorb_summary(ctx.now(), from, keys),
            Msg::RoamNotice { new_ap } => self.handle_roam_notice(ctx, from, new_ap),
            Msg::WiCacheLookup { .. }
            | Msg::WiCacheResult { .. }
            | Msg::WiCacheAdvertise { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        match token {
            TICK_WINDOW => {
                self.roll_window_if_due(ctx);
                ctx.schedule(self.config.window, TICK_WINDOW);
            }
            TICK_SAMPLE => {
                self.roll_window_if_due(ctx);
                self.sample_resources(ctx);
                if let Some(interval) = self.config.sample_interval {
                    ctx.schedule(interval, TICK_SAMPLE);
                }
            }
            TICK_REAP => {
                self.reap(ctx);
                ctx.schedule(self.config.reap_interval, TICK_REAP);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// APs re-arm periodic timers, so the queue never drains; run long
    /// enough for all request/response traffic to settle instead.
    fn settle(world: &mut World<Msg>) {
        world.run_for(SimDuration::from_secs(2));
    }

    use crate::server::{Catalog, CatalogEntry, EdgeNode, OriginNode};
    use ape_simnet::{LinkSpec, World};

    /// Scripted prober standing in for a client.
    #[derive(Debug, Default)]
    struct Probe {
        dns_responses: Vec<DnsMessage>,
        http_responses: Vec<(RequestId, HttpResponse, bool)>,
        last_at: Option<SimTime>,
    }

    impl Node<Msg> for Probe {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            self.last_at = Some(ctx.now());
            match msg {
                Msg::Dns(m) => self.dns_responses.push(*m),
                Msg::HttpRsp {
                    req,
                    response,
                    from_cache,
                    ..
                } => self.http_responses.push((req, response, from_cache)),
                _ => {}
            }
        }
    }

    struct Bed {
        world: World<Msg>,
        probe: NodeId,
        ap: NodeId,
        #[allow(dead_code)]
        edge: NodeId,
        ldns: NodeId,
    }

    fn url() -> Url {
        Url::parse("http://app0.dummy.example/obj0?v=1").unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            "http://app0.dummy.example/obj0",
            CatalogEntry {
                size: 40_000,
                extra_latency: SimDuration::from_millis(30),
            },
        );
        c.add(
            "http://app0.dummy.example/big",
            CatalogEntry {
                size: 600_000,
                extra_latency: SimDuration::from_millis(30),
            },
        );
        c
    }

    /// probe —1.5ms— AP —8ms— LDNS; AP —14ms— edge —24ms— origin.
    fn bed(config: ApConfig) -> Bed {
        use crate::resolver::{AuthDnsNode, LdnsNode, ZoneAnswer};
        let mut w = World::new(11);
        let probe = w.add_node("probe", Probe::default());
        let origin = w.add_node(
            "origin",
            OriginNode::new(catalog(), SimDuration::from_micros(500)),
        );
        let mut edge = EdgeNode::new(origin, catalog(), SimDuration::from_micros(500));
        edge.prewarm();
        let edge_id = w.add_node("edge", edge);

        let mut ip_map = IpMap::new();
        let edge_ip = ip_map.assign(edge_id);

        let mut cdn = AuthDnsNode::new(SimDuration::from_micros(300));
        cdn.wildcard(
            DomainName::parse("dummy.example").unwrap(),
            ZoneAnswer::A {
                ip: edge_ip,
                ttl: 20,
            },
        );
        let cdn_id = w.add_node("cdn-dns", cdn);
        let ldns = w.add_node(
            "ldns",
            LdnsNode::new(
                SimDuration::from_micros(200),
                vec![(DomainName::parse("dummy.example").unwrap(), cdn_id)],
            ),
        );
        let ap = w.add_node("ap", ApNode::new(config, ldns, ip_map));

        w.connect(
            probe,
            ap,
            LinkSpec::from_rtt(1, SimDuration::from_millis(3)),
        );
        w.connect(ap, ldns, LinkSpec::from_rtt(4, SimDuration::from_millis(8)));
        w.connect(
            ldns,
            cdn_id,
            LinkSpec::from_rtt(9, SimDuration::from_millis(20)),
        );
        w.connect(
            ap,
            edge_id,
            LinkSpec::from_rtt(7, SimDuration::from_millis(14)),
        );
        w.connect(
            edge_id,
            origin,
            LinkSpec::from_rtt(8, SimDuration::from_millis(24)),
        );
        Bed {
            world: w,
            probe,
            ap,
            edge: edge_id,
            ldns,
        }
    }

    fn dns_cache_query(id: u16, hashes: &[UrlHash]) -> Msg {
        Msg::dns(DnsMessage::dns_cache_request(
            id,
            DomainName::parse("app0.dummy.example").unwrap(),
            hashes,
        ))
    }

    fn delegation_op() -> CacheOp {
        CacheOp {
            ttl: SimDuration::from_mins(10),
            priority: Priority::HIGH,
            app: ape_cachealg::AppId::new(0),
        }
    }

    #[test]
    fn unknown_url_reports_delegation_flag() {
        let mut bed = bed(ApConfig::default());
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        let resp = probe.dns_responses.last().unwrap();
        let tuples = resp.cache_response_tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].flag, CacheFlag::Delegation);
        // Unknown domain forced upstream resolution: a real IP came back.
        assert!(resp.answer_ip().is_some());
        assert!(!IpMap::is_dummy(resp.answer_ip().unwrap()));
    }

    #[test]
    fn delegation_fetches_caches_and_replies() {
        let mut bed = bed(ApConfig::default());
        // Resolve first so the AP has the edge address cached.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        // Open TCP + delegation request.
        bed.world
            .post(bed.probe, bed.ap, Msg::TcpSyn { conn: ConnId(1) });
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(7),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        let (req, response, from_cache) = probe.http_responses.last().unwrap();
        assert_eq!(*req, RequestId(7));
        assert!(response.status.is_success());
        assert_eq!(response.body.size(), 40_000);
        assert!(!from_cache, "first fetch is a delegation");
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
    }

    #[test]
    fn second_fetch_is_served_from_ap_cache() {
        let mut bed = bed(ApConfig::default());
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        let t0 = bed.world.now();
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(2),
                req: RequestId(2),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        let (_, response, from_cache) = probe.http_responses.last().unwrap();
        assert!(from_cache, "second fetch hits the AP cache");
        assert!(response.status.is_success());
        let elapsed = (probe.last_at.unwrap() - t0).as_millis_f64();
        assert!(elapsed < 6.0, "cache hit took {elapsed}ms");
        assert_eq!(bed.world.metrics().counter(names::AP_CACHE_HITS), 1);
    }

    #[test]
    fn cached_urls_short_circuit_dns_with_dummy_ip() {
        let mut bed = bed(ApConfig::default());
        // Prime: resolve + delegate once.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        // Let the AP's dnsmasq entry (TTL 20s) expire so only the
        // short-circuit can avoid an upstream round trip.
        bed.world.run_until(SimTime::from_secs(30));
        let t0 = bed.world.now();
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(2, &[url().hash()]));
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        let resp = probe.dns_responses.last().unwrap();
        assert_eq!(resp.answer_ip(), Some(IpMap::DUMMY));
        assert_eq!(resp.answers[0].ttl, 0);
        assert_eq!(resp.cache_response_tuples()[0].flag, CacheFlag::Hit);
        let elapsed = (probe.last_at.unwrap() - t0).as_millis_f64();
        assert!(elapsed < 5.0, "short-circuit lookup took {elapsed}ms");
        assert_eq!(bed.world.metrics().counter(names::AP_SHORT_CIRCUITS), 1);
    }

    #[test]
    fn short_circuit_can_be_disabled() {
        let config = ApConfig {
            short_circuit: false,
            ..ApConfig::default()
        };
        let mut bed = bed(config);
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        bed.world.run_until(SimTime::from_secs(30));
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(2, &[url().hash()]));
        settle(&mut bed.world);
        let resp = bed
            .world
            .node::<Probe>(bed.probe)
            .dns_responses
            .last()
            .cloned()
            .unwrap();
        // Flags still present, but a real upstream-resolved IP.
        assert_eq!(resp.cache_response_tuples()[0].flag, CacheFlag::Hit);
        assert!(!IpMap::is_dummy(resp.answer_ip().unwrap()));
        assert_eq!(bed.world.metrics().counter(names::AP_SHORT_CIRCUITS), 0);
    }

    #[test]
    fn batched_flags_cover_sibling_urls() {
        let mut bed = bed(ApConfig::default());
        let sibling = Url::parse("http://app0.dummy.example/obj0?v=2").unwrap();
        // Teach the AP both URLs exist by delegating both.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        for (i, u) in [url(), sibling.clone()].into_iter().enumerate() {
            bed.world.post(
                bed.probe,
                bed.ap,
                Msg::HttpReq {
                    conn: ConnId(i as u64 + 1),
                    req: RequestId(i as u64 + 1),
                    request: Box::new(HttpRequest::get(u)),
                    cache_op: Some(delegation_op()),
                },
            );
            settle(&mut bed.world);
        }
        // Ask about only one hash; batching must report both.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(2, &[url().hash()]));
        settle(&mut bed.world);
        let resp = bed
            .world
            .node::<Probe>(bed.probe)
            .dns_responses
            .last()
            .cloned()
            .unwrap();
        let tuples = resp.cache_response_tuples();
        assert_eq!(tuples.len(), 2, "{tuples:?}");
        assert!(tuples.iter().all(|t| t.flag == CacheFlag::Hit));
        assert!(tuples.iter().any(|t| t.url_hash == sibling.hash()));
    }

    #[test]
    fn oversized_objects_get_block_listed_and_flagged_miss() {
        let mut bed = bed(ApConfig::default());
        let big = Url::parse("http://app0.dummy.example/big?v=1").unwrap();
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[big.hash()]));
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(big.clone())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        // Data delivered despite being uncacheable.
        let probe = bed.world.node::<Probe>(bed.probe);
        let (_, response, _) = probe.http_responses.last().unwrap();
        assert_eq!(response.body.size(), 600_000);
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);
        // Next lookup reports Cache-Miss.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(2, &[big.hash()]));
        settle(&mut bed.world);
        let resp = bed
            .world
            .node::<Probe>(bed.probe)
            .dns_responses
            .last()
            .cloned()
            .unwrap();
        assert_eq!(resp.cache_response_tuples()[0].flag, CacheFlag::Miss);
    }

    #[test]
    fn concurrent_delegations_coalesce_into_one_fetch() {
        let mut bed = bed(ApConfig::default());
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        for i in 0..3u64 {
            bed.world.post(
                bed.probe,
                bed.ap,
                Msg::HttpReq {
                    conn: ConnId(i + 1),
                    req: RequestId(i + 1),
                    request: Box::new(HttpRequest::get(url())),
                    cache_op: Some(delegation_op()),
                },
            );
        }
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        assert_eq!(probe.http_responses.len(), 3, "all waiters answered");
        assert_eq!(bed.world.metrics().counter(names::EDGE_ORIGIN_FETCHES), 0);
        // Only one upstream request reached the edge for the three waiters.
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
        let delegation_fetches = bed
            .world
            .metrics()
            .histogram(names::AP_DELEGATION_FETCH_MS)
            .unwrap()
            .count();
        assert_eq!(delegation_fetches, 1);
    }

    #[test]
    fn delegation_without_prior_dns_resolves_inline() {
        let mut bed = bed(ApConfig::default());
        // Straight to delegation; the AP must resolve the domain itself.
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        let probe = bed.world.node::<Probe>(bed.probe);
        let (_, response, _) = probe.http_responses.last().unwrap();
        assert!(response.status.is_success());
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
    }

    #[test]
    fn expired_objects_are_purged_on_window_tick() {
        let config = ApConfig {
            window: SimDuration::from_secs(30),
            ..ApConfig::default()
        };
        let mut bed = bed(config);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(CacheOp {
                    ttl: SimDuration::from_secs(10),
                    priority: Priority::LOW,
                    app: ape_cachealg::AppId::new(0),
                }),
            },
        );
        settle(&mut bed.world);
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
        bed.world.run_until(SimTime::from_secs(31));
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);
        assert!(bed.world.metrics().counter(names::AP_TTL_PURGES) >= 1);
    }

    #[test]
    fn resource_sampling_records_series() {
        let mut bed = bed(ApConfig::default());
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        bed.world.run_until(SimTime::from_secs(5));
        let cpu = bed.world.metrics().time_series(names::AP_CPU).unwrap();
        assert!(cpu.len() >= 4);
        let mem = bed
            .world
            .metrics()
            .time_series(names::AP_APE_MEM_MB)
            .unwrap();
        assert!(
            mem.mean() > 3.9,
            "APE code overhead visible: {}",
            mem.mean()
        );
        assert!(mem.mean() < 15.0, "within the paper's 13MB envelope");
    }

    #[test]
    fn ape_memory_grows_with_cache_contents() {
        let mut bed = bed(ApConfig::default());
        let before = bed.world.node::<ApNode>(bed.ap).ape_memory_bytes();
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        let after = bed.world.node::<ApNode>(bed.ap).ape_memory_bytes();
        assert!(after > before + 40_000, "before {before} after {after}");
    }

    #[test]
    fn lru_policy_variant_works_end_to_end() {
        let config = ApConfig {
            policy: ApPolicy::Lru,
            ..ApConfig::default()
        };
        let mut bed = bed(config);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(1),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        settle(&mut bed.world);
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
    }

    fn assert_drained(bed: &Bed) {
        for (map, n) in bed.world.node::<ApNode>(bed.ap).pending_counts() {
            assert_eq!(n, 0, "{map} leaked {n} entries");
        }
    }

    /// The roam-departure bugfix, pinned deterministically: a client with a
    /// DNS forward and a delegation both in flight roams away; the AP must
    /// cancel the forward, drop the client from the waiter list, count both
    /// distinctly from timeout reaps, and still finish + admit the fetch.
    #[test]
    fn roam_notice_cancels_pending_state_mid_flight() {
        let mut bed = bed(ApConfig::default());
        bed.world
            .post(bed.probe, bed.ap, Msg::TcpSyn { conn: ConnId(1) });
        settle(&mut bed.world);
        // A delegated fetch (probe becomes a waiter; resolving the domain
        // parks an *internal* forward that must survive the roam) plus a
        // plain client DNS query (a cancellable *client* forward).
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(9),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::dns(DnsMessage::query(
                5,
                DomainName::parse("other.dummy.example").unwrap(),
            )),
        );
        // Both upstream round trips take ≥ 28 ms; the notice lands ~1.5 ms
        // after this pause, squarely mid-flight.
        bed.world.run_for(SimDuration::from_millis(5));
        bed.world
            .post(bed.probe, bed.ap, Msg::RoamNotice { new_ap: bed.ap });
        bed.world.run_for(SimDuration::from_secs(8));

        let m = bed.world.metrics();
        assert_eq!(m.counter(names::AP_ROAM_DEPARTURES), 1);
        assert_eq!(
            m.counter(names::AP_ROAM_CANCELLED_FORWARDS),
            1,
            "the client's DNS forward is cancelled (the internal one is not)"
        );
        assert_eq!(
            m.counter(names::AP_ROAM_CANCELLED_WAITERS),
            1,
            "the departed waiter leaves the delegation list"
        );
        assert_eq!(
            m.counter(names::AP_DNS_UPSTREAM_GIVE_UPS),
            0,
            "cancellation is distinct from the reaper's timeout path"
        );
        let probe = bed.world.node::<Probe>(bed.probe);
        assert!(
            probe.http_responses.is_empty() && probe.dns_responses.is_empty(),
            "cancelled state produces no replies to the departed client"
        );
        // The delegation itself finished and was admitted for whoever stayed.
        assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 1);
        assert_drained(&bed);
    }

    #[test]
    fn dead_upstream_forward_is_retried_once_then_servfailed() {
        use ape_simnet::FaultPlan;
        let mut bed = bed(ApConfig::default());
        // Partition the AP from the LDNS for the whole run: the forwarded
        // query and its single retry both vanish.
        bed.world.set_fault_plan(FaultPlan::new().link_down(
            bed.ap,
            bed.ldns,
            SimTime::from_nanos(0),
            SimTime::from_secs(1_000),
        ));
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        // 2 × dns_upstream_timeout (2 s) plus reap-tick slack.
        bed.world.run_for(SimDuration::from_secs(6));
        let probe = bed.world.node::<Probe>(bed.probe);
        let resp = probe.dns_responses.last().expect("client got an answer");
        assert_eq!(resp.header.rcode, Rcode::ServFail);
        assert_eq!(
            bed.world.metrics().counter(names::AP_DNS_UPSTREAM_RETRIES),
            1
        );
        assert_eq!(
            bed.world.metrics().counter(names::AP_DNS_UPSTREAM_GIVE_UPS),
            1
        );
        assert_drained(&bed);
    }

    #[test]
    fn dead_edge_delegation_is_retried_once_then_gateway_timeout() {
        use ape_simnet::FaultPlan;
        let mut bed = bed(ApConfig::default());
        // Resolve first so the delegation dials the edge directly.
        bed.world
            .post(bed.probe, bed.ap, dns_cache_query(1, &[url().hash()]));
        settle(&mut bed.world);
        // Now partition the AP from the edge and delegate: the upstream
        // fetch and its retry both vanish.
        bed.world.set_fault_plan(FaultPlan::new().link_down(
            bed.ap,
            bed.edge,
            bed.world.now(),
            SimTime::from_secs(10_000),
        ));
        bed.world
            .post(bed.probe, bed.ap, Msg::TcpSyn { conn: ConnId(1) });
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(7),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        // 2 × delegation_timeout (10 s) plus reap-tick slack.
        bed.world.run_for(SimDuration::from_secs(25));
        let probe = bed.world.node::<Probe>(bed.probe);
        let (req, response, _) = probe.http_responses.last().expect("waiter was answered");
        assert_eq!(*req, RequestId(7));
        assert!(!response.status.is_success(), "504, not a hang");
        assert_eq!(bed.world.metrics().counter(names::AP_DELEGATION_RETRIES), 1);
        assert_eq!(bed.world.metrics().counter(names::AP_DELEGATION_REAPS), 1);
        assert_drained(&bed);
    }

    #[test]
    fn dead_upstream_dns_fails_awaiting_delegations() {
        use ape_simnet::FaultPlan;
        let mut bed = bed(ApConfig::default());
        // Partition the AP from the LDNS before anything resolves, then
        // delegate: the fetch parks in awaiting_dns and must be failed by
        // the forward reaper, not leak forever.
        bed.world.set_fault_plan(FaultPlan::new().link_down(
            bed.ap,
            bed.ldns,
            SimTime::from_nanos(0),
            SimTime::from_secs(1_000),
        ));
        bed.world
            .post(bed.probe, bed.ap, Msg::TcpSyn { conn: ConnId(1) });
        settle(&mut bed.world);
        bed.world.post(
            bed.probe,
            bed.ap,
            Msg::HttpReq {
                conn: ConnId(1),
                req: RequestId(9),
                request: Box::new(HttpRequest::get(url())),
                cache_op: Some(delegation_op()),
            },
        );
        bed.world.run_for(SimDuration::from_secs(8));
        let probe = bed.world.node::<Probe>(bed.probe);
        let (req, response, _) = probe.http_responses.last().expect("waiter was answered");
        assert_eq!(*req, RequestId(9));
        assert!(!response.status.is_success());
        assert!(
            bed.world
                .metrics()
                .counter(names::AP_DELEGATION_DNS_FAILURES)
                >= 1
        );
        assert_drained(&bed);
    }

    #[test]
    fn txn_allocation_skips_live_ids_across_wraparound() {
        let mut ap = ApNode::new(ApConfig::default(), NodeId::from_raw(0), IpMap::new());
        ap.pending_forwards.insert(
            7,
            PendingForward {
                client: NodeId::from_raw(1),
                query: DnsMessage::query(7, DomainName::parse("pinned.example").unwrap()),
                extra_flags: false,
                internal: false,
                span: None,
                at: SimTime::from_nanos(0),
                retried: false,
            },
        );
        // Four trips around the 16-bit id space: the pinned in-flight
        // query must never be clobbered and 0 stays reserved.
        for _ in 0..262_144u32 {
            let txn = ap.alloc_txn();
            assert_ne!(txn, 0, "txn 0 is reserved");
            assert_ne!(txn, 7, "live txn reused after wraparound");
        }
    }
}
