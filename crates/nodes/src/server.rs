//! HTTP servers: the origin and the edge cache server.
//!
//! The origin hosts every object and adds each object's configured
//! `remote_latency` as service time — standing in for servers at varying
//! distances (the paper assigns 20–50 ms per object). The edge cache server
//! sits 7 hops from the AP, has ample capacity (the paper's assumption:
//! "the edge server's cache capacity was ample enough to store all
//! cacheable objects"), and fetches from the origin on first touch.

use std::collections::{BTreeMap, BTreeSet};

use ape_httpsim::{Body, HttpRequest, HttpResponse, Url};
use ape_proto::{names, ConnId, Msg, RequestId, SpanKind};
use ape_simnet::{Context, Node, NodeId, SimDuration, SpanCtx};

/// What the origin knows about one object family (keyed by base id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogEntry {
    /// Object size in bytes.
    pub size: u64,
    /// Extra service latency simulating the object's origin distance.
    pub extra_latency: SimDuration,
}

/// The object catalog shared by origin and edge: base-URL → entry.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers an object family by its base URL.
    pub fn add(&mut self, base_id: impl Into<String>, entry: CatalogEntry) -> &mut Self {
        self.entries.insert(base_id.into(), entry);
        self
    }

    /// Looks up the entry serving `url`.
    pub fn entry_for(&self, url: &Url) -> Option<CatalogEntry> {
        self.entries.get(&url.base_id()).copied()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The origin server: serves everything in its catalog, slowly.
#[derive(Debug)]
pub struct OriginNode {
    catalog: Catalog,
    processing: SimDuration,
    served: u64,
}

impl OriginNode {
    /// Creates an origin over `catalog` with base per-request processing.
    pub fn new(catalog: Catalog, processing: SimDuration) -> Self {
        OriginNode {
            catalog,
            processing,
            served: 0,
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Node<Msg> for OriginNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::TcpSyn { conn } => {
                ctx.send_after(self.processing, from, Msg::TcpSynAck { conn });
            }
            Msg::HttpReq {
                conn, req, request, ..
            } => {
                self.served += 1;
                let (response, delay) = match self.catalog.entry_for(&request.url) {
                    Some(entry) => (
                        HttpResponse::ok(Body::synthetic(entry.size)),
                        self.processing + entry.extra_latency,
                    ),
                    None => (HttpResponse::not_found(), self.processing),
                };
                ctx.send_after(
                    delay,
                    from,
                    Msg::HttpRsp {
                        conn,
                        req,
                        response,
                        from_cache: false,
                    },
                );
            }
            _ => {}
        }
    }
}

/// A fetch the edge is waiting on from the origin.
#[derive(Debug)]
struct PendingOriginFetch {
    client: NodeId,
    conn: ConnId,
    req: RequestId,
    url: Url,
    /// Origin-fill span, child of whatever span the request carried.
    span: Option<SpanCtx>,
}

/// The edge cache server.
///
/// Serves cached objects immediately; on a miss, fetches from the origin
/// first (adding the origin round trip and the object's origin latency),
/// then caches the object forever (ample capacity).
#[derive(Debug)]
pub struct EdgeNode {
    origin: NodeId,
    catalog: Catalog,
    cached: BTreeSet<String>,
    pending: BTreeMap<RequestId, PendingOriginFetch>,
    processing: SimDuration,
    next_conn: u64,
    next_req: u64,
    hits: u64,
    misses: u64,
}

impl EdgeNode {
    /// Creates an edge server that fills misses from `origin`.
    pub fn new(origin: NodeId, catalog: Catalog, processing: SimDuration) -> Self {
        EdgeNode {
            origin,
            catalog,
            cached: BTreeSet::new(),
            pending: BTreeMap::new(),
            processing,
            next_conn: 1_000_000,
            next_req: 1_000_000,
            hits: 0,
            misses: 0,
        }
    }

    /// Pre-warms the edge with every catalog object (used when a run should
    /// start from the paper's steady-state assumption).
    pub fn prewarm(&mut self) {
        let keys: Vec<String> = self.catalog.entries.keys().cloned().collect();
        self.cached.extend(keys);
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses that required an origin fetch.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn serve(
        &self,
        ctx: &mut Context<'_, Msg>,
        to: NodeId,
        conn: ConnId,
        req: RequestId,
        url: &Url,
    ) {
        let response = match self.catalog.entry_for(url) {
            Some(entry) => HttpResponse::ok(Body::synthetic(entry.size)),
            None => HttpResponse::not_found(),
        };
        ctx.send_after(
            self.processing,
            to,
            Msg::HttpRsp {
                conn,
                req,
                response,
                from_cache: true,
            },
        );
    }
}

impl Node<Msg> for EdgeNode {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::TcpSyn { conn } => {
                ctx.send_after(self.processing, from, Msg::TcpSynAck { conn });
            }
            Msg::TcpSynAck { .. } => {
                // Connection to origin accepted; our upstream requests are
                // sent eagerly below, so nothing to do.
            }
            Msg::HttpReq {
                conn, req, request, ..
            } => {
                if self.cached.contains(&request.url.base_id())
                    || self.catalog.entry_for(&request.url).is_none()
                {
                    self.hits += 1;
                    self.serve(ctx, from, conn, req, &request.url);
                    return;
                }
                // Miss: fetch from origin, then serve. The upstream TCP
                // handshake is modelled by a SYN the origin answers while
                // the request is already queued behind it.
                self.misses += 1;
                ctx.metrics().incr_id(names::id::EDGE_ORIGIN_FETCHES, 1);
                let span = ctx.span_start(SpanKind::OriginFetch.as_str());
                let up_conn = ConnId(self.next_conn);
                self.next_conn += 1;
                let up_req = RequestId(self.next_req);
                self.next_req += 1;
                self.pending.insert(
                    up_req,
                    PendingOriginFetch {
                        client: from,
                        conn,
                        req,
                        url: request.url.clone(),
                        span,
                    },
                );
                ctx.send_after(self.processing, self.origin, Msg::TcpSyn { conn: up_conn });
                // One RTT after the SYN the handshake is done; issue the
                // request with that extra delay so timing matches a real
                // connect-then-request exchange.
                let handshake = ctx.link_rtt(self.origin).unwrap_or(SimDuration::ZERO);
                ctx.send_after(
                    self.processing + handshake,
                    self.origin,
                    Msg::HttpReq {
                        conn: up_conn,
                        req: up_req,
                        request: Box::new(HttpRequest::get(request.url)),
                        cache_op: None,
                    },
                );
            }
            Msg::HttpRsp { req, response, .. } => {
                // Origin answered one of our fills.
                let Some(pending) = self.pending.remove(&req) else {
                    return;
                };
                if let Some(span) = pending.span {
                    ctx.span_end(span, SpanKind::OriginFetch.as_str());
                }
                if response.status.is_success() {
                    self.cached.insert(pending.url.base_id());
                }
                ctx.send_after(
                    self.processing,
                    pending.client,
                    Msg::HttpRsp {
                        conn: pending.conn,
                        req: pending.req,
                        response,
                        from_cache: false,
                    },
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_simnet::{LinkSpec, SimTime, World};

    /// Minimal TCP client driving one fetch.
    #[derive(Debug)]
    struct FetchProbe {
        target: Option<NodeId>,
        url: Url,
        response: Option<(HttpResponse, bool)>,
        finished_at: Option<SimTime>,
    }

    impl FetchProbe {
        fn new(url: Url) -> Self {
            FetchProbe {
                target: None,
                url,
                response: None,
                finished_at: None,
            }
        }
    }

    impl Node<Msg> for FetchProbe {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(t) = self.target {
                ctx.send(t, Msg::TcpSyn { conn: ConnId(1) });
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::TcpSynAck { conn } => {
                    ctx.send(
                        from,
                        Msg::HttpReq {
                            conn,
                            req: RequestId(9),
                            request: Box::new(HttpRequest::get(self.url.clone())),
                            cache_op: None,
                        },
                    );
                }
                Msg::HttpRsp {
                    response,
                    from_cache,
                    ..
                } => {
                    self.response = Some((response, from_cache));
                    self.finished_at = Some(ctx.now());
                }
                _ => {}
            }
        }
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            "http://app.example/thumb",
            CatalogEntry {
                size: 50_000,
                extra_latency: SimDuration::from_millis(40),
            },
        );
        c
    }

    fn url() -> Url {
        Url::parse("http://app.example/thumb?v=1").unwrap()
    }

    #[test]
    fn origin_serves_catalog_objects_with_latency() {
        let mut w = World::new(1);
        let mut probe = FetchProbe::new(url());
        let origin = w.add_node(
            "origin",
            OriginNode::new(catalog(), SimDuration::from_micros(500)),
        );
        probe.target = Some(origin);
        let probe_id = w.add_node("probe", probe);
        w.connect(
            probe_id,
            origin,
            LinkSpec::from_rtt(10, SimDuration::from_millis(20)),
        );
        w.run_to_idle();
        let p = w.node::<FetchProbe>(probe_id);
        let (rsp, from_cache) = p.response.as_ref().expect("got response");
        assert!(rsp.status.is_success());
        assert_eq!(rsp.body.size(), 50_000);
        assert!(!from_cache);
        // 2 RTTs (40ms) + 40ms origin latency + processing.
        let t = p.finished_at.unwrap().as_millis_f64();
        assert!(t > 80.0, "took {t}ms");
        assert_eq!(w.node::<OriginNode>(origin).served(), 1);
    }

    #[test]
    fn origin_404s_unknown_objects() {
        let mut w = World::new(1);
        let mut probe = FetchProbe::new(Url::parse("http://other.example/x").unwrap());
        let origin = w.add_node(
            "origin",
            OriginNode::new(catalog(), SimDuration::from_micros(500)),
        );
        probe.target = Some(origin);
        let probe_id = w.add_node("probe", probe);
        w.connect(
            probe_id,
            origin,
            LinkSpec::new(1, SimDuration::from_millis(1)),
        );
        w.run_to_idle();
        let (rsp, _) = w.node::<FetchProbe>(probe_id).response.as_ref().unwrap();
        assert!(!rsp.status.is_success());
    }

    fn edge_world(prewarm: bool) -> (World<Msg>, ape_simnet::NodeId, ape_simnet::NodeId) {
        let mut w = World::new(2);
        let origin = w.add_node(
            "origin",
            OriginNode::new(catalog(), SimDuration::from_micros(500)),
        );
        let mut edge = EdgeNode::new(origin, catalog(), SimDuration::from_micros(500));
        if prewarm {
            edge.prewarm();
        }
        let edge_id = w.add_node("edge", edge);
        let mut probe = FetchProbe::new(url());
        probe.target = Some(edge_id);
        let probe_id = w.add_node("probe", probe);
        w.connect(
            probe_id,
            edge_id,
            LinkSpec::from_rtt(7, SimDuration::from_millis(14)),
        );
        w.connect(
            edge_id,
            origin,
            LinkSpec::from_rtt(8, SimDuration::from_millis(24)),
        );
        (w, edge_id, probe_id)
    }

    #[test]
    fn prewarmed_edge_serves_quickly() {
        let (mut w, edge, probe) = edge_world(true);
        w.run_to_idle();
        let p = w.node::<FetchProbe>(probe);
        let (rsp, from_cache) = p.response.as_ref().unwrap();
        assert!(rsp.status.is_success());
        assert!(from_cache);
        // 2 client RTTs ≈ 28ms + transfer + processing; well under 40ms.
        let t = p.finished_at.unwrap().as_millis_f64();
        assert!(t < 40.0, "took {t}ms");
        assert_eq!(w.node::<EdgeNode>(edge).hits(), 1);
        assert_eq!(w.node::<EdgeNode>(edge).misses(), 0);
    }

    #[test]
    fn cold_edge_fills_from_origin_then_caches() {
        let (mut w, edge, probe) = edge_world(false);
        w.run_to_idle();
        let t_first = w
            .node::<FetchProbe>(probe)
            .finished_at
            .unwrap()
            .as_millis_f64();
        // First fetch pays origin RTTs + 40ms origin latency on top.
        assert!(t_first > 100.0, "cold fetch took {t_first}ms");
        assert_eq!(w.node::<EdgeNode>(edge).misses(), 1);

        // Second fetch (fresh probe wired to same edge) is a hit.
        let mut probe2 = FetchProbe::new(url());
        probe2.target = Some(edge);
        let probe2_id = w.add_node("probe2", probe2);
        w.connect(
            probe2_id,
            edge,
            LinkSpec::from_rtt(7, SimDuration::from_millis(14)),
        );
        let start = w.now();
        w.post(probe2_id, edge, Msg::TcpSyn { conn: ConnId(5) });
        w.run_to_idle();
        let p2 = w.node::<FetchProbe>(probe2_id);
        // probe2's on_start didn't run a SYN (target set before add, started
        // world already); the posted SYN drove the handshake instead.
        let warm = (p2.finished_at.unwrap() - start).as_millis_f64();
        assert!(warm < 40.0, "warm fetch took {warm}ms");
        assert_eq!(w.node::<EdgeNode>(edge).hits(), 1);
    }

    #[test]
    fn catalog_lookup_by_base_id() {
        let c = catalog();
        assert!(c.entry_for(&url()).is_some());
        assert!(c
            .entry_for(&Url::parse("http://app.example/thumb?v=9").unwrap())
            .is_some());
        assert!(c
            .entry_for(&Url::parse("http://app.example/other").unwrap())
            .is_none());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
