//! The complete static description of an app.

use ape_cachealg::AppId;

use crate::dag::AppDag;

/// An app: identity, display name, and its request DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    id: AppId,
    name: String,
    dag: AppDag,
    /// Number of distinct user inputs (URL variants) the app is used with;
    /// the paper's real apps draw from the top-10 IMDB titles / product
    /// categories, synthetic apps use a single input.
    variants: u32,
}

impl AppSpec {
    /// Creates a spec.
    pub fn new(id: AppId, name: impl Into<String>, dag: AppDag) -> Self {
        AppSpec {
            id,
            name: name.into(),
            dag,
            variants: 1,
        }
    }

    /// Sets the number of URL variants (distinct user inputs).
    ///
    /// # Panics
    ///
    /// Panics if `variants` is zero.
    pub fn with_variants(mut self, variants: u32) -> Self {
        assert!(variants > 0, "variants must be positive");
        self.variants = variants;
        self
    }

    /// Number of URL variants.
    pub fn variants(&self) -> u32 {
        self.variants
    }

    /// The app's id.
    pub fn id(&self) -> AppId {
        self.id
    }

    /// The app's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The app's request DAG.
    pub fn dag(&self) -> &AppDag {
        &self.dag
    }

    /// Mutable DAG access (e.g. to re-derive priorities).
    pub fn dag_mut(&mut self) -> &mut AppDag {
        &mut self.dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let dag = AppDag::builder().build().unwrap();
        let spec = AppSpec::new(AppId::new(4), "test", dag.clone());
        assert_eq!(spec.id(), AppId::new(4));
        assert_eq!(spec.name(), "test");
        assert_eq!(spec.dag(), &dag);
        assert_eq!(spec.variants(), 1);
        let spec = spec.with_variants(10);
        assert_eq!(spec.variants(), 10);
        let mut spec = spec;
        spec.dag_mut().derive_priorities();
    }
}
