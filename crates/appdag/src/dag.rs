//! Request-dependency DAGs and critical-path analysis.
//!
//! A mobile app's data-fetching logic is a DAG of HTTP requests: an edge
//! `a → b` means `b` can only start after `a` completes (e.g. MovieTrailer
//! needs the movie id before it can fetch the thumbnail). The *critical
//! path* — the longest start-to-finish path by estimated fetch duration —
//! determines app-level latency, and objects on it get high priority
//! (paper §III-A).

use ape_cachealg::Priority;
use ape_httpsim::Url;
use ape_simnet::SimDuration;

/// Index of an object within its [`AppDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjIdx(usize);

impl ObjIdx {
    /// The raw index.
    pub const fn get(self) -> usize {
        self.0
    }
}

/// Static description of one cacheable object an app fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Human-readable name ("thumbnail").
    pub name: String,
    /// The object's URL template (query parameters vary per execution).
    pub url: Url,
    /// Object size in bytes.
    pub size: u64,
    /// Developer TTL.
    pub ttl: SimDuration,
    /// Extra latency the origin adds when serving this object (the paper
    /// simulates 20–50 ms to stand in for servers at varying distances).
    pub remote_latency: SimDuration,
    /// Developer priority; usually derived from the critical path via
    /// [`AppDag::derive_priorities`].
    pub priority: Priority,
}

/// Errors constructing a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// An edge referenced an unknown object index.
    UnknownObject(usize),
    /// The dependency graph contains a cycle.
    Cyclic,
    /// An edge from an object to itself.
    SelfEdge(usize),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnknownObject(i) => write!(f, "edge references unknown object {i}"),
            DagError::Cyclic => write!(f, "dependency graph contains a cycle"),
            DagError::SelfEdge(i) => write!(f, "object {i} depends on itself"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated request-dependency DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct AppDag {
    objects: Vec<ObjectSpec>,
    /// `deps[i]` lists the objects that must complete before `i` starts.
    deps: Vec<Vec<ObjIdx>>,
    /// Topological order (computed at build time).
    topo: Vec<ObjIdx>,
}

/// Incremental builder for [`AppDag`].
#[derive(Debug, Default)]
pub struct AppDagBuilder {
    objects: Vec<ObjectSpec>,
    edges: Vec<(usize, usize)>,
}

impl AppDagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        AppDagBuilder::default()
    }

    /// Adds an object, returning its index.
    pub fn object(&mut self, spec: ObjectSpec) -> ObjIdx {
        self.objects.push(spec);
        ObjIdx(self.objects.len() - 1)
    }

    /// Declares that `after` depends on `before`.
    pub fn dep(&mut self, before: ObjIdx, after: ObjIdx) -> &mut Self {
        self.edges.push((before.0, after.0));
        self
    }

    /// Validates and builds the DAG.
    ///
    /// # Errors
    ///
    /// [`DagError`] for unknown indices, self-edges, or cycles.
    pub fn build(self) -> Result<AppDag, DagError> {
        let n = self.objects.len();
        let mut deps = vec![Vec::new(); n];
        let mut out = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (before, after) in &self.edges {
            if *before >= n {
                return Err(DagError::UnknownObject(*before));
            }
            if *after >= n {
                return Err(DagError::UnknownObject(*after));
            }
            if before == after {
                return Err(DagError::SelfEdge(*before));
            }
            deps[*after].push(ObjIdx(*before));
            out[*before].push(*after);
            indegree[*after] += 1;
        }
        // Kahn's algorithm; deterministic because the ready list is a
        // sorted queue over indices.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(&i) = ready.first() {
            ready.remove(0);
            topo.push(ObjIdx(i));
            for &next in &out[i] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    let pos = ready.binary_search(&next).unwrap_or_else(|p| p);
                    ready.insert(pos, next);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cyclic);
        }
        Ok(AppDag {
            objects: self.objects,
            deps,
            topo,
        })
    }
}

impl AppDag {
    /// Starts a builder.
    pub fn builder() -> AppDagBuilder {
        AppDagBuilder::new()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the DAG has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object at `idx`.
    pub fn object(&self, idx: ObjIdx) -> &ObjectSpec {
        &self.objects[idx.0]
    }

    /// Mutable access (used by [`derive_priorities`](Self::derive_priorities)).
    pub fn object_mut(&mut self, idx: ObjIdx) -> &mut ObjectSpec {
        &mut self.objects[idx.0]
    }

    /// All objects with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (ObjIdx, &ObjectSpec)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjIdx(i), o))
    }

    /// Direct dependencies of `idx`.
    pub fn deps(&self, idx: ObjIdx) -> &[ObjIdx] {
        &self.deps[idx.0]
    }

    /// Objects with no dependencies (execution entry points).
    pub fn roots(&self) -> Vec<ObjIdx> {
        (0..self.objects.len())
            .map(ObjIdx)
            .filter(|i| self.deps[i.0].is_empty())
            .collect()
    }

    /// Topological order.
    pub fn topo_order(&self) -> &[ObjIdx] {
        &self.topo
    }

    /// Estimated standalone fetch duration of one object: the origin's
    /// simulated latency plus a size-proportional transfer estimate.
    pub fn estimated_fetch(&self, idx: ObjIdx) -> SimDuration {
        let spec = &self.objects[idx.0];
        // 10 MB/s effective transfer estimate for planning purposes.
        let transfer = SimDuration::from_secs_f64(spec.size as f64 / 10_000_000.0);
        spec.remote_latency + transfer
    }

    /// The critical path: the start-to-finish chain with the largest total
    /// estimated fetch duration. Returns `(path, total)`.
    pub fn critical_path(&self) -> (Vec<ObjIdx>, SimDuration) {
        let n = self.objects.len();
        let mut best: Vec<SimDuration> = vec![SimDuration::ZERO; n];
        let mut parent: Vec<Option<ObjIdx>> = vec![None; n];
        for &idx in &self.topo {
            let own = self.estimated_fetch(idx);
            let (longest_dep, from) = self.deps[idx.0]
                .iter()
                .map(|d| (best[d.0], Some(*d)))
                .max_by_key(|(t, _)| *t)
                .unwrap_or((SimDuration::ZERO, None));
            best[idx.0] = longest_dep + own;
            parent[idx.0] = from;
        }
        let Some(end) = (0..n).map(ObjIdx).max_by_key(|i| best[i.0]) else {
            return (Vec::new(), SimDuration::ZERO);
        };
        let mut path = vec![end];
        while let Some(prev) = parent[path.last().expect("non-empty").0] {
            path.push(prev);
        }
        path.reverse();
        (path, best[end.0])
    }

    /// Assigns [`Priority::HIGH`] to critical-path objects and
    /// [`Priority::LOW`] to the rest, mirroring how the paper's developers
    /// annotate apps (§V-A, Table III).
    pub fn derive_priorities(&mut self) {
        let (path, _) = self.critical_path();
        for i in 0..self.objects.len() {
            self.objects[i].priority = Priority::LOW;
        }
        for idx in path {
            self.objects[idx.0].priority = Priority::HIGH;
        }
    }

    /// Sum of all object sizes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, size: u64, latency_ms: u64) -> ObjectSpec {
        ObjectSpec {
            name: name.to_owned(),
            url: Url::parse(&format!("http://app.example/{name}")).unwrap(),
            size,
            ttl: SimDuration::from_mins(10),
            remote_latency: SimDuration::from_millis(latency_ms),
            priority: Priority::LOW,
        }
    }

    /// getMovieID -> {rating, plot, cast, thumbnail}; thumbnail is heavy.
    fn movie_like() -> AppDag {
        let mut b = AppDag::builder();
        let id = b.object(spec("id", 200, 25));
        let rating = b.object(spec("rating", 2_000, 25));
        let plot = b.object(spec("plot", 4_000, 25));
        let cast = b.object(spec("cast", 3_000, 25));
        let thumb = b.object(spec("thumb", 80_000, 35));
        for o in [rating, plot, cast, thumb] {
            b.dep(id, o);
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let dag = movie_like();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.roots(), vec![ObjIdx(0)]);
        assert_eq!(dag.deps(ObjIdx(4)), &[ObjIdx(0)]);
        assert!(!dag.is_empty());
        assert_eq!(dag.topo_order()[0], ObjIdx(0));
    }

    #[test]
    fn critical_path_picks_heaviest_chain() {
        let dag = movie_like();
        let (path, total) = dag.critical_path();
        let names: Vec<&str> = path.iter().map(|i| dag.object(*i).name.as_str()).collect();
        assert_eq!(names, vec!["id", "thumb"]);
        // id: 25ms + 0.02ms; thumb: 35ms + 8ms.
        assert!((total.as_millis_f64() - 68.02).abs() < 0.1, "total {total}");
    }

    #[test]
    fn derive_priorities_marks_critical_path_high() {
        let mut dag = movie_like();
        dag.derive_priorities();
        assert_eq!(dag.object(ObjIdx(0)).priority, Priority::HIGH); // id
        assert_eq!(dag.object(ObjIdx(4)).priority, Priority::HIGH); // thumb
        for i in 1..4 {
            assert_eq!(dag.object(ObjIdx(i)).priority, Priority::LOW);
        }
    }

    #[test]
    fn critical_path_matches_exhaustive_search() {
        // Diamond with a long middle chain.
        let mut b = AppDag::builder();
        let a = b.object(spec("a", 100, 10));
        let b1 = b.object(spec("b1", 100, 30));
        let b2 = b.object(spec("b2", 100, 30));
        let c = b.object(spec("c", 100, 10));
        b.dep(a, b1);
        b.dep(a, b2);
        b.dep(b1, c);
        b.dep(b2, c);
        let dag = b.build().unwrap();
        let (_, total) = dag.critical_path();

        // Exhaustive: enumerate all root-to-leaf paths.
        fn all_paths(dag: &AppDag, from: ObjIdx, acc: SimDuration, best: &mut SimDuration) {
            let here = acc + dag.estimated_fetch(from);
            let succs: Vec<ObjIdx> = dag
                .iter()
                .filter(|(i, _)| dag.deps(*i).contains(&from))
                .map(|(i, _)| i)
                .collect();
            if succs.is_empty() {
                *best = (*best).max(here);
            }
            for s in succs {
                all_paths(dag, s, here, best);
            }
        }
        let mut best = SimDuration::ZERO;
        for root in dag.roots() {
            all_paths(&dag, root, SimDuration::ZERO, &mut best);
        }
        assert_eq!(total, best);
    }

    #[test]
    fn cycle_detected() {
        let mut b = AppDag::builder();
        let x = b.object(spec("x", 1, 1));
        let y = b.object(spec("y", 1, 1));
        b.dep(x, y);
        b.dep(y, x);
        assert_eq!(b.build().unwrap_err(), DagError::Cyclic);
    }

    #[test]
    fn self_edge_detected() {
        let mut b = AppDag::builder();
        let x = b.object(spec("x", 1, 1));
        b.dep(x, x);
        assert_eq!(b.build().unwrap_err(), DagError::SelfEdge(0));
    }

    #[test]
    fn unknown_object_detected() {
        let mut b = AppDagBuilder::new();
        let x = b.object(spec("x", 1, 1));
        b.edges.push((x.get(), 5));
        assert_eq!(b.build().unwrap_err(), DagError::UnknownObject(5));
    }

    #[test]
    fn empty_dag_is_fine() {
        let dag = AppDag::builder().build().unwrap();
        assert!(dag.is_empty());
        let (path, total) = dag.critical_path();
        assert!(path.is_empty());
        assert_eq!(total, SimDuration::ZERO);
    }

    #[test]
    fn total_bytes_sums() {
        assert_eq!(movie_like().total_bytes(), 89_200);
    }

    #[test]
    fn error_display() {
        assert!(!DagError::Cyclic.to_string().is_empty());
        assert!(!DagError::SelfEdge(1).to_string().is_empty());
        assert!(!DagError::UnknownObject(2).to_string().is_empty());
    }
}
