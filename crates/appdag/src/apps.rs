//! The two real-world apps from the paper's evaluation (§V-A, Fig. 10,
//! Table III): MovieTrailer and VirtualHome.

use ape_cachealg::{AppId, Priority};
use ape_httpsim::Url;
use ape_simnet::SimDuration;

use crate::dag::{AppDag, ObjectSpec};
use crate::spec::AppSpec;

fn object(
    domain: &str,
    name: &str,
    size: u64,
    ttl_min: u64,
    latency_ms: u64,
    priority: Priority,
) -> ObjectSpec {
    ObjectSpec {
        name: name.to_owned(),
        url: Url::parse(&format!("http://{domain}/{name}")).expect("static url is valid"),
        size,
        ttl: SimDuration::from_mins(ttl_min),
        remote_latency: SimDuration::from_millis(latency_ms),
        priority,
    }
}

/// MovieTrailer (Fig. 3): `getMovieID` fans out to four concurrent fetches;
/// the thumbnail dominates, so the critical path is
/// `getMovieID → getThumbnail` and those two objects are high priority
/// (Table III).
pub fn movie_trailer(id: AppId) -> AppSpec {
    let domain = "api.movietrailer.example";
    let mut b = AppDag::builder();
    let movie_id = b.object(object(domain, "movieID", 256, 60, 25, Priority::HIGH));
    let rating = b.object(object(domain, "rating", 2_048, 30, 25, Priority::LOW));
    let plot = b.object(object(domain, "plot", 6_144, 30, 25, Priority::LOW));
    let cast = b.object(object(domain, "cast", 4_096, 30, 25, Priority::LOW));
    let thumbnail = b.object(object(domain, "thumbnail", 92_160, 60, 35, Priority::HIGH));
    for o in [rating, plot, cast, thumbnail] {
        b.dep(movie_id, o);
    }
    let dag = b.build().expect("static DAG is acyclic");
    AppSpec::new(id, "MovieTrailer", dag).with_variants(10)
}

/// VirtualHome (Fig. 10): a product category resolves to AR object ids,
/// which resolve to the AR objects themselves. Table III marks `ARObjects`
/// high priority and `ARObjectsID` low.
pub fn virtual_home(id: AppId) -> AppSpec {
    let domain = "api.virtualhome.example";
    let mut b = AppDag::builder();
    let ids = b.object(object(domain, "ARObjectsID", 512, 60, 22, Priority::LOW));
    let objects = b.object(object(domain, "ARObjects", 204_800, 60, 45, Priority::HIGH));
    b.dep(ids, objects);
    let dag = b.build().expect("static DAG is acyclic");
    AppSpec::new(id, "VirtualHome", dag).with_variants(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movie_trailer_matches_fig3() {
        let app = movie_trailer(AppId::new(1));
        assert_eq!(app.name(), "MovieTrailer");
        assert_eq!(app.dag().len(), 5);
        // One root (movieID), four dependents.
        assert_eq!(app.dag().roots().len(), 1);
        let fanout = app
            .dag()
            .iter()
            .filter(|(i, _)| app.dag().deps(*i).len() == 1)
            .count();
        assert_eq!(fanout, 4);
    }

    #[test]
    fn movie_trailer_critical_path_is_id_then_thumbnail() {
        let app = movie_trailer(AppId::new(1));
        let (path, _) = app.dag().critical_path();
        let names: Vec<&str> = path
            .iter()
            .map(|i| app.dag().object(*i).name.as_str())
            .collect();
        assert_eq!(names, vec!["movieID", "thumbnail"]);
    }

    #[test]
    fn movie_trailer_priorities_match_table3() {
        let app = movie_trailer(AppId::new(1));
        let priority_of = |name: &str| {
            app.dag()
                .iter()
                .find(|(_, o)| o.name == name)
                .map(|(_, o)| o.priority)
                .unwrap()
        };
        assert_eq!(priority_of("movieID"), Priority::HIGH);
        assert_eq!(priority_of("thumbnail"), Priority::HIGH);
        for low in ["rating", "plot", "cast"] {
            assert_eq!(priority_of(low), Priority::LOW, "{low}");
        }
        // Deriving from the critical path reproduces the same annotation.
        let mut dag = app.dag().clone();
        dag.derive_priorities();
        for (idx, obj) in dag.iter() {
            assert_eq!(obj.priority, app.dag().object(idx).priority, "{}", obj.name);
        }
    }

    #[test]
    fn virtual_home_matches_table3() {
        let app = virtual_home(AppId::new(2));
        assert_eq!(app.dag().len(), 2);
        let find = |name: &str| {
            app.dag()
                .iter()
                .find(|(_, o)| o.name == name)
                .map(|(_, o)| o.clone())
                .unwrap()
        };
        assert_eq!(find("ARObjectsID").priority, Priority::LOW);
        assert_eq!(find("ARObjects").priority, Priority::HIGH);
        // Sequential chain.
        assert_eq!(app.dag().roots().len(), 1);
        let (path, _) = app.dag().critical_path();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn apps_use_distinct_domains() {
        let m = movie_trailer(AppId::new(1));
        let v = virtual_home(AppId::new(2));
        let mh = m.dag().object(m.dag().roots()[0]).url.host().clone();
        let vh = v.dag().object(v.dag().roots()[0]).url.host().clone();
        assert_ne!(mh, vh);
    }
}
