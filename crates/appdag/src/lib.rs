//! # ape-appdag — application request DAGs for APE-CACHE
//!
//! Models what the paper calls "app logic": the dependency graph of HTTP
//! requests an app issues per execution, the critical path that determines
//! app-level latency, and the priority annotation derived from it. Includes
//! the two real-world evaluation apps ([`movie_trailer`], [`virtual_home`])
//! and the dummy-app generator used to synthesize the 28 remaining apps of
//! the paper's 30-app suite.
//!
//! ## Example
//!
//! ```
//! use ape_appdag::{movie_trailer, AppId};
//!
//! let app = movie_trailer(AppId::new(1));
//! let (path, _) = app.dag().critical_path();
//! let names: Vec<&str> = path.iter().map(|i| app.dag().object(*i).name.as_str()).collect();
//! assert_eq!(names, ["movieID", "thumbnail"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod dag;
mod generator;
mod spec;

pub use ape_cachealg::AppId;
pub use apps::{movie_trailer, virtual_home};
pub use dag::{AppDag, AppDagBuilder, DagError, ObjIdx, ObjectSpec};
pub use generator::{generate_app, generate_fleet, DummyAppConfig};
pub use spec::AppSpec;
