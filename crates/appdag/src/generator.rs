//! The dummy-app generator (paper §V-A): synthesizes apps "with specific
//! characteristics based on given input parameters" — object count, sizes,
//! TTLs, retrieval latencies, and DAG shape.

use ape_cachealg::{AppId, Priority};
use ape_httpsim::Url;
use ape_simnet::{SimDuration, SimRng};

use crate::dag::{AppDag, ObjectSpec};
use crate::spec::AppSpec;

/// Parameter ranges for synthesized apps, defaulting to the paper's
/// evaluation settings: sizes 1–100 KB, TTL 10–60 minutes, retrieval
/// latency 20–50 ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DummyAppConfig {
    /// Inclusive range of objects per app.
    pub objects: (usize, usize),
    /// Inclusive object-size range in bytes.
    pub size_bytes: (u64, u64),
    /// Inclusive TTL range in minutes.
    pub ttl_minutes: (u64, u64),
    /// Inclusive simulated origin latency range in milliseconds.
    pub latency_ms: (u64, u64),
    /// Inclusive range of sequential stages in the DAG.
    pub stages: (usize, usize),
}

impl Default for DummyAppConfig {
    fn default() -> Self {
        DummyAppConfig {
            objects: (4, 8),
            size_bytes: (1_000, 100_000),
            ttl_minutes: (10, 60),
            latency_ms: (20, 50),
            stages: (2, 3),
        }
    }
}

impl DummyAppConfig {
    /// Returns a copy with a different object-size range (the Table IV /
    /// Fig. 13a sweep parameter).
    pub fn with_size_range(mut self, lo: u64, hi: u64) -> Self {
        self.size_bytes = (lo, hi);
        self
    }

    fn validate(&self) {
        assert!(self.objects.0 >= 1 && self.objects.0 <= self.objects.1);
        assert!(self.size_bytes.0 >= 1 && self.size_bytes.0 <= self.size_bytes.1);
        assert!(self.ttl_minutes.0 >= 1 && self.ttl_minutes.0 <= self.ttl_minutes.1);
        assert!(self.latency_ms.0 <= self.latency_ms.1);
        assert!(self.stages.0 >= 1 && self.stages.0 <= self.stages.1);
    }
}

/// Generates one synthetic app.
///
/// The DAG is staged: a single root object, then `stages − 1` layers whose
/// objects each depend on one object of the previous layer — the common
/// fetch-then-fan-out shape of network-bound mobile apps. Priorities are
/// derived from the critical path, exactly as the paper assigns them
/// ("priority for each object was assigned as 1 or 2 based on the critical
/// path of the app").
///
/// # Panics
///
/// Panics if the config ranges are inverted or zero-sized.
pub fn generate_app(id: AppId, config: &DummyAppConfig, rng: &mut SimRng) -> AppSpec {
    config.validate();
    let domain = format!("app{}.dummy.example", id.get());
    let object_count = rng.uniform_u64(config.objects.0 as u64, config.objects.1 as u64) as usize;
    let stage_count = rng
        .uniform_u64(config.stages.0 as u64, config.stages.1 as u64)
        .min(object_count as u64) as usize;

    let mut b = AppDag::builder();
    let mut previous_stage: Vec<crate::dag::ObjIdx> = Vec::new();
    let mut placed = 0usize;
    for stage in 0..stage_count {
        let remaining_stages = stage_count - stage;
        let remaining_objects = object_count - placed;
        // Keep at least one object for each later stage.
        let max_here = remaining_objects - (remaining_stages - 1);
        let here = if stage == 0 {
            1
        } else if remaining_stages == 1 {
            remaining_objects
        } else {
            rng.uniform_u64(1, max_here.max(1) as u64) as usize
        };
        let mut this_stage = Vec::with_capacity(here);
        for _ in 0..here {
            let spec = ObjectSpec {
                name: format!("obj{placed}"),
                url: Url::parse(&format!("http://{domain}/obj{placed}"))
                    .expect("generated url is valid"),
                size: rng.uniform_u64(config.size_bytes.0, config.size_bytes.1),
                ttl: SimDuration::from_mins(
                    rng.uniform_u64(config.ttl_minutes.0, config.ttl_minutes.1),
                ),
                remote_latency: SimDuration::from_millis(
                    rng.uniform_u64(config.latency_ms.0, config.latency_ms.1),
                ),
                priority: Priority::LOW,
            };
            let idx = b.object(spec);
            if let Some(dep) = rng.choose(&previous_stage) {
                b.dep(*dep, idx);
            }
            this_stage.push(idx);
            placed += 1;
        }
        previous_stage = this_stage;
    }
    let mut dag = b.build().expect("staged construction is acyclic");
    dag.derive_priorities();
    AppSpec::new(id, format!("DummyApp{}", id.get()), dag)
}

/// Generates a fleet of `count` synthetic apps with ids `0..count`.
pub fn generate_fleet(count: usize, config: &DummyAppConfig, rng: &mut SimRng) -> Vec<AppSpec> {
    (0..count)
        .map(|i| generate_app(AppId::new(i as u32), config, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(2024)
    }

    #[test]
    fn generated_app_respects_ranges() {
        let config = DummyAppConfig::default();
        let mut r = rng();
        for i in 0..50 {
            let app = generate_app(AppId::new(i), &config, &mut r);
            let n = app.dag().len();
            assert!((config.objects.0..=config.objects.1).contains(&n), "n={n}");
            for (_, obj) in app.dag().iter() {
                assert!((config.size_bytes.0..=config.size_bytes.1).contains(&obj.size));
                let ttl_min = obj.ttl.as_secs_f64() / 60.0;
                assert!((10.0..=60.0).contains(&ttl_min), "ttl {ttl_min}");
                let lat = obj.remote_latency.as_millis_f64();
                assert!((20.0..=50.0).contains(&lat), "lat {lat}");
            }
        }
    }

    #[test]
    fn generated_app_has_single_root_and_valid_dag() {
        let mut r = rng();
        for i in 0..50 {
            let app = generate_app(AppId::new(i), &DummyAppConfig::default(), &mut r);
            assert_eq!(app.dag().roots().len(), 1, "app {i}");
            // Topological order exists by construction (build succeeded).
            assert_eq!(app.dag().topo_order().len(), app.dag().len());
        }
    }

    #[test]
    fn priorities_follow_critical_path() {
        let mut r = rng();
        let app = generate_app(AppId::new(0), &DummyAppConfig::default(), &mut r);
        let (path, _) = app.dag().critical_path();
        for (idx, obj) in app.dag().iter() {
            let on_path = path.contains(&idx);
            assert_eq!(obj.priority.is_high(), on_path, "{}", obj.name);
        }
        // Both priorities appear whenever the DAG is larger than its path.
        if app.dag().len() > path.len() {
            assert!(app.dag().iter().any(|(_, o)| !o.priority.is_high()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_app(AppId::new(0), &DummyAppConfig::default(), &mut rng());
        let b = generate_app(AppId::new(0), &DummyAppConfig::default(), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_has_unique_domains() {
        let mut r = rng();
        let fleet = generate_fleet(30, &DummyAppConfig::default(), &mut r);
        assert_eq!(fleet.len(), 30);
        let mut domains: Vec<String> = fleet
            .iter()
            .map(|a| a.dag().object(a.dag().roots()[0]).url.host().to_string())
            .collect();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), 30);
    }

    #[test]
    fn size_sweep_configs() {
        let c = DummyAppConfig::default().with_size_range(1_000, 500_000);
        assert_eq!(c.size_bytes, (1_000, 500_000));
        let mut r = rng();
        let app = generate_app(AppId::new(1), &c, &mut r);
        assert!(app.dag().iter().all(|(_, o)| o.size <= 500_000));
    }

    #[test]
    #[should_panic]
    fn inverted_ranges_rejected() {
        let c = DummyAppConfig {
            size_bytes: (10, 5),
            ..Default::default()
        };
        let _ = generate_app(AppId::new(0), &c, &mut rng());
    }
}
