//! Property tests for the app-DAG model: the critical path really is the
//! longest path, generation respects its configuration, priorities follow
//! the path.

use ape_appdag::{generate_app, AppDag, AppId, DummyAppConfig, ObjIdx, ObjectSpec};
use ape_cachealg::Priority;
use ape_httpsim::Url;
use ape_simnet::{SimDuration, SimRng};
use proptest::prelude::*;

/// A random DAG built by only adding edges from lower to higher indices
/// (guaranteed acyclic).
fn arb_dag() -> impl Strategy<Value = AppDag> {
    (2usize..10, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SimRng::seed_from(seed);
        let mut b = AppDag::builder();
        let mut idxs: Vec<ObjIdx> = Vec::new();
        for i in 0..n {
            let idx = b.object(ObjectSpec {
                name: format!("o{i}"),
                url: Url::parse(&format!("http://prop.example/o{i}")).expect("static"),
                size: rng.uniform_u64(1_000, 100_000),
                ttl: SimDuration::from_mins(rng.uniform_u64(10, 60)),
                remote_latency: SimDuration::from_millis(rng.uniform_u64(20, 50)),
                priority: Priority::LOW,
            });
            for &prev in &idxs {
                if rng.chance(0.3) {
                    b.dep(prev, idx);
                }
            }
            idxs.push(idx);
        }
        b.build().expect("forward edges are acyclic")
    })
}

/// Exhaustive longest start-to-finish path by DFS.
fn brute_force_longest(dag: &AppDag) -> SimDuration {
    fn walk(dag: &AppDag, from: ObjIdx, acc: SimDuration, best: &mut SimDuration) {
        let here = acc + dag.estimated_fetch(from);
        let succs: Vec<ObjIdx> = dag
            .iter()
            .filter(|(i, _)| dag.deps(*i).contains(&from))
            .map(|(i, _)| i)
            .collect();
        if succs.is_empty() {
            *best = (*best).max(here);
        }
        for s in succs {
            walk(dag, s, here, best);
        }
    }
    let mut best = SimDuration::ZERO;
    for root in dag.roots() {
        walk(dag, root, SimDuration::ZERO, &mut best);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn critical_path_equals_brute_force(dag in arb_dag()) {
        let (_, total) = dag.critical_path();
        prop_assert_eq!(total, brute_force_longest(&dag));
    }

    #[test]
    fn critical_path_is_a_real_chain(dag in arb_dag()) {
        let (path, _) = dag.critical_path();
        prop_assert!(!path.is_empty());
        // Every consecutive pair is an actual dependency edge.
        for pair in path.windows(2) {
            prop_assert!(
                dag.deps(pair[1]).contains(&pair[0]),
                "{:?} not a dep of {:?}",
                pair[0],
                pair[1]
            );
        }
        // The chain starts at a root.
        prop_assert!(dag.deps(path[0]).is_empty());
    }

    #[test]
    fn derived_priorities_mark_exactly_the_path(dag in arb_dag()) {
        let mut dag = dag;
        dag.derive_priorities();
        let (path, _) = dag.critical_path();
        for (idx, obj) in dag.iter() {
            prop_assert_eq!(obj.priority.is_high(), path.contains(&idx));
        }
    }

    #[test]
    fn topo_order_respects_dependencies(dag in arb_dag()) {
        let order = dag.topo_order();
        let position = |i: ObjIdx| order.iter().position(|&o| o == i).expect("in order");
        for (idx, _) in dag.iter() {
            for &dep in dag.deps(idx) {
                prop_assert!(position(dep) < position(idx));
            }
        }
    }

    #[test]
    fn generator_is_valid_for_random_configs(
        seed in any::<u64>(),
        obj_lo in 1usize..5,
        obj_extra in 0usize..6,
        size_lo in 1_000u64..50_000,
        size_extra in 0u64..200_000,
    ) {
        let config = DummyAppConfig {
            objects: (obj_lo, obj_lo + obj_extra),
            size_bytes: (size_lo, size_lo + size_extra),
            ..DummyAppConfig::default()
        };
        let mut rng = SimRng::seed_from(seed);
        let app = generate_app(AppId::new(0), &config, &mut rng);
        let n = app.dag().len();
        prop_assert!((config.objects.0..=config.objects.1).contains(&n));
        for (_, obj) in app.dag().iter() {
            prop_assert!((config.size_bytes.0..=config.size_bytes.1).contains(&obj.size));
        }
        prop_assert_eq!(app.dag().roots().len(), 1);
        prop_assert_eq!(app.dag().topo_order().len(), n);
    }
}
