//! The event queue driving the discrete-event loop.
//!
//! Scheduling order is the total order on `(at, seq)`: time first, then the
//! tie-break key. Storage is a hierarchical timing wheel
//! ([`crate::wheel::TimerWheel`]); the pre-wheel binary heap lives on in
//! [`crate::reference`] as a differential-testing oracle that this queue
//! can mirror every operation against (see [`EventQueue::enable_oracle`]).

use crate::node::{NodeId, TimerToken};
use crate::reference::ReferenceEventQueue;
use crate::rng::mix64;
use crate::time::SimTime;
use crate::trace::SpanCtx;
use crate::wheel::TimerWheel;

/// What happens when an event fires.
///
/// Every event carries the span context active when it was scheduled, so
/// trace causality survives message hops and timer re-arms. The context is
/// `None` whenever tracing is disabled (the default).
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` (sent by `from`) to node `to`.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
        span: Option<SpanCtx>,
    },
    /// Fire a timer on `node`.
    Timer {
        node: NodeId,
        token: TimerToken,
        span: Option<SpanCtx>,
    },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent<M> {
    pub at: SimTime,
    /// Tie-breaker for simultaneous events. Without perturbation this is the
    /// scheduling sequence number (FIFO among ties) or, in sharded worlds,
    /// the intrinsic identity key (a hash of the event's place in the
    /// schedule); under a perturbation key it is a bijective scramble of
    /// that number, so ties pop in a seeded permutation while
    /// distinct-timestamp ordering is untouched.
    ///
    /// The dispatch loop orders on it implicitly (inside the wheel); the
    /// sharded executor also reads it to stamp trace events with the global
    /// dispatch order.
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// In-memory footprint of one scheduled event carrying an `M`-typed
/// message — what every slot of the timing wheel pays. Message crates pin
/// this with a `const` assertion so an accidentally fattened message enum
/// fails to compile instead of silently halving event-queue cache density.
pub const fn event_footprint<M>() -> usize {
    std::mem::size_of::<ScheduledEvent<M>>()
}

/// Earliest-first queue of scheduled events.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    wheel: TimerWheel<EventKind<M>>,
    next_seq: u64,
    /// Schedule-perturbation key (see [`World::set_tie_perturbation`]
    /// (crate::World::set_tie_perturbation)). `None` means FIFO tie-breaks.
    perturbation: Option<u64>,
    /// Optional mirror of every push/pop against the frozen heap
    /// implementation; a divergence panics at the first wrong pop. Items
    /// are not mirrored — `(at, seq)` alone pins the schedule order.
    oracle: Option<ReferenceEventQueue<()>>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            wheel: TimerWheel::new(),
            next_seq: 0,
            perturbation: None,
            oracle: None,
        }
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Sets (or clears) the tie-break perturbation key for subsequently
    /// pushed events. Because `mix64` is a bijection, scrambled tie-break
    /// keys remain unique, so the schedule stays a total order.
    pub fn set_perturbation(&mut self, key: Option<u64>) {
        self.perturbation = key;
    }

    pub fn perturbation(&self) -> Option<u64> {
        self.perturbation
    }

    /// Mirrors all subsequent pushes and pops against the frozen
    /// [`ReferenceEventQueue`]; every pop asserts both engines agree on
    /// `(at, seq)`. Meant for tests — it doubles queue work.
    pub fn enable_oracle(&mut self) {
        if self.oracle.is_none() {
            assert!(
                self.wheel.is_empty(),
                "enable the queue oracle before any event is scheduled"
            );
            self.oracle = Some(ReferenceEventQueue::new());
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(at, seq, kind);
    }

    /// Pushes an event under an explicit tie-break key instead of the
    /// queue-local FIFO counter. The sharded executor uses this with
    /// intrinsic identity keys (see [`crate::ShardedWorld`]) so
    /// same-timestamp ordering is a property of the schedule itself,
    /// identical at any shard count. Keys must be unique per queue
    /// lifetime; `mix64` being a bijection, perturbation preserves that
    /// uniqueness.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind<M>) {
        let seq = match self.perturbation {
            Some(pert) => mix64(key ^ pert),
            None => key,
        };
        if let Some(oracle) = &mut self.oracle {
            oracle.push(at, seq, ());
        }
        self.wheel.push(at, seq, kind);
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        let popped = self.wheel.pop();
        if let Some(oracle) = &mut self.oracle {
            let expect = oracle.pop().map(|(at, seq, ())| (at, seq));
            assert_eq!(
                popped.as_ref().map(|&(at, seq, _)| (at, seq)),
                expect,
                "timing wheel diverged from the reference heap"
            );
        }
        popped.map(|(at, seq, kind)| ScheduledEvent { at, seq, kind })
    }

    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: u32) -> EventKind<u8> {
        EventKind::Deliver {
            to: NodeId::from_raw(to),
            from: NodeId::from_raw(0),
            msg: 0,
            span: None,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), deliver(1));
        q.push(SimTime::from_millis(1), deliver(2));
        q.push(SimTime::from_millis(3), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn simultaneous_events_keep_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.push(t, deliver(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn perturbed_ties_pop_in_a_seeded_permutation() {
        let run = |key: Option<u64>| {
            let mut q = EventQueue::new();
            q.set_perturbation(key);
            let t = SimTime::from_millis(1);
            for i in 0..10 {
                q.push(t, deliver(i));
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Deliver { to, .. } => to.index() as u64,
                    EventKind::Timer { .. } => unreachable!(),
                })
                .collect::<Vec<u64>>()
        };
        let fifo = run(None);
        assert_eq!(fifo, (0..10).collect::<Vec<u64>>());
        let scrambled = run(Some(0xA5A5));
        assert_eq!(scrambled, run(Some(0xA5A5)), "same key, same permutation");
        assert_ne!(scrambled, fifo, "this key should reorder the ties");
        let mut sorted = scrambled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "scramble must be a permutation");
    }

    #[test]
    fn perturbation_leaves_distinct_timestamps_ordered() {
        let mut q = EventQueue::new();
        q.set_perturbation(Some(7));
        q.push(SimTime::from_millis(5), deliver(1));
        q.push(SimTime::from_millis(1), deliver(2));
        q.push(SimTime::from_millis(3), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(2), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn oracle_mirrors_a_perturbed_schedule() {
        let mut q = EventQueue::new();
        q.enable_oracle();
        q.set_perturbation(Some(0xDEAD_BEEF));
        for i in 0..50u32 {
            q.push(
                SimTime::from_nanos(((i as u64 * 131) % 900) * 1_000),
                deliver(i),
            );
        }
        // Every pop is checked against the heap internally.
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }
}
