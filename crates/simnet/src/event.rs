//! The event queue driving the discrete-event loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{NodeId, TimerToken};
use crate::rng::mix64;
use crate::time::SimTime;
use crate::trace::SpanCtx;

/// What happens when an event fires.
///
/// Every event carries the span context active when it was scheduled, so
/// trace causality survives message hops and timer re-arms. The context is
/// `None` whenever tracing is disabled (the default).
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` (sent by `from`) to node `to`.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
        span: Option<SpanCtx>,
    },
    /// Fire a timer on `node`.
    Timer {
        node: NodeId,
        token: TimerToken,
        span: Option<SpanCtx>,
    },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent<M> {
    pub at: SimTime,
    /// Tie-breaker for simultaneous events. Without perturbation this is the
    /// scheduling sequence number (FIFO among ties); under a perturbation key
    /// it is a bijective scramble of that number, so ties pop in a seeded
    /// permutation while distinct-timestamp ordering is untouched.
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Earliest-first queue of scheduled events.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<ScheduledEvent<M>>,
    next_seq: u64,
    /// Schedule-perturbation key (see [`World::set_tie_perturbation`]
    /// (crate::World::set_tie_perturbation)). `None` means FIFO tie-breaks.
    perturbation: Option<u64>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            perturbation: None,
        }
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Sets (or clears) the tie-break perturbation key for subsequently
    /// pushed events. Because `mix64` is a bijection, scrambled tie-break
    /// keys remain unique, so the schedule stays a total order.
    pub fn set_perturbation(&mut self, key: Option<u64>) {
        self.perturbation = key;
    }

    pub fn perturbation(&self) -> Option<u64> {
        self.perturbation
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let seq = match self.perturbation {
            Some(key) => mix64(seq ^ key),
            None => seq,
        };
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: u32) -> EventKind<u8> {
        EventKind::Deliver {
            to: NodeId::from_raw(to),
            from: NodeId::from_raw(0),
            msg: 0,
            span: None,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), deliver(1));
        q.push(SimTime::from_millis(1), deliver(2));
        q.push(SimTime::from_millis(3), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn simultaneous_events_keep_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.push(t, deliver(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn perturbed_ties_pop_in_a_seeded_permutation() {
        let run = |key: Option<u64>| {
            let mut q = EventQueue::new();
            q.set_perturbation(key);
            let t = SimTime::from_millis(1);
            for i in 0..10 {
                q.push(t, deliver(i));
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Deliver { to, .. } => to.index() as u64,
                    EventKind::Timer { .. } => unreachable!(),
                })
                .collect::<Vec<u64>>()
        };
        let fifo = run(None);
        assert_eq!(fifo, (0..10).collect::<Vec<u64>>());
        let scrambled = run(Some(0xA5A5));
        assert_eq!(scrambled, run(Some(0xA5A5)), "same key, same permutation");
        assert_ne!(scrambled, fifo, "this key should reorder the ties");
        let mut sorted = scrambled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "scramble must be a permutation");
    }

    #[test]
    fn perturbation_leaves_distinct_timestamps_ordered() {
        let mut q = EventQueue::new();
        q.set_perturbation(Some(7));
        q.push(SimTime::from_millis(5), deliver(1));
        q.push(SimTime::from_millis(1), deliver(2));
        q.push(SimTime::from_millis(3), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(2), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }
}
