//! The simulation world: node table, topology, clock and event loop.

use crate::determinism::{perturbation_key, DeterminismReport, Fingerprint, PerturbedRun};
use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::link::{LinkSerializer, LinkSpec, Topology};
use crate::metrics::{keys, Metrics, MetricsConfig};
use crate::node::{Message, Node, NodeId, TimerToken};
use crate::profiler::{ProfCategory, ProfTimer, ProfileReport, Profiler};
use crate::rng::{mix64, SimRng};
use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanCtx, TraceConfig, TraceEvent, TracePhase, TraceSink};

/// Why a call to [`World::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained before the deadline.
    Idle,
    /// The deadline was reached with events still pending.
    Deadline,
    /// The configured event cap was hit (runaway protection).
    EventCap,
}

/// Summary of one `run_*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Number of events processed during this call.
    pub events: u64,
    /// Why the loop stopped.
    pub reason: StopReason,
    /// Clock value when the loop stopped.
    pub now: SimTime,
}

/// A cross-shard event staged in a shard's outbox during an epoch, to be
/// delivered into the destination shard's queue at the next barrier.
pub(crate) struct Outbound<M> {
    pub at: SimTime,
    /// Intrinsic canonical tie-break key (see [`InstantKeys`]).
    pub key: u64,
    pub dst_shard: u32,
    pub kind: EventKind<M>,
}

/// Domain separator folded into message keys (arbitrary odd constant).
const MSG_DOMAIN: u64 = 0xD6E8_FEB8_6659_FD93;
/// Domain separator folded into timer keys (arbitrary odd constant).
const TIMER_DOMAIN: u64 = 0xA24B_AED4_963E_E407;

/// Allocator of **intrinsic canonical tie-break keys** for the sharded
/// executor (one per shard; the plain [`World`] keeps FIFO sequence
/// numbers).
///
/// An event's key is a hash of its *identity in the schedule*, not of the
/// callback that created it: a message is `(send instant, sender,
/// receiver, k)` and a timer is `(arm instant, node, token, k)`, where `k`
/// counts repeats of the same tuple within the instant. Two callbacks tied
/// on one nanosecond therefore mint the *same* keys for the same logical
/// events in either dispatch order — in particular, lazily triggered work
/// (e.g. a window roll run by whichever periodic tick reaches the due
/// instant first) emits identically-keyed messages no matter which tick
/// hosts it. A node dispatches only on its home shard and a shard pops in
/// canonical `(at, key)` order, so the `k` sequence is itself invariant
/// across shard counts, thread counts and tie-break permutations.
///
/// Keys are distinct with overwhelming probability (64-bit birthday bound
/// at simulation event counts); the repeat counter keeps the only
/// systematic collision source (identical tuple, same instant) apart.
#[derive(Debug, Default)]
pub(crate) struct InstantKeys {
    /// Instant the repeat counters refer to; counters reset when the
    /// shard's dispatch time moves on.
    stamp: Option<SimTime>,
    /// `(domain, a, b)` → repeats minted at `stamp`. Never iterated, so
    /// the map's ordering cannot leak into results.
    counts: std::collections::HashMap<(u64, u64, u64), u64>,
}

impl InstantKeys {
    fn next(&mut self, now: SimTime, domain: u64, a: u64, b: u64) -> u64 {
        if self.stamp != Some(now) {
            self.counts.clear();
            self.stamp = Some(now);
        }
        let k = self.counts.entry((domain, a, b)).or_insert(0);
        let key = mix64(mix64(mix64(mix64(domain ^ now.as_nanos()) ^ a) ^ b) ^ *k);
        *k += 1;
        key
    }

    /// Key of a message sent `from → to` at `now`.
    fn next_msg(&mut self, now: SimTime, from: NodeId, to: NodeId) -> u64 {
        self.next(now, MSG_DOMAIN, from.as_raw() as u64, to.as_raw() as u64)
    }

    /// Key of a timer armed on `node` at `now` carrying `token`.
    fn next_timer(&mut self, now: SimTime, node: NodeId, token: TimerToken) -> u64 {
        self.next(now, TIMER_DOMAIN, node.as_raw() as u64, token.get())
    }
}

/// Sharded-execution routing state threaded into a [`Context`] by the
/// sharded executor ([`crate::ShardedWorld`]). `None` in a plain
/// [`World`], whose scheduling path is byte-for-byte the pre-shard one.
pub(crate) struct RouteRef<'a, M> {
    /// Shard that owns the executing node.
    pub self_shard: u32,
    /// Global node raw index → owning shard.
    pub home: &'a [u32],
    /// World seed; sharded sends fold it into their key-derived one-shot
    /// randomness streams.
    pub seed: u64,
    /// The owning shard's intrinsic key allocator (see [`InstantKeys`]).
    pub keys: &'a mut InstantKeys,
    /// Staging area for cross-shard sends (drained at the epoch barrier).
    pub outbox: &'a mut Vec<Outbound<M>>,
}

/// The execution environment handed to node callbacks.
///
/// Nodes use the context to read the clock, send messages over topology
/// links, arm timers on themselves, draw randomness and record metrics.
pub struct Context<'a, M: Message> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) topology: &'a Topology,
    pub(crate) faults: &'a FaultPlan,
    pub(crate) links: &'a mut LinkSerializer,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) trace: &'a mut TraceSink,
    pub(crate) prof: &'a mut Profiler,
    /// Span context of the event being dispatched; attached to every
    /// message/timer this callback schedules so causality propagates.
    pub(crate) span: Option<SpanCtx>,
    /// Sharded routing (see [`RouteRef`]); `None` in a plain world.
    pub(crate) route: Option<RouteRef<'a, M>>,
}

impl<M: Message> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .field("span", &self.span)
            .finish_non_exhaustive()
    }
}

impl<'a, M: Message> Context<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node whose callback is running.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` over the registered link, applying propagation
    /// delay, transfer time, jitter and loss.
    ///
    /// # Panics
    ///
    /// Panics if no link connects this node to `to`; topology is static, so
    /// that is a wiring bug in the experiment builder.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Like [`send`](Self::send) but the message leaves this node only after
    /// `local_delay` (modelling local processing before transmission).
    ///
    /// # Panics
    ///
    /// Panics if no link connects this node to `to`.
    pub fn send_after(&mut self, local_delay: SimDuration, to: NodeId, msg: M) {
        // Profiler attribution: link lookup, fault/loss/delay resolution
        // and the queue push charge to `link+fault.resolve`; the metric
        // increments account for themselves (`metrics.record`), so each
        // timer stops before recording.
        let t = self.prof.start();
        let link = self
            .topology
            .link(self.self_id, to)
            .unwrap_or_else(|| panic!("no link {} -> {}", self.self_id, to));
        // A sharded send draws its loss and jitter from a one-shot stream
        // seeded by its intrinsic canonical key (see [`InstantKeys`]): the
        // draw is a pure function of the message's identity — (instant,
        // sender, receiver, repeat) — so two callbacks tied on one
        // nanosecond cannot couple through a shared stream in either
        // dispatch order. A dropped send still consumes its key — loss
        // must not shift the repeat counter for later same-pair sends.
        // Plain worlds keep the global stream (byte-for-byte the
        // pre-shard path).
        let (now, self_id) = (self.now, self.self_id);
        let mut keyed: Option<(u64, SimRng)> = self.route.as_mut().map(|route| {
            let key = route.keys.next_msg(now, self_id, to);
            (key, SimRng::seed_from(mix64(route.seed ^ key)))
        });
        let rng: &mut SimRng = match keyed.as_mut() {
            Some((_, rng)) => rng,
            None => &mut *self.rng,
        };
        // Fault windows are evaluated at send time. The empty-plan path
        // draws no randomness and records no metrics, so a world without a
        // FaultPlan is bit-identical to one predating fault injection.
        let mut fault_delay = SimDuration::ZERO;
        if !self.faults.is_empty() {
            let effect = self.faults.effect(self.self_id, to, self.now);
            if effect.down {
                self.prof.record(ProfCategory::LinkFault, t);
                self.metrics.incr_id(keys::id::NET_FAULT_DROPPED, 1);
                return;
            }
            if effect.loss > 0.0 && rng.chance(effect.loss) {
                self.prof.record(ProfCategory::LinkFault, t);
                self.metrics.incr_id(keys::id::NET_FAULT_DROPPED, 1);
                return;
            }
            fault_delay = effect.extra_delay;
        }
        if link.sample_loss(rng) {
            self.prof.record(ProfCategory::LinkFault, t);
            self.metrics.incr_id(keys::id::NET_DROPPED, 1);
            return;
        }
        let wire = msg.wire_size();
        let owd = link.sample_owd(wire, rng);
        // The link delivers serially: an arrival that lands on an occupied
        // nanosecond is bumped to the next free one, so same-pair messages
        // never tie at the receiver (see [`LinkSerializer`]).
        let at = self.links.reserve(
            self.self_id,
            to,
            self.now,
            self.now + local_delay + owd + fault_delay,
        );
        let kind = EventKind::Deliver {
            to,
            from: self.self_id,
            msg,
            span: self.span,
        };
        match &mut self.route {
            None => self.queue.push(at, kind),
            Some(route) => {
                // Sharded: the intrinsic tie-break key is a property of
                // the message's identity, not of queue insertion order, so
                // simultaneous events pop identically at any shard count.
                // Cross-shard events stage in the outbox and enter the
                // destination queue at the epoch barrier.
                let key = keyed.map(|(key, _)| key).expect("sharded send has a key");
                if route.home[to.index()] == route.self_shard {
                    self.queue.push_keyed(at, key, kind);
                } else {
                    route.outbox.push(Outbound {
                        at,
                        key,
                        dst_shard: route.home[to.index()],
                        kind,
                    });
                }
            }
        }
        self.prof.record(ProfCategory::LinkFault, t);
        // Counter order relative to the push is digest-invisible (counters
        // add, the digest walks names sorted); keeping the increments last
        // keeps them out of the link+fault timing above.
        self.metrics.incr_id(keys::id::NET_MESSAGES, 1);
        self.metrics.incr_id(keys::id::NET_BYTES, wire as u64);
    }

    /// Whether a link to `to` exists.
    pub fn has_link(&self, to: NodeId) -> bool {
        self.topology.link(self.self_id, to).is_some()
    }

    /// Nominal RTT of the link to `to`, if one exists.
    pub fn link_rtt(&self, to: NodeId) -> Option<SimDuration> {
        self.topology
            .link(self.self_id, to)
            .map(LinkSpec::nominal_rtt)
    }

    /// Arms a timer on this node that fires after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, token: TimerToken) {
        let kind = EventKind::Timer {
            node: self.self_id,
            token,
            span: self.span,
        };
        match &mut self.route {
            None => self.queue.push(self.now + delay, kind),
            Some(route) => {
                // Timers are always shard-local (a node arms only itself).
                let key = route.keys.next_timer(self.now, self.self_id, token);
                self.queue.push_keyed(self.now + delay, key, kind);
            }
        }
    }

    /// Deterministic randomness shared by the run.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The run's metric registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    // --- Profiling -------------------------------------------------------

    /// Starts a self-profiler measurement (`None`, for free, when the
    /// profiler is off). Node crates use this to attribute their own
    /// subsystem time — e.g. the AP charges [`ProfCategory::Evict`] around
    /// cache admission — without naming any wall-clock type.
    #[inline]
    pub fn prof_start(&self) -> Option<ProfTimer> {
        self.prof.start()
    }

    /// Stops a measurement from [`prof_start`](Self::prof_start), charging
    /// the elapsed host time to `category`. A `None` timer is a no-op.
    #[inline]
    pub fn prof_end(&mut self, category: ProfCategory, timer: Option<ProfTimer>) {
        self.prof.record(category, timer);
    }

    // --- Tracing ---------------------------------------------------------

    /// Whether the world's trace sink is recording.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// The span context of the event being dispatched (propagated from the
    /// sender/scheduler), if any.
    pub fn span_ctx(&self) -> Option<SpanCtx> {
        self.span
    }

    /// Overrides the active span context for the rest of this callback.
    /// Messages and timers scheduled afterwards carry the new context.
    /// Nodes multiplexing several logical requests in one callback (e.g.
    /// answering all waiters of a coalesced fetch) use this to attribute
    /// each send to the right trace.
    pub fn set_span_ctx(&mut self, span: Option<SpanCtx>) {
        self.span = span;
    }

    /// Starts a new trace rooted at a span of the given kind, makes it the
    /// active context, and returns it.
    ///
    /// Returns `None` — and clears the active context, so the new logical
    /// operation never inherits its trigger's trace — when tracing is
    /// disabled or this trace was sampled out.
    pub fn begin_trace(&mut self, kind: &'static str) -> Option<SpanCtx> {
        self.span = None;
        let t = self.prof.start();
        let Some(trace) = self.trace.try_begin_trace(self.self_id) else {
            self.prof.record(ProfCategory::Trace, t);
            return None;
        };
        let span = self.trace.next_span_id(self.self_id);
        let ctx = SpanCtx { trace, span };
        self.trace.push(TraceEvent {
            at: self.now,
            trace,
            span,
            parent: None,
            node: self.self_id,
            kind,
            phase: TracePhase::Start,
        });
        self.span = Some(ctx);
        self.prof.record(ProfCategory::Trace, t);
        Some(ctx)
    }

    /// Opens a child span of the active context and returns its context
    /// (for a later [`span_end`](Self::span_end)). The active context is
    /// left unchanged. Returns `None` when there is no active traced
    /// context.
    pub fn span_start(&mut self, kind: &'static str) -> Option<SpanCtx> {
        let parent = self.span?;
        if !self.trace.is_enabled() {
            return None;
        }
        let t = self.prof.start();
        let span = self.trace.next_span_id(self.self_id);
        self.trace.push(TraceEvent {
            at: self.now,
            trace: parent.trace,
            span,
            parent: Some(parent.span),
            node: self.self_id,
            kind,
            phase: TracePhase::Start,
        });
        self.prof.record(ProfCategory::Trace, t);
        Some(SpanCtx {
            trace: parent.trace,
            span,
        })
    }

    /// Closes a span previously opened with [`begin_trace`](Self::begin_trace)
    /// or [`span_start`](Self::span_start).
    pub fn span_end(&mut self, ctx: SpanCtx, kind: &'static str) {
        if !self.trace.is_enabled() {
            return;
        }
        let t = self.prof.start();
        self.trace.push(TraceEvent {
            at: self.now,
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            node: self.self_id,
            kind,
            phase: TracePhase::End,
        });
        self.prof.record(ProfCategory::Trace, t);
    }

    /// Closes a span at an explicit timestamp instead of the current clock.
    ///
    /// For work the node accounts for synchronously but whose simulated
    /// duration extends past the dispatch instant (e.g. the AP charges
    /// `eviction_processing` during admission and delays the response by
    /// it), so the span covers the modeled interval `[start, at]`.
    pub fn span_end_at(&mut self, ctx: SpanCtx, kind: &'static str, at: SimTime) {
        if !self.trace.is_enabled() {
            return;
        }
        let t = self.prof.start();
        self.trace.push(TraceEvent {
            at,
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            node: self.self_id,
            kind,
            phase: TracePhase::End,
        });
        self.prof.record(ProfCategory::Trace, t);
    }

    /// Records a point-in-time marker inside the active span, if any.
    pub fn span_instant(&mut self, kind: &'static str) {
        let Some(ctx) = self.span else { return };
        if !self.trace.is_enabled() {
            return;
        }
        let t = self.prof.start();
        self.trace.push(TraceEvent {
            at: self.now,
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            node: self.self_id,
            kind,
            phase: TracePhase::Instant,
        });
        self.prof.record(ProfCategory::Trace, t);
    }
}

/// A complete simulated deployment: nodes, links, clock and metrics.
///
/// # Examples
///
/// ```
/// use ape_simnet::{Context, LinkSpec, Message, Node, NodeId, SimDuration, World};
///
/// #[derive(Debug)]
/// struct Ping(u32);
/// impl Message for Ping {
///     fn wire_size(&self) -> usize { 64 }
/// }
///
/// struct Echo;
/// impl Node<Ping> for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
///         if msg.0 > 0 {
///             ctx.send(from, Ping(msg.0 - 1));
///         }
///     }
/// }
///
/// let mut world = World::new(42);
/// let a = world.add_node("a", Echo);
/// let b = world.add_node("b", Echo);
/// world.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
/// world.post(a, b, Ping(3));
/// let report = world.run_to_idle();
/// assert_eq!(report.events, 4);
/// ```
pub struct World<M: Message> {
    clock: SimTime,
    queue: EventQueue<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    names: Vec<String>,
    topology: Topology,
    faults: FaultPlan,
    links: LinkSerializer,
    rng: SimRng,
    metrics: Metrics,
    trace: TraceSink,
    prof: Profiler,
    started: bool,
    event_cap: u64,
    /// Events processed across all `run_*` calls (for fingerprints).
    processed: u64,
}

impl<M: Message> World<M> {
    /// Creates an empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        World {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            names: Vec::new(),
            topology: Topology::new(),
            faults: FaultPlan::new(),
            links: LinkSerializer::default(),
            rng: SimRng::seed_from(seed),
            metrics: Metrics::new(),
            trace: TraceSink::default(),
            prof: Profiler::new(),
            started: false,
            event_cap: u64::MAX,
            processed: 0,
        }
    }

    /// Replaces FIFO tie-breaking for same-timestamp events with a seeded
    /// bijective permutation. Events at distinct timestamps are unaffected.
    ///
    /// This is the schedule-perturbation race detector's knob (normally
    /// driven via [`check_determinism`](Self::check_determinism)): a world
    /// whose results change under a perturbed tie-break order has an
    /// event-ordering race.
    ///
    /// # Panics
    ///
    /// Panics if the world has already started or has pending events —
    /// perturbation must cover the whole schedule to be meaningful.
    pub fn set_tie_perturbation(&mut self, key: u64) {
        assert!(
            !self.started && self.queue.is_empty(),
            "set_tie_perturbation must be called before any event is scheduled"
        );
        self.queue.set_perturbation(Some(key));
    }

    /// The active tie-break perturbation key, if any.
    pub fn tie_perturbation(&self) -> Option<u64> {
        self.queue.perturbation()
    }

    /// Mirrors every event-queue operation of this run against the frozen
    /// pre-wheel heap ([`crate::reference::ReferenceEventQueue`]); the
    /// first pop where the timing wheel disagrees with the heap panics
    /// with both `(at, seq)` pairs. A differential-testing knob — it
    /// roughly doubles scheduler work, so leave it off outside tests.
    ///
    /// # Panics
    ///
    /// Panics if events have already been scheduled — the oracle must see
    /// the whole schedule to mirror it.
    pub fn enable_queue_oracle(&mut self) {
        assert!(
            !self.started && self.queue.is_empty(),
            "enable_queue_oracle must be called before any event is scheduled"
        );
        self.queue.enable_oracle();
    }

    /// Digest of everything the determinism contract covers: metric
    /// content, trace log, final clock and events processed.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            clock_ns: self.clock.as_nanos(),
            events: self.processed,
            metrics: self.metrics.digest(),
            trace: self.trace.digest(),
        }
    }

    /// Runs `scenario` once with FIFO tie-breaking and `perturbations`
    /// more times under distinct seeded tie-break permutations, comparing
    /// run [`Fingerprint`]s.
    ///
    /// `scenario` receives a freshly seeded empty world each time and must
    /// build and run it (add nodes, connect links, call `run_*`). Any
    /// divergence between a perturbed run and the baseline means the
    /// scenario's results depend on the processing order of same-timestamp
    /// events — a hidden ordering race. See the [`determinism`]
    /// (crate::determinism) module docs for the RNG-coupling caveat.
    pub fn check_determinism(
        seed: u64,
        perturbations: u32,
        mut scenario: impl FnMut(&mut World<M>),
    ) -> DeterminismReport {
        let mut run = |key: Option<u64>| {
            let mut world = World::new(seed);
            if let Some(key) = key {
                world.set_tie_perturbation(key);
            }
            scenario(&mut world);
            world.fingerprint()
        };
        let baseline = run(None);
        let runs = (0..perturbations)
            .map(|n| {
                let key = perturbation_key(seed, n);
                PerturbedRun {
                    key,
                    fingerprint: run(Some(key)),
                }
            })
            .collect();
        DeterminismReport { baseline, runs }
    }

    /// Attaches a deterministic fault schedule to the run. Normally called
    /// once, before the run starts; the plan applies to every node-initiated
    /// send from then on ([`post`](Self::post) bypasses faults, like loss).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The active fault schedule (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Configures the trace sink (enable/disable, capacity, sampling).
    /// Normally called once, before the run starts.
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        self.trace.set_config(config);
    }

    /// Configures the metric registry (histogram mode, sketch oracle,
    /// series capacity). Must be called before any metric is recorded.
    ///
    /// # Panics
    ///
    /// Panics if the run has started or any metric has been recorded —
    /// mixing histogram representations mid-run would corrupt digests.
    pub fn set_metrics_config(&mut self, config: MetricsConfig) {
        assert!(
            !self.started,
            "set_metrics_config must be called before the run starts"
        );
        self.metrics.set_config(config);
    }

    /// Turns on the sim-loop self-profiler (see [`crate::Profiler`]): the
    /// event loop, `Context` hot paths and the metric registry start
    /// attributing host wall-clock to subsystems. Simulation outputs are
    /// unaffected — the profiler reads the host clock but never feeds it
    /// back into sim state.
    pub fn enable_profiler(&mut self) {
        self.prof.enable();
        self.metrics.enable_self_profile();
    }

    /// Whether the self-profiler is on.
    pub fn profiler_enabled(&self) -> bool {
        self.prof.is_enabled()
    }

    /// Snapshot of the self-profiler's attribution. Metric-registry
    /// self-time (accumulated inside [`Metrics`]) is folded into the
    /// [`ProfCategory::Metrics`] row here.
    pub fn profile_report(&self) -> ProfileReport {
        let mut report = self.prof.report();
        let (nanos, calls) = self.metrics.self_profile();
        report.nanos[ProfCategory::Metrics as usize] += nanos;
        report.calls[ProfCategory::Metrics as usize] += calls;
        report
    }

    /// Read access to the trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Removes and returns all buffered trace events, oldest first.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Limits the total number of events a run may process. Exceeding the
    /// cap stops the loop with [`StopReason::EventCap`].
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Registers a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, node: impl Node<M> + 'static) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Some(Box::new(node)));
        self.names.push(name.into());
        id
    }

    /// Registers a symmetric link between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either id was not returned by [`add_node`](Self::add_node).
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert!(a.index() < self.nodes.len(), "unknown node {a}");
        assert!(b.index() < self.nodes.len(), "unknown node {b}");
        self.topology.connect(a, b, spec);
    }

    /// Injects a message from `from` to `to` at the current time, as if
    /// `from` had sent it (link delays apply, loss does not — injected
    /// messages always arrive). Useful to seed a run.
    ///
    /// Counts toward `net.messages`/`net.bytes` like any node-sent
    /// message, so traffic accounting is consistent however a message
    /// entered the network.
    ///
    /// # Panics
    ///
    /// Panics if no link connects the two nodes.
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        let link = self
            .topology
            .link(from, to)
            .unwrap_or_else(|| panic!("no link {from} -> {to}"));
        let owd = link.sample_owd(msg.wire_size(), &mut self.rng);
        self.metrics.incr_id(keys::id::NET_MESSAGES, 1);
        self.metrics
            .incr_id(keys::id::NET_BYTES, msg.wire_size() as u64);
        let at = self.links.reserve(from, to, self.clock, self.clock + owd);
        self.queue.push(
            at,
            EventKind::Deliver {
                to,
                from,
                msg,
                span: None,
            },
        );
    }

    /// Arms a timer on `node` that fires after `delay`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: TimerToken) {
        self.queue.push(
            self.clock + delay,
            EventKind::Timer {
                node,
                token,
                span: None,
            },
        );
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The registered name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Read access to the run's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the run's metrics (percentile queries sort lazily).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Downcasts a node to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, the node is mid-dispatch, or the type
    /// does not match.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .as_ref()
            .expect("node is mid-dispatch")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`node`](Self::node).
    ///
    /// # Panics
    ///
    /// Same conditions as [`node`](Self::node).
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.index()]
            .as_mut()
            .expect("node is mid-dispatch")
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            let id = NodeId::from_raw(idx as u32);
            self.with_node(id, None, |node, ctx| node.on_start(ctx));
        }
    }

    fn with_node(
        &mut self,
        id: NodeId,
        span: Option<SpanCtx>,
        f: impl FnOnce(&mut dyn Node<M>, &mut Context<'_, M>),
    ) {
        let t = self.prof.start();
        let mut node = self.nodes[id.index()]
            .take()
            .unwrap_or_else(|| panic!("re-entrant dispatch on {id}"));
        {
            let mut ctx = Context {
                now: self.clock,
                self_id: id,
                queue: &mut self.queue,
                topology: &self.topology,
                links: &mut self.links,
                faults: &self.faults,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                prof: &mut self.prof,
                span,
                route: None,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[id.index()] = Some(node);
        self.prof.record(ProfCategory::Dispatch, t);
    }

    /// Runs until the queue drains or the clock reaches `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        self.start_if_needed();
        let mut events = 0u64;
        loop {
            let Some(next_at) = self.queue.peek_time() else {
                // With a finite deadline, idle time still passes: advance the
                // clock so sampling loops built on `run_for` stay aligned.
                if deadline < SimTime::MAX {
                    self.clock = deadline;
                }
                return RunReport {
                    events,
                    reason: StopReason::Idle,
                    now: self.clock,
                };
            };
            if next_at > deadline {
                self.clock = deadline;
                return RunReport {
                    events,
                    reason: StopReason::Deadline,
                    now: self.clock,
                };
            }
            if events >= self.event_cap {
                return RunReport {
                    events,
                    reason: StopReason::EventCap,
                    now: self.clock,
                };
            }
            let t = self.prof.start();
            let ev = self.queue.pop().expect("peeked event vanished");
            self.prof.record(ProfCategory::QueuePop, t);
            self.clock = ev.at;
            events += 1;
            self.processed += 1;
            match ev.kind {
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    span,
                } => {
                    self.with_node(to, span, |node, ctx| node.on_message(ctx, from, msg));
                }
                EventKind::Timer { node, token, span } => {
                    self.with_node(node, span, |n, ctx| n.on_timer(ctx, token));
                }
            }
        }
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunReport {
        let deadline = self.clock + span;
        self.run_until(deadline)
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl<M: Message> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("clock", &self.clock)
            .field("nodes", &self.names)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, TraceId};

    #[derive(Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Counts received messages; replies until the payload reaches zero.
    struct Counter {
        received: u64,
        timers: u64,
    }

    impl Counter {
        fn new() -> Self {
            Counter {
                received: 0,
                timers: 0,
            }
        }
    }

    impl Node<Num> for Counter {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, msg: Num) {
            self.received += 1;
            ctx.metrics().incr("msgs", 1);
            if msg.0 > 0 {
                ctx.send(from, Num(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Num>, _token: TimerToken) {
            self.timers += 1;
        }
    }

    fn two_node_world() -> (World<Num>, NodeId, NodeId) {
        let mut w = World::new(1);
        let a = w.add_node("a", Counter::new());
        let b = w.add_node("b", Counter::new());
        w.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        (w, a, b)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(3));
        let r = w.run_to_idle();
        assert_eq!(r.reason, StopReason::Idle);
        assert_eq!(r.events, 4);
        assert_eq!(w.node::<Counter>(b).received, 2);
        assert_eq!(w.node::<Counter>(a).received, 2);
        assert_eq!(w.metrics().counter("msgs"), 4);
        // 4 deliveries: 1ms propagation + 80ns transfer (8 B at 100 MB/s) each.
        assert_eq!(w.now(), SimTime::from_nanos(4 * (1_000_000 + 80)));
    }

    #[test]
    fn deadline_stops_midway() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(100));
        let r = w.run_until(SimTime::from_millis(5));
        assert_eq!(r.reason, StopReason::Deadline);
        assert_eq!(w.now(), SimTime::from_millis(5));
        assert!(w.pending_events() > 0);
        // Resume where we left off.
        let r2 = w.run_to_idle();
        assert_eq!(r2.reason, StopReason::Idle);
    }

    #[test]
    fn event_cap_halts_runaway() {
        let (mut w, a, b) = two_node_world();
        w.set_event_cap(10);
        w.post(a, b, Num(1_000_000));
        let r = w.run_to_idle();
        assert_eq!(r.reason, StopReason::EventCap);
        assert_eq!(r.events, 10);
    }

    #[test]
    fn timers_fire_on_the_right_node() {
        let (mut w, a, _b) = two_node_world();
        w.schedule_timer(a, SimDuration::from_millis(2), TimerToken::new(1));
        w.schedule_timer(a, SimDuration::from_millis(4), TimerToken::new(2));
        w.run_to_idle();
        assert_eq!(w.node::<Counter>(a).timers, 2);
        assert_eq!(w.now(), SimTime::from_millis(4));
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        let run = |seed| {
            let mut w = World::new(seed);
            let a = w.add_node("a", Counter::new());
            let b = w.add_node("b", Counter::new());
            w.connect(
                a,
                b,
                LinkSpec::new(3, SimDuration::from_micros(700))
                    .jitter_mean(SimDuration::from_micros(300)),
            );
            w.post(a, b, Num(50));
            w.run_to_idle();
            w.now()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn lossy_link_drops_and_counts() {
        let mut w = World::new(3);
        let a = w.add_node("a", Counter::new());
        let b = w.add_node("b", Counter::new());
        w.connect(
            a,
            b,
            LinkSpec::new(1, SimDuration::from_millis(1)).loss_probability(0.9),
        );
        for _ in 0..100 {
            w.post(a, b, Num(0));
        }
        // post() does not sample loss (it seeds the run); sends from nodes do.
        w.run_to_idle();
        let b_node = w.node::<Counter>(b);
        assert_eq!(b_node.received, 100);
    }

    #[test]
    fn post_counts_traffic_like_node_sends() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(2));
        // The injected message is on the books before the run starts…
        assert_eq!(w.metrics().counter("net.messages"), 1);
        assert_eq!(w.metrics().counter("net.bytes"), 8);
        // …and the two node-sent replies (2 → 1 → 0) accumulate on top,
        // so injected and node-sent traffic share one consistent tally.
        w.run_to_idle();
        assert_eq!(w.metrics().counter("net.messages"), 3);
        assert_eq!(w.metrics().counter("net.bytes"), 24);
    }

    #[test]
    fn node_send_applies_loss() {
        struct Spammer {
            peer: Option<NodeId>,
        }
        impl Node<Num> for Spammer {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                if let Some(peer) = self.peer {
                    for _ in 0..1000 {
                        ctx.send(peer, Num(0));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Num>, _: NodeId, _: Num) {}
        }
        let mut w = World::new(3);
        let b = w.add_node("sink", Counter::new());
        let a = w.add_node("spammer", Spammer { peer: Some(b) });
        w.connect(
            a,
            b,
            LinkSpec::new(1, SimDuration::from_millis(1)).loss_probability(0.5),
        );
        w.run_to_idle();
        let dropped = w.metrics().counter("net.dropped");
        assert!(
            (300..700).contains(&(dropped as usize)),
            "dropped {dropped}"
        );
        assert_eq!(w.node::<Counter>(b).received + dropped, 1000);
    }

    #[test]
    fn fault_link_down_drops_node_sends() {
        use crate::fault::FaultPlan;
        struct Burst {
            peer: Option<NodeId>,
        }
        impl Node<Num> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                if let Some(peer) = self.peer {
                    for _ in 0..10 {
                        ctx.send(peer, Num(0));
                    }
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Num>, _: NodeId, _: Num) {}
        }
        let mut w = World::new(3);
        let b = w.add_node("sink", Counter::new());
        let a = w.add_node("burst", Burst { peer: Some(b) });
        w.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        w.set_fault_plan(FaultPlan::new().link_down(a, b, SimTime::ZERO, SimTime::from_secs(1)));
        w.run_to_idle();
        assert_eq!(w.node::<Counter>(b).received, 0);
        assert_eq!(w.metrics().counter(keys::NET_FAULT_DROPPED), 10);
        assert_eq!(w.metrics().counter(keys::NET_DROPPED), 0);
        assert_eq!(w.metrics().counter(keys::NET_MESSAGES), 0);
    }

    #[test]
    fn fault_delay_spike_postpones_delivery() {
        use crate::fault::FaultPlan;
        struct One {
            peer: Option<NodeId>,
        }
        impl Node<Num> for One {
            fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Num(0));
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Num>, _: NodeId, _: Num) {}
        }
        let mut w = World::new(3);
        let b = w.add_node("sink", Counter::new());
        let a = w.add_node("one", One { peer: Some(b) });
        w.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        w.set_fault_plan(FaultPlan::new().delay_spike(
            a,
            b,
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_millis(5),
        ));
        w.run_to_idle();
        assert_eq!(w.node::<Counter>(b).received, 1);
        // 1 ms propagation + 80 ns transfer (8 B at 100 MB/s) + 5 ms spike.
        assert_eq!(w.now(), SimTime::from_nanos(1_000_000 + 80 + 5_000_000));
    }

    #[test]
    fn empty_fault_plan_is_bitwise_invisible() {
        let fp = |with_plan: bool| {
            let mut w = World::new(7);
            let a = w.add_node("a", Counter::new());
            let b = w.add_node("b", Counter::new());
            w.connect(
                a,
                b,
                LinkSpec::new(1, SimDuration::from_millis(1))
                    .jitter_mean(SimDuration::from_micros(300))
                    .loss_probability(0.2),
            );
            if with_plan {
                w.set_fault_plan(crate::fault::FaultPlan::new());
            }
            w.post(a, b, Num(40));
            w.run_to_idle();
            w.fingerprint()
        };
        assert_eq!(fp(false), fp(true));
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn sending_without_link_panics() {
        let mut w: World<Num> = World::new(1);
        let a = w.add_node("a", Counter::new());
        let b = w.add_node("b", Counter::new());
        w.post(a, b, Num(1));
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn downcast_to_wrong_type_panics() {
        let (w, a, _) = two_node_world();
        struct Other;
        let _ = w.node::<Other>(a);
    }

    #[test]
    fn names_and_counts() {
        let (w, a, b) = two_node_world();
        assert_eq!(w.node_count(), 2);
        assert_eq!(w.node_name(a), "a");
        assert_eq!(w.node_name(b), "b");
        assert!(format!("{w:?}").contains("World"));
    }

    /// Begins a trace on start, expects the reply and a timer to carry it.
    struct Requester {
        peer: Option<NodeId>,
        root: Option<SpanCtx>,
        reply_had_ctx: bool,
        timer_had_ctx: bool,
    }

    impl Node<Num> for Requester {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            self.root = ctx.begin_trace("fetch");
            if let Some(peer) = self.peer {
                ctx.send(peer, Num(1));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: NodeId, _msg: Num) {
            self.reply_had_ctx = ctx.span_ctx() == self.root && self.root.is_some();
            ctx.schedule(SimDuration::from_millis(1), TimerToken::new(7));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Num>, _token: TimerToken) {
            self.timer_had_ctx = ctx.span_ctx() == self.root && self.root.is_some();
            if let Some(root) = self.root {
                ctx.span_end(root, "fetch");
            }
        }
    }

    /// Opens a child span under whatever context arrived, then replies.
    struct Responder;

    impl Node<Num> for Responder {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, _msg: Num) {
            if let Some(child) = ctx.span_start("serve") {
                ctx.span_end(child, "serve");
            }
            ctx.send(from, Num(0));
        }
    }

    fn traced_pair() -> (World<Num>, NodeId) {
        let mut w = World::new(1);
        let b = w.add_node("b", Responder);
        let a = w.add_node(
            "a",
            Requester {
                peer: Some(b),
                root: None,
                reply_had_ctx: false,
                timer_had_ctx: false,
            },
        );
        w.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        (w, a)
    }

    #[test]
    fn spans_propagate_across_hops_and_timers() {
        let (mut w, a) = traced_pair();
        w.set_trace_config(TraceConfig::enabled());
        w.run_to_idle();
        let requester = w.node::<Requester>(a);
        assert!(requester.reply_had_ctx, "reply lost the span context");
        assert!(requester.timer_had_ctx, "timer lost the span context");

        let events: Vec<(&str, TracePhase, Option<SpanId>)> = w
            .trace()
            .events()
            .map(|e| (e.kind, e.phase, e.parent))
            .collect();
        assert_eq!(
            events,
            vec![
                ("fetch", TracePhase::Start, None),
                ("serve", TracePhase::Start, Some(SpanId(0))),
                ("serve", TracePhase::End, None),
                ("fetch", TracePhase::End, None),
            ]
        );
        assert!(w.trace().events().all(|e| e.trace == TraceId(0)));
        assert_eq!(w.trace().dropped(), 0);
    }

    #[test]
    fn tracing_disabled_records_nothing_and_sets_no_context() {
        let (mut w, a) = traced_pair();
        w.run_to_idle();
        let requester = w.node::<Requester>(a);
        assert_eq!(requester.root, None, "begin_trace must return None");
        assert!(!requester.reply_had_ctx);
        assert!(w.trace().is_empty());
        assert_eq!(w.trace().traces_started(), 0);
    }

    #[test]
    fn begin_trace_clears_inherited_context() {
        /// Starts a fresh trace for every message it receives.
        struct PerMessage {
            roots: Vec<Option<SpanCtx>>,
        }
        impl Node<Num> for PerMessage {
            fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: NodeId, _msg: Num) {
                self.roots.push(ctx.begin_trace("op"));
            }
        }
        let mut w = World::new(1);
        let sink = w.add_node("sink", PerMessage { roots: Vec::new() });
        let src = w.add_node(
            "src",
            Requester {
                peer: Some(sink),
                root: None,
                reply_had_ctx: false,
                timer_had_ctx: false,
            },
        );
        w.connect(src, sink, LinkSpec::new(1, SimDuration::from_millis(1)));
        // Sample every 2nd trace: src's root is trace 0, the sink's first
        // op is sampled out but must NOT inherit src's context.
        w.set_trace_config(TraceConfig {
            enabled: true,
            sample_every: 2,
            ..TraceConfig::default()
        });
        w.run_to_idle();
        let roots = &w.node::<PerMessage>(sink).roots;
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0], None, "sampled-out trace must clear the context");
    }

    /// Order-insensitive sink: tallies arrivals, ignores who came first.
    struct Tally;
    impl Node<Num> for Tally {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, _from: NodeId, _msg: Num) {
            ctx.metrics().incr("arrivals", 1);
        }
    }

    /// Order-SENSITIVE sink: records the full arrival order of its peers,
    /// position-weighted so any transposition changes a metric value. This
    /// is the synthetic ordering race the detector must catch.
    struct FirstWins {
        position: u64,
    }
    impl Node<Num> for FirstWins {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, _msg: Num) {
            self.position += 1;
            let weighted = self.position * 100 + from.index() as u64;
            ctx.metrics().observe("arrival.order", weighted as f64);
        }
    }

    /// Star topology: `n` identical zero-jitter links into one sink, one
    /// same-size message posted from each spoke at t=0 — so all arrivals
    /// tie at exactly the same virtual instant.
    fn tied_star(w: &mut World<Num>, sink: NodeId, n: u32) {
        for i in 0..n {
            let src = w.add_node(format!("src{i}"), Tally);
            w.connect(src, sink, LinkSpec::new(1, SimDuration::from_millis(1)));
            w.post(src, sink, Num(0));
        }
    }

    #[test]
    fn check_determinism_passes_on_order_insensitive_scenario() {
        let report = World::check_determinism(11, 4, |w| {
            let sink = w.add_node("sink", Tally);
            tied_star(w, sink, 8);
            w.run_to_idle();
        });
        assert!(report.is_deterministic(), "{report}");
        assert_eq!(report.runs.len(), 4);
    }

    #[test]
    fn check_determinism_flags_ordering_dependent_node() {
        let report = World::check_determinism(11, 4, |w| {
            let sink = w.add_node("sink", FirstWins { position: 0 });
            tied_star(w, sink, 8);
            w.run_to_idle();
        });
        assert!(
            !report.is_deterministic(),
            "an 8-way tie feeding an order-sensitive node must diverge"
        );
        assert!(!report.divergent_keys().is_empty());
        assert!(format!("{report}").contains("ORDERING RACE"));
        // Only the metric content differs: same events, same final clock.
        for run in &report.runs {
            assert_eq!(run.fingerprint.events, report.baseline.events);
            assert_eq!(run.fingerprint.clock_ns, report.baseline.clock_ns);
        }
    }

    #[test]
    fn fingerprint_is_stable_across_identical_runs() {
        let fp = |seed| {
            let mut w = World::new(seed);
            let a = w.add_node("a", Tally);
            let b = w.add_node("b", Tally);
            // Jitter makes the arrival time — hence the fingerprint — a
            // function of the seed, not just the topology.
            w.connect(
                a,
                b,
                LinkSpec::new(1, SimDuration::from_millis(1))
                    .jitter_mean(SimDuration::from_micros(100)),
            );
            w.post(a, b, Num(0));
            w.run_to_idle();
            w.fingerprint()
        };
        assert_eq!(fp(5), fp(5));
        assert_ne!(fp(5), fp(6));
    }

    #[test]
    fn profiler_does_not_change_fingerprints() {
        let fp = |profile: bool| {
            let mut w = World::new(5);
            if profile {
                w.enable_profiler();
            }
            w.set_trace_config(TraceConfig::enabled());
            let a = w.add_node("a", Tally);
            let b = w.add_node("b", Tally);
            w.connect(
                a,
                b,
                LinkSpec::new(1, SimDuration::from_millis(1))
                    .jitter_mean(SimDuration::from_micros(100)),
            );
            w.post(a, b, Num(0));
            w.run_to_idle();
            (w.fingerprint(), w.profile_report())
        };
        let (fp_off, report_off) = fp(false);
        let (fp_on, report_on) = fp(true);
        assert_eq!(fp_off, fp_on, "profiling must not perturb sim state");
        // Off = all-zero attribution; on = the loop charged something.
        assert!(!report_off.enabled);
        assert_eq!(report_off.loop_nanos(), 0);
        assert!(report_on.enabled);
        assert!(report_on.calls(ProfCategory::Dispatch) > 0);
        assert!(report_on.calls(ProfCategory::QueuePop) > 0);
        assert!(report_on.calls(ProfCategory::Metrics) > 0);
    }

    #[test]
    fn metrics_config_flows_into_new_histograms() {
        let mut w: World<Num> = World::new(1);
        w.set_metrics_config(MetricsConfig {
            histogram_mode: crate::metrics::HistogramMode::Sketch,
            ..MetricsConfig::default()
        });
        w.metrics_mut().observe("h", 2.0);
        assert!(w.metrics().histogram("h").unwrap().is_sketch());
    }

    #[test]
    #[should_panic(expected = "before the run starts")]
    fn metrics_config_rejected_after_start() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(0));
        w.run_to_idle();
        w.set_metrics_config(MetricsConfig::default());
    }

    #[test]
    #[should_panic(expected = "before any event")]
    fn tie_perturbation_rejected_after_scheduling() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(0));
        w.set_tie_perturbation(1);
    }

    #[test]
    fn run_for_advances_relative_span() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, Num(0));
        w.run_for(SimDuration::from_millis(10));
        assert_eq!(w.now(), SimTime::from_millis(10));
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(w.now(), SimTime::from_millis(15));
    }
}
