//! Sim-loop self-profiler: attributes *host* wall-clock to simulator
//! subsystems.
//!
//! ROADMAP item 2 targets millions of simulated clients and tens of
//! millions of events per second; to get there one has to know where the
//! host CPU actually goes. When enabled
//! ([`World::enable_profiler`](crate::World::enable_profiler)), the event
//! loop and the [`Context`](crate::Context) hot paths time themselves with
//! a monotonic host clock and charge the elapsed nanoseconds to a fixed
//! [`ProfCategory`]: queue pops, node dispatch, link/fault resolution on
//! sends, trace recording, metric recording, and cache eviction (charged by
//! the AP node via [`Context::prof_start`](crate::Context::prof_start)).
//!
//! Host time never feeds back into simulation state: the profiler writes no
//! metrics, draws no randomness and schedules no events, so an enabled run
//! produces bitwise-identical simulation outputs ([`Fingerprint`]
//! (crate::Fingerprint) included) to a disabled one. When disabled —
//! the default — every hook is a single branch on a `bool`; the
//! `bench_profiler_overhead` guard in `ape-bench` pins "off = free" the
//! same way the PR 2 trace guard pins the trace path.

use std::fmt;
// The whole point of this module is reading the host clock: profiler
// attribution is wall-clock by definition and never reaches sim state.
use std::time::Instant;

/// Subsystems the profiler can charge host time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfCategory {
    /// Popping the next event off the timing wheel (`EventQueue::pop`).
    QueuePop = 0,
    /// Dispatching an event into a node callback (includes everything the
    /// callback does, nested categories included).
    Dispatch = 1,
    /// Link and fault resolution on `Context::send_after`: fault-window
    /// evaluation, loss sampling, one-way-delay sampling and the queue
    /// push.
    LinkFault = 2,
    /// Recording trace events (`begin_trace`/`span_*` pushes).
    Trace = 3,
    /// Recording metrics (`incr`/`observe`/`record_point`, id or string).
    Metrics = 4,
    /// Cache eviction/admission work, charged by the AP node around its
    /// cache-store calls.
    Evict = 5,
    /// Sharded execution: epoch-barrier coordination — computing the next
    /// horizon and (in threaded runs) waiting for sibling shards. Charged
    /// by [`ShardedWorld`](crate::ShardedWorld) only; a plain `World`
    /// never records it.
    ShardBarrier = 6,
    /// Sharded execution: routing cross-shard mailbox envelopes into the
    /// destination shard's event queue at an epoch barrier.
    MailboxDrain = 7,
}

/// Number of [`ProfCategory`] variants (array sizing).
pub const PROF_CATEGORIES: usize = 8;

impl ProfCategory {
    /// All categories, in report order.
    pub const ALL: [ProfCategory; PROF_CATEGORIES] = [
        ProfCategory::Dispatch,
        ProfCategory::QueuePop,
        ProfCategory::LinkFault,
        ProfCategory::Trace,
        ProfCategory::Metrics,
        ProfCategory::Evict,
        ProfCategory::ShardBarrier,
        ProfCategory::MailboxDrain,
    ];

    /// Human-readable label used in the `repro profile` table.
    pub fn label(self) -> &'static str {
        match self {
            ProfCategory::QueuePop => "queue.pop",
            ProfCategory::Dispatch => "event.dispatch",
            ProfCategory::LinkFault => "link+fault.resolve",
            ProfCategory::Trace => "trace.record",
            ProfCategory::Metrics => "metrics.record",
            ProfCategory::Evict => "cache.evict",
            ProfCategory::ShardBarrier => "shard.barrier",
            ProfCategory::MailboxDrain => "mailbox.drain",
        }
    }

    /// Whether this category's time is nested inside
    /// [`Dispatch`](ProfCategory::Dispatch) (charged while a node callback
    /// is on the stack), so reports can compute the callback's own time by
    /// subtraction.
    pub fn nested_in_dispatch(self) -> bool {
        matches!(
            self,
            ProfCategory::LinkFault
                | ProfCategory::Trace
                | ProfCategory::Metrics
                | ProfCategory::Evict
        )
    }
}

/// An opaque in-flight profiler measurement (a host-clock timestamp).
///
/// Returned by [`Profiler::start`] /
/// [`Context::prof_start`](crate::Context::prof_start) so node crates can
/// time sections without naming any wall-clock type themselves.
#[derive(Debug, Clone, Copy)]
pub struct ProfTimer(Instant);

/// Accumulated per-category host time and call counts.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    nanos: [u64; PROF_CATEGORIES],
    calls: [u64; PROF_CATEGORIES],
}

impl Profiler {
    /// Creates a disabled profiler (all hooks are a single branch).
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Turns profiling on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether profiling is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a measurement; `None` (for free) when disabled.
    #[inline]
    pub fn start(&self) -> Option<ProfTimer> {
        if self.enabled {
            // ape-lint: allow(wall-clock) -- self-profiler measures host-CPU time per engine category; readings are diagnostic output only, never simulated state
            Some(ProfTimer(Instant::now()))
        } else {
            None
        }
    }

    /// Stops a measurement started with [`start`](Self::start), charging
    /// the elapsed host time to `category`. A `None` timer is a no-op.
    #[inline]
    pub fn record(&mut self, category: ProfCategory, timer: Option<ProfTimer>) {
        if let Some(ProfTimer(t)) = timer {
            self.nanos[category as usize] +=
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.calls[category as usize] += 1;
        }
    }

    /// Charges pre-measured time to a category (used by [`Metrics`]
    /// (crate::Metrics), which accumulates its own self-time).
    pub fn charge(&mut self, category: ProfCategory, nanos: u64, calls: u64) {
        self.nanos[category as usize] += nanos;
        self.calls[category as usize] += calls;
    }

    /// Total nanoseconds charged to `category`.
    pub fn nanos(&self, category: ProfCategory) -> u64 {
        self.nanos[category as usize]
    }

    /// Number of measurements charged to `category`.
    pub fn calls(&self, category: ProfCategory) -> u64 {
        self.calls[category as usize]
    }

    /// Snapshot of the accumulated attribution.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            enabled: self.enabled,
            nanos: self.nanos,
            calls: self.calls,
        }
    }
}

/// A rendered-ready snapshot of profiler state (see [`Profiler::report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Whether the profiler was enabled (a disabled report is all zeros).
    pub enabled: bool,
    /// Per-category nanoseconds, indexed by `ProfCategory as usize`.
    pub nanos: [u64; PROF_CATEGORIES],
    /// Per-category call counts, indexed by `ProfCategory as usize`.
    pub calls: [u64; PROF_CATEGORIES],
}

impl ProfileReport {
    /// Total nanoseconds charged to `category`.
    pub fn nanos(&self, category: ProfCategory) -> u64 {
        self.nanos[category as usize]
    }

    /// Number of measurements charged to `category`.
    pub fn calls(&self, category: ProfCategory) -> u64 {
        self.calls[category as usize]
    }

    /// Host time measured at the event-loop level: dispatch plus queue
    /// pops. Nested categories are *inside* dispatch and not added again.
    /// Shard coordination ([`ProfCategory::ShardBarrier`] /
    /// [`ProfCategory::MailboxDrain`]) happens *between* loop slices and is
    /// reported separately (see [`coordination_nanos`]
    /// (Self::coordination_nanos)).
    pub fn loop_nanos(&self) -> u64 {
        self.nanos(ProfCategory::Dispatch) + self.nanos(ProfCategory::QueuePop)
    }

    /// Host time spent coordinating shards: epoch barriers plus mailbox
    /// routing. Zero for a plain (unsharded) `World`.
    pub fn coordination_nanos(&self) -> u64 {
        self.nanos(ProfCategory::ShardBarrier) + self.nanos(ProfCategory::MailboxDrain)
    }

    /// Fraction of the measured host time spent waiting at epoch barriers:
    /// `shard.barrier / (loop + barrier + mailbox.drain)`. The headline
    /// number `repro bench-shard` reports; `0.0` when nothing was measured.
    pub fn barrier_wait_fraction(&self) -> f64 {
        let total = self.loop_nanos() + self.coordination_nanos();
        if total == 0 {
            return 0.0;
        }
        self.nanos(ProfCategory::ShardBarrier) as f64 / total as f64
    }

    /// Dispatch time not accounted to any nested category — the node
    /// callbacks' own logic. Saturates at zero (nested sections each pay
    /// their own clock-read overhead, so their sum can slightly exceed the
    /// enclosing measurement on tiny workloads).
    pub fn dispatch_self_nanos(&self) -> u64 {
        let nested: u64 = ProfCategory::ALL
            .iter()
            .filter(|c| c.nested_in_dispatch())
            .map(|&c| self.nanos(c))
            .sum();
        self.nanos(ProfCategory::Dispatch).saturating_sub(nested)
    }

    /// Merges another report's counts into this one (e.g. across trials).
    pub fn merge(&mut self, other: &ProfileReport) {
        self.enabled |= other.enabled;
        for i in 0..PROF_CATEGORIES {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled {
            return writeln!(f, "profiler disabled (zero-cost); no attribution recorded");
        }
        let total = self.loop_nanos().max(1);
        writeln!(
            f,
            "{:<22} {:>12} {:>14} {:>10} {:>7}",
            "subsystem", "calls", "total_ms", "ns/call", "share"
        )?;
        for cat in ProfCategory::ALL {
            let ns = self.nanos(cat);
            let calls = self.calls(cat);
            let per = ns.checked_div(calls).unwrap_or(0);
            let indent = if cat.nested_in_dispatch() { "  " } else { "" };
            writeln!(
                f,
                "{:<22} {:>12} {:>14.3} {:>10} {:>6.1}%",
                format!("{indent}{}", cat.label()),
                calls,
                ns as f64 / 1e6,
                per,
                100.0 * ns as f64 / total as f64,
            )?;
        }
        writeln!(
            f,
            "{:<22} {:>12} {:>14.3} {:>10} {:>6.1}%",
            "  node logic (rest)",
            "",
            self.dispatch_self_nanos() as f64 / 1e6,
            "",
            100.0 * self.dispatch_self_nanos() as f64 / total as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut p = Profiler::new();
        assert!(!p.is_enabled());
        let t = p.start();
        assert!(t.is_none());
        p.record(ProfCategory::Dispatch, t);
        assert_eq!(p.nanos(ProfCategory::Dispatch), 0);
        assert_eq!(p.calls(ProfCategory::Dispatch), 0);
        let report = p.report();
        assert!(!report.enabled);
        assert!(format!("{report}").contains("disabled"));
    }

    #[test]
    fn enabled_profiler_charges_categories() {
        let mut p = Profiler::new();
        p.enable();
        let t = p.start();
        assert!(t.is_some());
        p.record(ProfCategory::QueuePop, t);
        p.charge(ProfCategory::Metrics, 1000, 10);
        assert_eq!(p.calls(ProfCategory::QueuePop), 1);
        assert_eq!(p.nanos(ProfCategory::Metrics), 1000);
        assert_eq!(p.calls(ProfCategory::Metrics), 10);
        let report = p.report();
        assert!(report.enabled);
        assert!(report.loop_nanos() >= report.nanos(ProfCategory::QueuePop));
        let text = format!("{report}");
        assert!(text.contains("queue.pop"));
        assert!(text.contains("metrics.record"));
    }

    #[test]
    fn dispatch_self_subtracts_nested() {
        let mut p = Profiler::new();
        p.enable();
        p.charge(ProfCategory::Dispatch, 10_000, 5);
        p.charge(ProfCategory::Trace, 2_000, 5);
        p.charge(ProfCategory::Evict, 3_000, 2);
        assert_eq!(p.report().dispatch_self_nanos(), 5_000);
        // Nested overshoot saturates instead of wrapping.
        p.charge(ProfCategory::Metrics, 50_000, 1);
        assert_eq!(p.report().dispatch_self_nanos(), 0);
    }

    #[test]
    fn shard_categories_are_loop_level_not_nested() {
        assert!(!ProfCategory::ShardBarrier.nested_in_dispatch());
        assert!(!ProfCategory::MailboxDrain.nested_in_dispatch());
        let mut p = Profiler::new();
        p.enable();
        p.charge(ProfCategory::Dispatch, 6_000, 3);
        p.charge(ProfCategory::ShardBarrier, 3_000, 2);
        p.charge(ProfCategory::MailboxDrain, 1_000, 2);
        let r = p.report();
        // Coordination never inflates loop time or dispatch-self time.
        assert_eq!(r.loop_nanos(), 6_000);
        assert_eq!(r.dispatch_self_nanos(), 6_000);
        assert_eq!(r.coordination_nanos(), 4_000);
        assert!((r.barrier_wait_fraction() - 0.3).abs() < 1e-12);
        let text = format!("{r}");
        assert!(text.contains("shard.barrier"));
        assert!(text.contains("mailbox.drain"));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = Profiler::new();
        a.enable();
        a.charge(ProfCategory::Dispatch, 100, 1);
        let mut r = a.report();
        r.merge(&a.report());
        assert_eq!(r.nanos(ProfCategory::Dispatch), 200);
        assert_eq!(r.calls(ProfCategory::Dispatch), 2);
    }
}
