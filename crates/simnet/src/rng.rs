//! Deterministic randomness for simulations.
//!
//! Every run of the simulator is seeded explicitly, so identical seeds give
//! identical event sequences. [`SimRng`] wraps a self-contained xoshiro256++
//! generator (no external dependencies, so streams are stable across
//! toolchains and environments) and adds the sampling helpers the rest of
//! the workspace needs (uniform ranges, exponential jitter, normal variates
//! via Box–Muller).

use crate::time::SimDuration;

/// Advances a SplitMix64 state and returns the next output.
///
/// Used for seed expansion: it diffuses low-entropy seeds (0, 1, 2, …)
/// into well-distributed xoshiro state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One-shot SplitMix64 finalizer: a bijective `u64 -> u64` mixing function.
///
/// Shared by seed expansion, the event queue's tie-break perturbation (the
/// bijectivity guarantees scrambled tie-break keys stay unique), the
/// sharded executor's intrinsic tie-break keys and the run-fingerprint
/// hashing in [`crate::determinism`].
pub(crate) fn mix64(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

/// Deterministic pseudo-random source used throughout a simulation run.
///
/// The core generator is xoshiro256++ (Blackman & Vigna), seeded through
/// SplitMix64. It is fast, passes the usual statistical batteries, and —
/// because it is implemented in-repo — produces bit-identical streams on
/// every platform, which the bitwise-determinism contract of the parallel
/// experiment runner relies on.
///
/// # Examples
///
/// ```
/// use ape_simnet::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator, e.g. one per node, so that
    /// adding consumers does not perturb unrelated streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id through SplitMix64 so forks with nearby ids do
        // not produce correlated child seeds.
        let mut z = self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo {lo} > hi {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Multiply-shift maps the raw draw onto [0, span]; the bias for
        // simulation-scale spans (≪ 2^64) is immeasurably small.
        let range = span + 1;
        lo + ((self.next_u64() as u128 * range as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "uniform_f64: bounds must be finite"
        );
        assert!(lo <= hi, "uniform_f64: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        let v = lo + self.unit() * (hi - lo);
        // Guard against rounding landing exactly on the open upper bound.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for long-tailed network jitter and Poisson inter-arrival gaps.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal variate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential jitter duration with the given mean duration.
    pub fn jitter(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.uniform_u64(0, items.len() as u64 - 1) as usize;
            Some(&items[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_deterministic_but_distinct() {
        let mut root1 = SimRng::seed_from(7);
        let mut root2 = SimRng::seed_from(7);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut root3 = SimRng::seed_from(7);
        let mut g1 = root3.fork(2);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.uniform_u64(5, 9);
            assert!((5..=9).contains(&v));
            let f = r.uniform_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
        assert_eq!(r.uniform_u64(4, 4), 4);
        assert_eq!(r.uniform_f64(4.0, 4.0), 4.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn exponential_of_nonpositive_mean_is_zero() {
        let mut r = SimRng::seed_from(11);
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::seed_from(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = SimRng::seed_from(19);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn jitter_is_nonnegative() {
        let mut r = SimRng::seed_from(23);
        for _ in 0..100 {
            let j = r.jitter(SimDuration::from_millis(2));
            assert!(j >= SimDuration::ZERO);
        }
    }
}
