//! # ape-simnet — deterministic discrete-event network simulation
//!
//! The substrate underneath the APE-CACHE reproduction. The paper evaluates
//! its system on a physical testbed (a GL-MT1300 WiFi router, Android phones,
//! an edge server 7 hops away and an EC2-hosted controller 12 hops away);
//! this crate provides the simulated equivalent: a virtual clock, an event
//! queue, nodes exchanging messages over links with hop counts, bandwidth,
//! jitter and loss, CPU/memory resource meters, and metric recorders.
//!
//! Determinism is a design requirement: a [`World`] seeded identically
//! processes an identical event sequence, which the integration tests
//! assert. All randomness flows through [`SimRng`].
//!
//! ## Example
//!
//! ```
//! use ape_simnet::{Context, LinkSpec, Message, Node, NodeId, SimDuration, World};
//!
//! #[derive(Debug)]
//! enum Msg { Ping, Pong }
//! impl Message for Msg {
//!     fn wire_size(&self) -> usize { 64 }
//! }
//!
//! struct Server;
//! impl Node<Msg> for Server {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
//!         if matches!(msg, Msg::Ping) {
//!             ctx.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! struct Client { got_pong: bool }
//! impl Node<Msg> for Client {
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
//!         self.got_pong = matches!(msg, Msg::Pong);
//!     }
//! }
//!
//! let mut world = World::new(7);
//! let client = world.add_node("client", Client { got_pong: false });
//! let server = world.add_node("server", Server);
//! world.connect(client, server, LinkSpec::new(1, SimDuration::from_micros(1500)));
//! world.post(client, server, Msg::Ping);
//! world.run_to_idle();
//! assert!(world.node::<Client>(client).got_pong);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod determinism;
mod event;
mod fault;
mod link;
mod metrics;
mod node;
mod profiler;
pub mod reference;
mod resource;
mod rng;
mod shard;
mod time;
mod trace;
mod wheel;
mod world;

pub use determinism::{DeterminismReport, Fingerprint, PerturbedRun};
pub use event::event_footprint;
pub use fault::{FaultKind, FaultPlan, FaultWindow, LinkEffect};
pub use link::{LinkSpec, Topology};
pub use metrics::{keys, Histogram, HistogramMode, MetricId, Metrics, MetricsConfig, TimeSeries};
pub use node::{AsAny, Message, Node, NodeId, TimerToken};
pub use profiler::{ProfCategory, ProfTimer, ProfileReport, Profiler, PROF_CATEGORIES};
pub use resource::{CpuMeter, MemMeter};
pub use rng::SimRng;
pub use shard::ShardedWorld;
pub use time::{SimDuration, SimTime};
pub use trace::{SpanCtx, SpanId, TraceConfig, TraceEvent, TraceId, TracePhase, TraceSink};
pub use wheel::TimerWheel;
pub use world::{Context, RunReport, StopReason, World};
