//! Frozen seed implementations, kept as differential-testing oracles.
//!
//! Two engines live here, both preserved verbatim from the code that
//! actually shipped, in the `ape_cachealg::reference::ReferencePacm` style:
//!
//! * [`ReferenceEventQueue`] — the `BinaryHeap` scheduler the simulator
//!   shipped with before the timing-wheel rewrite ([`crate::TimerWheel`]).
//!   The wheel's unit tests and the `wheel_differential` property suite pop
//!   randomized schedules through both queues and assert identical
//!   sequences;
//!   [`World::enable_queue_oracle`](crate::World::enable_queue_oracle)
//!   mirrors every live push/pop against this heap during a run; and
//!   `repro bench-simworld` times the wheel against it
//!   (`BENCH_simworld.json`).
//! * [`ExactHistogram`] — the sample-hoarding `Vec<f64>` histogram the
//!   metric registry shipped with before the fixed-memory sketch rewrite
//!   ([`crate::Histogram`] in [`HistogramMode::Sketch`]
//!   (crate::HistogramMode)). The `metrics_sketch` property suite records
//!   randomized and adversarial distributions through both and asserts the
//!   sketch's quantiles stay within its error bound;
//!   [`MetricsConfig::sketch_oracle`](crate::MetricsConfig) shadows every
//!   live sketch with one of these during a run; and `repro bench-metrics`
//!   times the sketch observe path against it (`BENCH_metrics.json`).
//!
//! Do not "improve" this module — its value is that it stays frozen.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug)]
struct RefEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for RefEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for RefEntry<T> {}

impl<T> PartialOrd for RefEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for RefEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        // This is, verbatim, the ordering the pre-wheel EventQueue used.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Earliest-`(at, seq)`-first queue backed by a single binary heap — the
/// seed implementation the timing wheel must reproduce event for event.
///
/// # Examples
///
/// ```
/// use ape_simnet::reference::ReferenceEventQueue;
/// use ape_simnet::SimTime;
///
/// let mut q = ReferenceEventQueue::new();
/// q.push(SimTime::from_millis(5), 0, 'b');
/// q.push(SimTime::from_millis(1), 1, 'a');
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 1, 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), 0, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct ReferenceEventQueue<T> {
    heap: BinaryHeap<RefEntry<T>>,
    peak_len: usize,
}

impl<T> Default for ReferenceEventQueue<T> {
    fn default() -> Self {
        ReferenceEventQueue::new()
    }
}

impl<T> ReferenceEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            peak_len: 0,
        }
    }

    /// Queues `item` at time `at` with tie-break key `seq`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(RefEntry { at, seq, item });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the earliest `(at, seq)` event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.item))
    }

    /// Timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of [`len`](Self::len) over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Approximate heap footprint of the queue's buffer in bytes (see
    /// [`TimerWheel::approx_bytes`](crate::TimerWheel::approx_bytes)).
    pub fn approx_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<RefEntry<T>>()
    }
}

/// The seed metric histogram: every observation stored exactly in a
/// `Vec<f64>`, quantiles by lazy sort + nearest rank, `mean`/`min`/`max`
/// as O(n) scans per query.
///
/// This is, verbatim, the `Histogram` the registry shipped with before the
/// fixed-memory sketch rewrite (modulo renames). It is the ground truth the
/// sketch is differentially tested against: exact quantiles over the full
/// sample set, at the cost of unbounded memory — the very cost the sketch
/// removes.
///
/// # Examples
///
/// ```
/// use ape_simnet::reference::ExactHistogram;
///
/// let mut h = ExactHistogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactHistogram {
    samples: Vec<f64>,
    sorted: bool,
    /// Non-finite observations rejected by [`record`](Self::record).
    dropped: u64,
}

impl ExactHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ExactHistogram::default()
    }

    /// Records one observation; non-finite values are dropped and counted
    /// (the seed's release-mode behavior — the oracle must keep counting
    /// where the live histogram would debug-panic, so the two stay
    /// comparable in release test builds).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        } else {
            self.dropped += 1;
        }
    }

    /// Number of non-finite observations rejected by [`record`](Self::record).
    pub fn dropped_samples(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Sum of all observations, or 0.0 when empty — the seed's
    /// insertion-order `iter().sum()` fold.
    pub fn sum(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum()
        }
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = (q * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// All recorded samples, in insertion or sorted order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another histogram's samples (and dropped-sample count) into
    /// this one.
    pub fn merge(&mut self, other: &ExactHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.dropped += other.dropped;
    }

    /// Heap footprint of the sample buffer in bytes (for the
    /// `bench-metrics` memory column).
    pub fn approx_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = ReferenceEventQueue::new();
        q.push(SimTime::from_millis(1), 5, 'c');
        q.push(SimTime::from_millis(1), 2, 'b');
        q.push(SimTime::ZERO, 9, 'a');
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 9, 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 2, 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 5, 'c')));
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 3);
        assert!(q.approx_bytes() > 0);
    }

    #[test]
    fn exact_histogram_matches_seed_semantics() {
        let mut h = ExactHistogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50.5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!(h.approx_bytes() >= 100 * 8);
    }

    #[test]
    fn exact_histogram_merge_pools_samples() {
        let mut a = ExactHistogram::new();
        let mut b = ExactHistogram::new();
        a.record(1.0);
        b.record(3.0);
        b.record(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.dropped_samples(), 1);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.quantile(1.0), 3.0);
    }

    #[test]
    fn exact_histogram_empty_is_zeroed() {
        let mut h = ExactHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.samples().len(), 0);
    }
}
