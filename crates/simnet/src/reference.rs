//! Frozen pre-wheel event queue, kept as a differential-testing oracle.
//!
//! This is the `BinaryHeap` scheduler the simulator shipped with before the
//! timing-wheel rewrite ([`crate::TimerWheel`]), re-shaped to the same
//! generic `(at, seq, item)` interface. Like
//! `ape_cachealg::reference::ReferencePacm`, it exists so the optimized
//! engine is checked against the code that actually shipped:
//!
//! * the wheel's unit tests and the `wheel_differential` property suite pop
//!   randomized schedules through both queues and assert identical
//!   sequences;
//! * [`World::enable_queue_oracle`](crate::World::enable_queue_oracle)
//!   mirrors every live push/pop against this heap during a run;
//! * `repro bench-simworld` times the wheel against it and reports the
//!   speedup in `BENCH_simworld.json`.
//!
//! Do not "improve" this module — its value is that it stays frozen.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug)]
struct RefEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for RefEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for RefEntry<T> {}

impl<T> PartialOrd for RefEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for RefEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        // This is, verbatim, the ordering the pre-wheel EventQueue used.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Earliest-`(at, seq)`-first queue backed by a single binary heap — the
/// seed implementation the timing wheel must reproduce event for event.
///
/// # Examples
///
/// ```
/// use ape_simnet::reference::ReferenceEventQueue;
/// use ape_simnet::SimTime;
///
/// let mut q = ReferenceEventQueue::new();
/// q.push(SimTime::from_millis(5), 0, 'b');
/// q.push(SimTime::from_millis(1), 1, 'a');
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), 1, 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), 0, 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct ReferenceEventQueue<T> {
    heap: BinaryHeap<RefEntry<T>>,
    peak_len: usize,
}

impl<T> Default for ReferenceEventQueue<T> {
    fn default() -> Self {
        ReferenceEventQueue::new()
    }
}

impl<T> ReferenceEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            peak_len: 0,
        }
    }

    /// Queues `item` at time `at` with tie-break key `seq`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(RefEntry { at, seq, item });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the earliest `(at, seq)` event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.item))
    }

    /// Timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of [`len`](Self::len) over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Approximate heap footprint of the queue's buffer in bytes (see
    /// [`TimerWheel::approx_bytes`](crate::TimerWheel::approx_bytes)).
    pub fn approx_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<RefEntry<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = ReferenceEventQueue::new();
        q.push(SimTime::from_millis(1), 5, 'c');
        q.push(SimTime::from_millis(1), 2, 'b');
        q.push(SimTime::ZERO, 9, 'a');
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 9, 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 2, 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 5, 'c')));
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 3);
        assert!(q.approx_bytes() > 0);
    }
}
